//! Aggregation statistics for experiment curves.
//!
//! Figure 3 plots the mean ± standard error over 10 independently generated
//! graphs per panel; these helpers compute exactly those aggregates from
//! per-graph relative traces.

/// Mean and standard error of the mean (SEM) of a sample.
///
/// Returns `(0, 0)` for an empty slice and SEM 0 for a single value.
pub fn mean_sem(values: &[f64]) -> (f64, f64) {
    let n = values.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    (mean, (var / n as f64).sqrt())
}

/// An aggregated best-so-far curve: per-checkpoint mean ± SEM across
/// replicate graphs.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateCurve {
    /// Sample-count checkpoints.
    pub checkpoints: Vec<u64>,
    /// Mean relative value per checkpoint.
    pub mean: Vec<f64>,
    /// SEM per checkpoint.
    pub sem: Vec<f64>,
}

/// Aggregates several per-graph curves (all on the same checkpoint grid).
///
/// # Panics
///
/// Panics if curves are empty or grids mismatch.
pub fn aggregate_curves(checkpoints: &[u64], curves: &[Vec<f64>]) -> AggregateCurve {
    assert!(!curves.is_empty(), "no curves to aggregate");
    for c in curves {
        assert_eq!(c.len(), checkpoints.len(), "curve/checkpoint mismatch");
    }
    let k = checkpoints.len();
    let mut mean = Vec::with_capacity(k);
    let mut sem = Vec::with_capacity(k);
    let mut column = Vec::with_capacity(curves.len());
    for j in 0..k {
        column.clear();
        column.extend(curves.iter().map(|c| c[j]));
        let (m, s) = mean_sem(&column);
        mean.push(m);
        sem.push(s);
    }
    AggregateCurve {
        checkpoints: checkpoints.to_vec(),
        mean,
        sem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_sem_basics() {
        let (m, s) = mean_sem(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-15);
        // var = 1, sem = 1/sqrt(3).
        assert!((s - 1.0 / 3.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean_sem(&[]), (0.0, 0.0));
        assert_eq!(mean_sem(&[5.0]), (5.0, 0.0));
    }

    #[test]
    fn aggregate_shape_and_values() {
        let cp = vec![1, 2, 4];
        let curves = vec![vec![0.5, 0.7, 0.9], vec![0.7, 0.9, 1.1]];
        let agg = aggregate_curves(&cp, &curves);
        assert_eq!(agg.checkpoints, cp);
        assert!((agg.mean[0] - 0.6).abs() < 1e-15);
        assert!((agg.mean[2] - 1.0).abs() < 1e-15);
        assert!(agg.sem.iter().all(|&s| s > 0.0));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_grid_panics() {
        aggregate_curves(&[1, 2], &[vec![1.0]]);
    }
}
