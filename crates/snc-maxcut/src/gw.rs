//! The software Goemans–Williamson pipeline (§II.A).
//!
//! Two stages, matching the paper's description exactly:
//!
//! 1. **SDP**: solve the GW relaxation with the Burer–Monteiro low-rank
//!    factorization at fixed rank (4 in the paper, §IV.A) — the role
//!    PyManOpt plays in the paper's evaluation.
//! 2. **Sampling/rounding** (Bertsimas–Ye): draw `g ~ N(0, I_r)` and
//!    threshold `x = W g` by sign. Because `x` is Gaussian with covariance
//!    `W Wᵀ = (w_i · w_j)_{ij}`, this is distribution-identical to the
//!    random-hyperplane rounding.
//!
//! [`GwSampler`] is the software reference the circuits are compared
//! against (the paper's green ▲ curves); the LIF-GW circuit implements the
//! same sampling stage in "hardware".

use crate::sampling::CutSampler;
use snc_graph::{CutAssignment, Graph};
use snc_linalg::{sdp, DMatrix, GaussianSampler, LinalgError, SdpConfig};

/// Configuration for the software GW solver.
#[derive(Clone, Copy, Debug)]
#[derive(Default)]
pub struct GwConfig {
    /// Underlying SDP solver configuration (rank 4 by default, per §IV.A).
    pub sdp: SdpConfig,
}


/// The SDP stage's output.
#[derive(Clone, Debug)]
pub struct GwSolution {
    /// The `n × r` factor matrix; row `i` is vertex `i`'s unit vector.
    pub factors: DMatrix,
    /// The SDP objective `Σ (1 − v_i·v_j)/2` — an upper bound on OPT at
    /// the true optimum.
    pub sdp_bound: f64,
}

/// Solves the GW SDP for a graph.
///
/// # Errors
///
/// Propagates [`LinalgError`] from the SDP solver.
pub fn solve_gw(graph: &Graph, cfg: &GwConfig) -> Result<GwSolution, LinalgError> {
    let edges: Vec<(u32, u32)> = graph.edges().collect();
    let sol = sdp::solve_maxcut_sdp(graph.n(), &edges, &cfg.sdp)?;
    let (factors, sdp_bound) = sol.into_factor_and_bound(graph.m() as f64);
    Ok(GwSolution { factors, sdp_bound })
}

/// The Bertsimas–Ye sampling stage: cuts from sign-thresholded correlated
/// Gaussians.
#[derive(Clone, Debug)]
pub struct GwSampler {
    factors: DMatrix,
    gauss: GaussianSampler,
    g_buf: Vec<f64>,
    x_buf: Vec<f64>,
}

impl GwSampler {
    /// Creates a sampler from the SDP factor matrix.
    pub fn new(factors: DMatrix, seed: u64) -> Self {
        let r = factors.cols();
        let n = factors.rows();
        Self {
            factors,
            gauss: GaussianSampler::new(seed),
            g_buf: vec![0.0; r],
            x_buf: vec![0.0; n],
        }
    }

    /// The factor matrix.
    pub fn factors(&self) -> &DMatrix {
        &self.factors
    }
}

impl CutSampler for GwSampler {
    fn next_cut(&mut self) -> CutAssignment {
        self.gauss
            .correlated_from_factor_into(&self.factors, &mut self.g_buf, &mut self.x_buf);
        CutAssignment::from_signs(&self.x_buf)
    }
}

/// Convenience: solve the SDP and return a ready sampler.
///
/// # Errors
///
/// Propagates SDP solver errors.
pub fn gw_sampler(graph: &Graph, cfg: &GwConfig, seed: u64) -> Result<GwSampler, LinalgError> {
    let sol = solve_gw(graph, cfg)?;
    Ok(GwSampler::new(sol.factors, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force;
    use crate::sampling::{log2_checkpoints, sample_best_trace};
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::{complete_bipartite, cycle, petersen};

    #[test]
    fn sdp_bound_upper_bounds_opt() {
        for g in [petersen(), cycle(7), complete_bipartite(3, 5)] {
            let sol = solve_gw(&g, &GwConfig::default()).unwrap();
            let opt = brute_force(&g).1;
            assert!(
                sol.sdp_bound + 1e-4 >= opt as f64,
                "bound {} < opt {opt}",
                sol.sdp_bound
            );
        }
    }

    #[test]
    fn bipartite_sampling_finds_exact_cut() {
        // On bipartite graphs the SDP solution is integral (antipodal
        // vectors), so every sample is the optimal cut.
        let g = complete_bipartite(4, 4);
        let mut s = gw_sampler(&g, &GwConfig::default(), 1).unwrap();
        let cut = s.next_cut();
        assert_eq!(cut.cut_value(&g), 16);
    }

    #[test]
    fn beats_random_and_achieves_gw_ratio_on_small_graphs() {
        // Empirically the best-of-64 GW samples should be ≥ 0.878·OPT with
        // huge margin on small instances (usually exactly OPT).
        for seed in 0..4u64 {
            let g = gnp(12, 0.5, seed).unwrap();
            let opt = brute_force(&g).1;
            if opt == 0 {
                continue;
            }
            let mut s = gw_sampler(&g, &GwConfig::default(), seed).unwrap();
            let trace = sample_best_trace(&mut s, &g, &log2_checkpoints(64));
            let ratio = trace.final_best() as f64 / opt as f64;
            assert!(ratio >= 0.878, "seed={seed} ratio={ratio}");
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let g = petersen();
        let sol = solve_gw(&g, &GwConfig::default()).unwrap();
        let mut a = GwSampler::new(sol.factors.clone(), 9);
        let mut b = GwSampler::new(sol.factors, 9);
        for _ in 0..10 {
            assert_eq!(a.next_cut(), b.next_cut());
        }
    }

    #[test]
    fn expected_single_sample_ratio_is_gw_like() {
        // Mean single-sample cut / SDP bound should approach the GW
        // guarantee (0.878 in the worst case; higher in practice).
        let g = gnp(30, 0.3, 7).unwrap();
        let sol = solve_gw(&g, &GwConfig::default()).unwrap();
        let mut s = GwSampler::new(sol.factors, 11);
        let samples = 500;
        let total: u64 = (0..samples).map(|_| s.next_cut().cut_value(&g)).sum();
        let mean = total as f64 / samples as f64;
        assert!(
            mean / sol.sdp_bound > 0.8,
            "mean {mean} vs bound {}",
            sol.sdp_bound
        );
    }
}
