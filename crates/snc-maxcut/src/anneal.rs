//! Simulated annealing: the Ising-machine baseline class.
//!
//! The paper positions its circuits against hardware Ising annealers
//! (\[10\], \[11\], \[30\] in its references), which solve MAXCUT by cooling an
//! Ising system whose couplings are the graph's adjacency. This module
//! provides the software version of that baseline: single-spin-flip
//! Metropolis with a geometric temperature schedule, operating directly on
//! cut values (`ΔE = −Δcut`), plus a best-of-restarts driver. It is useful
//! both as an additional comparison point for the experiment harness and
//! as the classical reference for "no conversion to an Ising model with
//! pairwise interactions is needed" claims.

use snc_devices::{Rng64, SplitMix64, Xoshiro256pp};
use snc_graph::{CutAssignment, Graph};

/// Configuration for the simulated annealer.
#[derive(Clone, Copy, Debug)]
pub struct AnnealConfig {
    /// Number of sweeps (each sweep proposes `n` single-vertex flips).
    pub sweeps: u64,
    /// Initial temperature (in cut-edge units).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            sweeps: 200,
            t_start: 2.0,
            t_end: 0.01,
            seed: 0xA22,
        }
    }
}

/// Runs single-flip Metropolis annealing from a random start.
///
/// Returns the best assignment *seen* (not merely the final state) and its
/// cut value. The proposal at temperature `T` accepts a flip with
/// probability `min(1, exp(Δcut / T))` — uphill moves in cut value are
/// always accepted.
pub fn simulated_annealing(graph: &Graph, cfg: &AnnealConfig) -> (CutAssignment, u64) {
    let n = graph.n();
    let mut rng = Xoshiro256pp::new(cfg.seed);
    let mut cut = CutAssignment::random(n, &mut rng);
    if n == 0 {
        return (cut, 0);
    }
    let mut value = cut.cut_value(graph) as i64;
    let mut best = cut.clone();
    let mut best_value = value;

    let sweeps = cfg.sweeps.max(1);
    // Geometric cooling from t_start to t_end across sweeps.
    let ratio = if cfg.t_start > 0.0 && cfg.t_end > 0.0 {
        (cfg.t_end / cfg.t_start).powf(1.0 / sweeps as f64)
    } else {
        1.0
    };
    let mut temperature = cfg.t_start.max(1e-12);

    for _ in 0..sweeps {
        for _ in 0..n {
            let v = rng.next_index(n);
            let delta = cut.flip_delta(graph, v);
            let accept = if delta >= 0 {
                true
            } else {
                rng.next_f64() < (delta as f64 / temperature).exp()
            };
            if accept {
                cut.flip(v);
                value += delta;
                if value > best_value {
                    best_value = value;
                    best = cut.clone();
                }
            }
        }
        temperature *= ratio;
    }
    (best, best_value as u64)
}

/// Parallel tempering (replica exchange) over a temperature ladder.
///
/// The enhancement of reference \[11\] of the paper ("Enhancing the Solution
/// Quality of Hardware Ising-Model Solver via Parallel Tempering"):
/// `replicas` Metropolis chains run at geometrically spaced temperatures;
/// after every sweep, adjacent-temperature replicas propose a state swap
/// accepted with probability `min(1, exp(Δβ·Δcut))` (cut-maximization
/// form). Hot chains explore, cold chains exploit, and swaps ferry good
/// solutions down the ladder.
#[derive(Clone, Copy, Debug)]
pub struct TemperingConfig {
    /// Number of replicas (temperature rungs).
    pub replicas: usize,
    /// Sweeps between exchange attempts.
    pub sweeps_per_exchange: u64,
    /// Number of exchange rounds.
    pub rounds: u64,
    /// Coldest temperature.
    pub t_cold: f64,
    /// Hottest temperature.
    pub t_hot: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TemperingConfig {
    fn default() -> Self {
        Self {
            replicas: 8,
            sweeps_per_exchange: 5,
            rounds: 40,
            t_cold: 0.05,
            t_hot: 4.0,
            seed: 0x7E47,
        }
    }
}

/// Runs parallel tempering and returns the best assignment seen anywhere
/// in the ladder.
pub fn parallel_tempering(graph: &Graph, cfg: &TemperingConfig) -> (CutAssignment, u64) {
    let n = graph.n();
    let replicas = cfg.replicas.max(2);
    let mut rng = Xoshiro256pp::new(cfg.seed);
    if n == 0 {
        return (CutAssignment::all_ones(0), 0);
    }
    // Geometric temperature ladder, hot to cold.
    let ratio = (cfg.t_cold / cfg.t_hot).powf(1.0 / (replicas - 1) as f64);
    let temperatures: Vec<f64> = (0..replicas)
        .map(|k| cfg.t_hot * ratio.powi(k as i32))
        .collect();

    let mut states: Vec<CutAssignment> = (0..replicas)
        .map(|_| CutAssignment::random(n, &mut rng))
        .collect();
    let mut values: Vec<i64> = states.iter().map(|c| c.cut_value(graph) as i64).collect();
    let mut chain_rngs: Vec<Xoshiro256pp> = (0..replicas)
        .map(|k| Xoshiro256pp::new(SplitMix64::derive(cfg.seed, k as u64 + 1)))
        .collect();

    let mut best_value = *values.iter().max().expect("non-empty ladder");
    let mut best = states[values
        .iter()
        .position(|&v| v == best_value)
        .expect("max exists")]
    .clone();

    for _round in 0..cfg.rounds.max(1) {
        // Metropolis sweeps within each replica.
        for (k, (state, value)) in states.iter_mut().zip(values.iter_mut()).enumerate() {
            let t = temperatures[k];
            let rng_k = &mut chain_rngs[k];
            for _ in 0..cfg.sweeps_per_exchange.max(1) {
                for _ in 0..n {
                    let v = rng_k.next_index(n);
                    let delta = state.flip_delta(graph, v);
                    if delta >= 0 || rng_k.next_f64() < (delta as f64 / t).exp() {
                        state.flip(v);
                        *value += delta;
                        if *value > best_value {
                            best_value = *value;
                            best = state.clone();
                        }
                    }
                }
            }
        }
        // Adjacent-pair exchanges (alternating parity keeps detailed
        // balance across rounds).
        for k in 0..replicas - 1 {
            let d_beta = 1.0 / temperatures[k + 1] - 1.0 / temperatures[k];
            let d_cut = (values[k + 1] - values[k]) as f64;
            // For cut maximization, energy = −cut: accept with
            // exp((β_hot − β_cold)·(cut_cold − cut_hot)) — equivalently:
            let accept = d_beta * (-d_cut);
            if accept >= 0.0 || rng.next_f64() < accept.exp() {
                states.swap(k, k + 1);
                values.swap(k, k + 1);
            }
        }
    }
    (best, best_value as u64)
}

/// Best of `restarts` independent annealing runs with derived seeds.
pub fn multistart_annealing(
    graph: &Graph,
    cfg: &AnnealConfig,
    restarts: usize,
) -> (CutAssignment, u64) {
    let mut best: Option<(CutAssignment, u64)> = None;
    for r in 0..restarts.max(1) {
        let run_cfg = AnnealConfig {
            seed: SplitMix64::derive(cfg.seed, r as u64),
            ..*cfg
        };
        let (cut, value) = simulated_annealing(graph, &run_cfg);
        if best.as_ref().is_none_or(|(_, bv)| value > *bv) {
            best = Some((cut, value));
        }
    }
    best.expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force;
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::{complete_bipartite, cycle, petersen};

    #[test]
    fn finds_optimum_on_small_structured_graphs() {
        for (g, opt) in [
            (petersen(), 12u64),
            (complete_bipartite(5, 5), 25),
            (cycle(11), 10),
        ] {
            let (cut, v) = simulated_annealing(&g, &AnnealConfig::default());
            assert_eq!(cut.cut_value(&g), v);
            assert!(v >= opt - 1, "got {v}, opt {opt}");
        }
    }

    #[test]
    fn matches_exact_on_random_graphs() {
        for seed in 0..4u64 {
            let g = gnp(16, 0.4, seed).unwrap();
            let (_, opt) = brute_force(&g);
            let cfg = AnnealConfig { seed, ..AnnealConfig::default() };
            let (_, v) = multistart_annealing(&g, &cfg, 4);
            assert!(v >= opt.saturating_sub(1), "seed={seed}: {v} vs opt {opt}");
        }
    }

    #[test]
    fn returned_best_is_best_seen() {
        let g = gnp(30, 0.3, 9).unwrap();
        let (cut, v) = simulated_annealing(&g, &AnnealConfig::default());
        assert_eq!(cut.cut_value(&g), v);
        assert!(v * 2 >= g.m() as u64, "below the random expectation");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let g = gnp(20, 0.4, 2).unwrap();
        let a = simulated_annealing(&g, &AnnealConfig::default());
        let b = simulated_annealing(&g, &AnnealConfig::default());
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn zero_temperature_is_greedy_descent() {
        // t_start = t_end → constant temperature; tiny value ≈ pure hill
        // climbing, which still reaches a 1-opt-like state.
        let g = gnp(20, 0.4, 5).unwrap();
        let cfg = AnnealConfig {
            t_start: 1e-9,
            t_end: 1e-9,
            sweeps: 100,
            seed: 3,
        };
        let (cut, v) = simulated_annealing(&g, &cfg);
        assert_eq!(cut.cut_value(&g), v);
        assert!(2 * v >= g.m() as u64);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert_eq!(simulated_annealing(&g, &AnnealConfig::default()).1, 0);
        assert_eq!(parallel_tempering(&g, &TemperingConfig::default()).1, 0);
    }

    #[test]
    fn tempering_finds_optimum_on_small_graphs() {
        for (g, opt) in [
            (petersen(), 12u64),
            (complete_bipartite(4, 6), 24),
            (cycle(13), 12),
        ] {
            let (cut, v) = parallel_tempering(&g, &TemperingConfig::default());
            assert_eq!(cut.cut_value(&g), v);
            assert!(v >= opt - 1, "got {v}, opt {opt}");
        }
    }

    #[test]
    fn tempering_matches_exact_on_random_graphs() {
        for seed in 0..3u64 {
            let g = gnp(18, 0.35, seed).unwrap();
            let (_, opt) = brute_force(&g);
            let cfg = TemperingConfig { seed, ..TemperingConfig::default() };
            let (_, v) = parallel_tempering(&g, &cfg);
            assert!(v >= opt.saturating_sub(1), "seed={seed}: {v} vs {opt}");
        }
    }

    #[test]
    fn tempering_at_least_as_good_as_single_chain() {
        // With a matched total sweep budget, tempering should not lose to
        // a single annealing run (statistically; fixed seeds here).
        let g = gnp(40, 0.25, 4).unwrap();
        let t_cfg = TemperingConfig { replicas: 8, rounds: 25, ..TemperingConfig::default() };
        let (_, pt) = parallel_tempering(&g, &t_cfg);
        let a_cfg = AnnealConfig { sweeps: 200, ..AnnealConfig::default() };
        let (_, sa) = simulated_annealing(&g, &a_cfg);
        assert!(pt + 2 >= sa, "tempering {pt} far below annealing {sa}");
    }

    #[test]
    fn tempering_deterministic() {
        let g = gnp(20, 0.3, 8).unwrap();
        let a = parallel_tempering(&g, &TemperingConfig::default());
        let b = parallel_tempering(&g, &TemperingConfig::default());
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }
}
