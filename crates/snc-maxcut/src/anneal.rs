//! Simulated annealing: the Ising-machine baseline class.
//!
//! The paper positions its circuits against hardware Ising annealers
//! (\[10\], \[11\], \[30\] in its references), which solve MAXCUT by cooling an
//! Ising system whose couplings are the graph's adjacency. This module
//! provides the software version of that baseline: single-spin-flip
//! Metropolis with a geometric temperature schedule, operating directly on
//! cut values (`ΔE = −Δcut`), plus a best-of-restarts driver. It is useful
//! both as an additional comparison point for the experiment harness and
//! as the classical reference for "no conversion to an Ising model with
//! pairwise interactions is needed" claims.

use snc_devices::{Rng64, SplitMix64, Xoshiro256pp};
use snc_graph::{CutAssignment, Graph};

/// Configuration for the simulated annealer.
#[derive(Clone, Copy, Debug)]
pub struct AnnealConfig {
    /// Number of sweeps (each sweep proposes `n` single-vertex flips).
    pub sweeps: u64,
    /// Initial temperature (in cut-edge units).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            sweeps: 200,
            t_start: 2.0,
            t_end: 0.01,
            seed: 0xA22,
        }
    }
}

/// Runs single-flip Metropolis annealing from a random start.
///
/// Returns the best assignment *seen* (not merely the final state) and its
/// cut value. The proposal at temperature `T` accepts a flip with
/// probability `min(1, exp(Δcut / T))` — uphill moves in cut value are
/// always accepted.
pub fn simulated_annealing(graph: &Graph, cfg: &AnnealConfig) -> (CutAssignment, u64) {
    let n = graph.n();
    let mut rng = Xoshiro256pp::new(cfg.seed);
    let mut cut = CutAssignment::random(n, &mut rng);
    if n == 0 {
        return (cut, 0);
    }
    let mut value = cut.cut_value(graph) as i64;
    let mut best = cut.clone();
    let mut best_value = value;

    let sweeps = cfg.sweeps.max(1);
    // Geometric cooling from t_start to t_end across sweeps.
    let ratio = if cfg.t_start > 0.0 && cfg.t_end > 0.0 {
        (cfg.t_end / cfg.t_start).powf(1.0 / sweeps as f64)
    } else {
        1.0
    };
    let mut temperature = cfg.t_start.max(1e-12);

    for _ in 0..sweeps {
        for _ in 0..n {
            let v = rng.next_index(n);
            let delta = cut.flip_delta(graph, v);
            let accept = if delta >= 0 {
                true
            } else {
                rng.next_f64() < (delta as f64 / temperature).exp()
            };
            if accept {
                cut.flip(v);
                value += delta;
                if value > best_value {
                    best_value = value;
                    best = cut.clone();
                }
            }
        }
        temperature *= ratio;
    }
    (best, best_value as u64)
}

/// Parallel tempering (replica exchange) over a temperature ladder.
///
/// The enhancement of reference \[11\] of the paper ("Enhancing the Solution
/// Quality of Hardware Ising-Model Solver via Parallel Tempering"):
/// `replicas` Metropolis chains run at geometrically spaced temperatures;
/// after every sweep, adjacent-temperature replicas propose a state swap
/// accepted with probability `min(1, exp(Δβ·Δcut))` (cut-maximization
/// form). Hot chains explore, cold chains exploit, and swaps ferry good
/// solutions down the ladder.
#[derive(Clone, Copy, Debug)]
pub struct TemperingConfig {
    /// Number of replicas (temperature rungs).
    pub replicas: usize,
    /// Sweeps between exchange attempts.
    pub sweeps_per_exchange: u64,
    /// Number of exchange rounds.
    pub rounds: u64,
    /// Coldest temperature.
    pub t_cold: f64,
    /// Hottest temperature.
    pub t_hot: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TemperingConfig {
    fn default() -> Self {
        Self {
            replicas: 8,
            sweeps_per_exchange: 5,
            rounds: 40,
            t_cold: 0.05,
            t_hot: 4.0,
            seed: 0x7E47,
        }
    }
}

/// Runs parallel tempering and returns the best assignment seen anywhere
/// in the ladder.
pub fn parallel_tempering(graph: &Graph, cfg: &TemperingConfig) -> (CutAssignment, u64) {
    let n = graph.n();
    let replicas = cfg.replicas.max(2);
    let mut rng = Xoshiro256pp::new(cfg.seed);
    if n == 0 {
        return (CutAssignment::all_ones(0), 0);
    }
    // Geometric temperature ladder, hot to cold.
    let ratio = (cfg.t_cold / cfg.t_hot).powf(1.0 / (replicas - 1) as f64);
    let temperatures: Vec<f64> = (0..replicas)
        .map(|k| cfg.t_hot * ratio.powi(k as i32))
        .collect();

    let mut states: Vec<CutAssignment> = (0..replicas)
        .map(|_| CutAssignment::random(n, &mut rng))
        .collect();
    let mut values: Vec<i64> = states.iter().map(|c| c.cut_value(graph) as i64).collect();
    let mut chain_rngs: Vec<Xoshiro256pp> = (0..replicas)
        .map(|k| Xoshiro256pp::new(SplitMix64::derive(cfg.seed, k as u64 + 1)))
        .collect();

    let mut best_value = *values.iter().max().expect("non-empty ladder");
    let mut best = states[values
        .iter()
        .position(|&v| v == best_value)
        .expect("max exists")]
    .clone();

    for _round in 0..cfg.rounds.max(1) {
        // Metropolis sweeps within each replica.
        for (k, (state, value)) in states.iter_mut().zip(values.iter_mut()).enumerate() {
            let t = temperatures[k];
            let rng_k = &mut chain_rngs[k];
            for _ in 0..cfg.sweeps_per_exchange.max(1) {
                for _ in 0..n {
                    let v = rng_k.next_index(n);
                    let delta = state.flip_delta(graph, v);
                    if delta >= 0 || rng_k.next_f64() < (delta as f64 / t).exp() {
                        state.flip(v);
                        *value += delta;
                        if *value > best_value {
                            best_value = *value;
                            best = state.clone();
                        }
                    }
                }
            }
        }
        // Adjacent-pair exchanges (alternating parity keeps detailed
        // balance across rounds).
        for k in 0..replicas - 1 {
            let d_beta = 1.0 / temperatures[k + 1] - 1.0 / temperatures[k];
            let d_cut = (values[k + 1] - values[k]) as f64;
            // For cut maximization, energy = −cut: accept with
            // exp((β_hot − β_cold)·(cut_cold − cut_hot)) — equivalently:
            let accept = d_beta * (-d_cut);
            if accept >= 0.0 || rng.next_f64() < accept.exp() {
                states.swap(k, k + 1);
                values.swap(k, k + 1);
            }
        }
    }
    (best, best_value as u64)
}

/// The functional form of a [`CoolingSchedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleKind {
    /// `σ(t) = start · (end/start)^(t/(len−1))` — the geometric cooling
    /// the annealers above use for their temperature ladder.
    Geometric,
    /// `σ(t) = start + (end − start) · t/(len−1)` — linear interpolation.
    Linear,
}

impl ScheduleKind {
    /// The wire/CLI name of the kind.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleKind::Geometric => "geometric",
            ScheduleKind::Linear => "linear",
        }
    }

    /// Parses a wire/CLI name (`"geometric"` / `"linear"`).
    pub fn from_name(name: &str) -> Option<ScheduleKind> {
        [ScheduleKind::Geometric, ScheduleKind::Linear]
            .into_iter()
            .find(|k| k.name() == name)
    }
}

/// A rejected [`CoolingSchedule`] construction, with the reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleError(pub String);

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ScheduleError {}

/// A validated, monotone non-increasing cooling schedule `σ(t)` for the
/// annealed-noise circuit family: the same geometric law the Metropolis
/// annealers above cool their temperature with, plus a linear variant,
/// packaged as a reusable value the solve dispatch and the wire format
/// share.
///
/// Invariants enforced at construction: `start` and `end` are finite,
/// `start ≥ end`, both are `> 0` for geometric (the ratio is undefined
/// otherwise) and `≥ 0` for linear. [`CoolingSchedule::values`] is
/// therefore always monotone non-increasing with **exact** endpoints
/// (`values(len)[0] == start`, `values(len)[len-1] == end`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoolingSchedule {
    kind: ScheduleKind,
    start: f64,
    end: f64,
}

impl Default for CoolingSchedule {
    /// The workspace default for the annealed circuit: geometric cooling
    /// from 1.0 to 0.05 (relative noise units).
    fn default() -> Self {
        Self {
            kind: ScheduleKind::Geometric,
            start: 1.0,
            end: 0.05,
        }
    }
}

impl CoolingSchedule {
    /// Builds a validated schedule.
    ///
    /// # Errors
    ///
    /// Rejects non-finite values, `start < end` (heating is not a
    /// cooling schedule), non-positive geometric endpoints, and negative
    /// linear endpoints.
    pub fn new(kind: ScheduleKind, start: f64, end: f64) -> Result<Self, ScheduleError> {
        if !start.is_finite() || !end.is_finite() {
            return Err(ScheduleError(format!(
                "schedule endpoints must be finite (got start={start}, end={end})"
            )));
        }
        if start < end {
            return Err(ScheduleError(format!(
                "schedule must cool: start {start} < end {end}"
            )));
        }
        match kind {
            ScheduleKind::Geometric if start <= 0.0 || end <= 0.0 => {
                return Err(ScheduleError(format!(
                    "geometric schedule endpoints must be > 0 (got start={start}, end={end})"
                )))
            }
            ScheduleKind::Linear if end < 0.0 => {
                return Err(ScheduleError(format!(
                    "linear schedule endpoints must be ≥ 0 (got end={end})"
                )))
            }
            _ => {}
        }
        Ok(Self { kind, start, end })
    }

    /// A geometric schedule (`start`, `end` both > 0).
    ///
    /// # Errors
    ///
    /// Same validation as [`CoolingSchedule::new`].
    pub fn geometric(start: f64, end: f64) -> Result<Self, ScheduleError> {
        Self::new(ScheduleKind::Geometric, start, end)
    }

    /// A linear schedule.
    ///
    /// # Errors
    ///
    /// Same validation as [`CoolingSchedule::new`].
    pub fn linear(start: f64, end: f64) -> Result<Self, ScheduleError> {
        Self::new(ScheduleKind::Linear, start, end)
    }

    /// The constant schedule at `level` — the degenerate schedule under
    /// which the annealed circuit reproduces LIF-GW sampling bit for bit.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or (for geometric semantics) non-positive
    /// levels.
    pub fn constant(level: f64) -> Result<Self, ScheduleError> {
        Self::new(ScheduleKind::Geometric, level, level)
    }

    /// The functional form.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// σ at `t = 0`.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// σ at `t = len − 1`.
    pub fn end(&self) -> f64 {
        self.end
    }

    /// Whether the schedule never actually cools (`start == end`).
    pub fn is_constant(&self) -> bool {
        self.start == self.end
    }

    /// σ at step `t` of a `len`-step schedule. Endpoints are exact by
    /// construction: `at(0, len) == start` and `at(len−1, len) == end`
    /// bit for bit (no `powf` round-off at the boundaries). A
    /// single-step schedule sits at `start`; `t` beyond the horizon
    /// clamps to `end`.
    pub fn at(&self, t: u64, len: u64) -> f64 {
        if len <= 1 || t == 0 || self.is_constant() {
            return self.start;
        }
        if t >= len - 1 {
            return self.end;
        }
        let frac = t as f64 / (len - 1) as f64;
        match self.kind {
            ScheduleKind::Geometric => self.start * (self.end / self.start).powf(frac),
            ScheduleKind::Linear => self.start + (self.end - self.start) * frac,
        }
    }

    /// The full `len`-value schedule `[σ(0), …, σ(len−1)]` — one value
    /// per sample, so `values(budget).len() == budget`. Monotone
    /// non-increasing by construction: each value is clamped to its
    /// predecessor, which squashes any last-ulp `powf` round-off without
    /// moving the exact endpoints (the true sequence already descends).
    pub fn values(&self, len: u64) -> Vec<f64> {
        let mut floor = f64::INFINITY;
        (0..len)
            .map(|t| {
                floor = floor.min(self.at(t, len));
                floor
            })
            .collect()
    }
}

/// Best of `restarts` independent annealing runs with derived seeds.
pub fn multistart_annealing(
    graph: &Graph,
    cfg: &AnnealConfig,
    restarts: usize,
) -> (CutAssignment, u64) {
    let mut best: Option<(CutAssignment, u64)> = None;
    for r in 0..restarts.max(1) {
        let run_cfg = AnnealConfig {
            seed: SplitMix64::derive(cfg.seed, r as u64),
            ..*cfg
        };
        let (cut, value) = simulated_annealing(graph, &run_cfg);
        if best.as_ref().is_none_or(|(_, bv)| value > *bv) {
            best = Some((cut, value));
        }
    }
    best.expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force;
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::{complete_bipartite, cycle, petersen};

    #[test]
    fn finds_optimum_on_small_structured_graphs() {
        for (g, opt) in [
            (petersen(), 12u64),
            (complete_bipartite(5, 5), 25),
            (cycle(11), 10),
        ] {
            let (cut, v) = simulated_annealing(&g, &AnnealConfig::default());
            assert_eq!(cut.cut_value(&g), v);
            assert!(v >= opt - 1, "got {v}, opt {opt}");
        }
    }

    #[test]
    fn matches_exact_on_random_graphs() {
        for seed in 0..4u64 {
            let g = gnp(16, 0.4, seed).unwrap();
            let (_, opt) = brute_force(&g);
            let cfg = AnnealConfig { seed, ..AnnealConfig::default() };
            let (_, v) = multistart_annealing(&g, &cfg, 4);
            assert!(v >= opt.saturating_sub(1), "seed={seed}: {v} vs opt {opt}");
        }
    }

    #[test]
    fn returned_best_is_best_seen() {
        let g = gnp(30, 0.3, 9).unwrap();
        let (cut, v) = simulated_annealing(&g, &AnnealConfig::default());
        assert_eq!(cut.cut_value(&g), v);
        assert!(v * 2 >= g.m() as u64, "below the random expectation");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let g = gnp(20, 0.4, 2).unwrap();
        let a = simulated_annealing(&g, &AnnealConfig::default());
        let b = simulated_annealing(&g, &AnnealConfig::default());
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn zero_temperature_is_greedy_descent() {
        // t_start = t_end → constant temperature; tiny value ≈ pure hill
        // climbing, which still reaches a 1-opt-like state.
        let g = gnp(20, 0.4, 5).unwrap();
        let cfg = AnnealConfig {
            t_start: 1e-9,
            t_end: 1e-9,
            sweeps: 100,
            seed: 3,
        };
        let (cut, v) = simulated_annealing(&g, &cfg);
        assert_eq!(cut.cut_value(&g), v);
        assert!(2 * v >= g.m() as u64);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        assert_eq!(simulated_annealing(&g, &AnnealConfig::default()).1, 0);
        assert_eq!(parallel_tempering(&g, &TemperingConfig::default()).1, 0);
    }

    #[test]
    fn tempering_finds_optimum_on_small_graphs() {
        for (g, opt) in [
            (petersen(), 12u64),
            (complete_bipartite(4, 6), 24),
            (cycle(13), 12),
        ] {
            let (cut, v) = parallel_tempering(&g, &TemperingConfig::default());
            assert_eq!(cut.cut_value(&g), v);
            assert!(v >= opt - 1, "got {v}, opt {opt}");
        }
    }

    #[test]
    fn tempering_matches_exact_on_random_graphs() {
        for seed in 0..3u64 {
            let g = gnp(18, 0.35, seed).unwrap();
            let (_, opt) = brute_force(&g);
            let cfg = TemperingConfig { seed, ..TemperingConfig::default() };
            let (_, v) = parallel_tempering(&g, &cfg);
            assert!(v >= opt.saturating_sub(1), "seed={seed}: {v} vs {opt}");
        }
    }

    #[test]
    fn tempering_at_least_as_good_as_single_chain() {
        // With a matched total sweep budget, tempering should not lose to
        // a single annealing run (statistically; fixed seeds here).
        let g = gnp(40, 0.25, 4).unwrap();
        let t_cfg = TemperingConfig { replicas: 8, rounds: 25, ..TemperingConfig::default() };
        let (_, pt) = parallel_tempering(&g, &t_cfg);
        let a_cfg = AnnealConfig { sweeps: 200, ..AnnealConfig::default() };
        let (_, sa) = simulated_annealing(&g, &a_cfg);
        assert!(pt + 2 >= sa, "tempering {pt} far below annealing {sa}");
    }

    #[test]
    fn tempering_deterministic() {
        let g = gnp(20, 0.3, 8).unwrap();
        let a = parallel_tempering(&g, &TemperingConfig::default());
        let b = parallel_tempering(&g, &TemperingConfig::default());
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }

    // ------------------------------------------------------------------
    // CoolingSchedule (the annealed-circuit σ law)
    // ------------------------------------------------------------------

    #[test]
    fn schedule_kinds_roundtrip_names() {
        for kind in [ScheduleKind::Geometric, ScheduleKind::Linear] {
            assert_eq!(ScheduleKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ScheduleKind::from_name("exponential"), None);
    }

    #[test]
    fn schedule_endpoints_are_exact_bit_for_bit() {
        for schedule in [
            CoolingSchedule::geometric(1.7, 0.003).unwrap(),
            CoolingSchedule::linear(2.5, 0.25).unwrap(),
        ] {
            for len in [2u64, 3, 7, 64, 1000] {
                let v = schedule.values(len);
                assert_eq!(v.len() as u64, len);
                assert_eq!(v[0].to_bits(), schedule.start().to_bits(), "len={len}");
                assert_eq!(
                    v[len as usize - 1].to_bits(),
                    schedule.end().to_bits(),
                    "len={len}"
                );
            }
        }
    }

    #[test]
    fn schedule_is_monotone_non_increasing() {
        for schedule in [
            CoolingSchedule::geometric(1.0, 0.01).unwrap(),
            CoolingSchedule::linear(3.0, 0.0).unwrap(),
            CoolingSchedule::constant(0.5).unwrap(),
        ] {
            for len in [1u64, 2, 17, 256] {
                let v = schedule.values(len);
                assert!(
                    v.windows(2).all(|w| w[0] >= w[1]),
                    "{schedule:?} len={len}: {v:?}"
                );
            }
        }
    }

    #[test]
    fn schedule_length_equals_budget() {
        let s = CoolingSchedule::default();
        for budget in [0u64, 1, 2, 100] {
            assert_eq!(s.values(budget).len() as u64, budget);
        }
        // One-step schedules sit at the start level (nothing to cool
        // across), and out-of-horizon queries clamp to the end level.
        assert_eq!(s.values(1), vec![s.start()]);
        assert_eq!(s.at(99, 10), s.end());
    }

    #[test]
    fn constant_schedule_never_cools() {
        let s = CoolingSchedule::constant(0.75).unwrap();
        assert!(s.is_constant());
        assert!(s.values(64).iter().all(|&v| v == 0.75));
        assert!(!CoolingSchedule::default().is_constant());
    }

    #[test]
    fn geometric_midpoint_is_the_geometric_mean() {
        // σ(mid) of a 3-point geometric schedule is √(start·end).
        let s = CoolingSchedule::geometric(4.0, 1.0).unwrap();
        let v = s.values(3);
        assert!((v[1] - 2.0).abs() < 1e-12, "{v:?}");
        let lin = CoolingSchedule::linear(4.0, 1.0).unwrap().values(3);
        assert!((lin[1] - 2.5).abs() < 1e-12, "{lin:?}");
    }

    #[test]
    fn schedule_rejects_degenerate_endpoints() {
        assert!(CoolingSchedule::geometric(f64::NAN, 0.1).is_err());
        assert!(CoolingSchedule::linear(1.0, f64::INFINITY).is_err());
        assert!(CoolingSchedule::geometric(0.1, 1.0).is_err(), "heating");
        assert!(CoolingSchedule::geometric(1.0, 0.0).is_err(), "zero ratio");
        assert!(CoolingSchedule::geometric(0.0, 0.0).is_err());
        assert!(CoolingSchedule::linear(1.0, -0.5).is_err(), "negative σ");
        assert!(CoolingSchedule::constant(-1.0).is_err());
        assert!(CoolingSchedule::linear(1.0, 0.0).is_ok(), "linear to zero is fine");
        let e = CoolingSchedule::geometric(0.5, 1.5).unwrap_err();
        assert!(e.to_string().contains("must cool"), "{e}");
    }
}
