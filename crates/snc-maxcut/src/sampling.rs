//! The sampling API shared by every stochastic solver.
//!
//! The paper's figures plot "maximum cut weight relative to solver as a
//! function of the number of samples" — i.e. best-so-far curves recorded at
//! (log-spaced) sample counts up to 2^20. [`sample_best_trace`] produces
//! exactly that curve for any [`CutSampler`]; [`parallel_best_traces`] runs
//! independent replicas across threads with deterministic per-replica
//! seeds.

use snc_graph::{CutAssignment, CutTracker, Graph};
use snc_neuro::parallel::run_replicas;

/// A stochastic source of cut assignments for a fixed graph.
pub trait CutSampler {
    /// Draws the next cut sample.
    fn next_cut(&mut self) -> CutAssignment;
}

/// Best-so-far cut values recorded at increasing sample-count checkpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BestTrace {
    /// Sample counts at which the best value was recorded (ascending).
    pub checkpoints: Vec<u64>,
    /// Best cut value seen within the first `checkpoints[k]` samples.
    pub best: Vec<u64>,
}

impl BestTrace {
    /// The final (overall best) cut value.
    pub fn final_best(&self) -> u64 {
        self.best.last().copied().unwrap_or(0)
    }

    /// Best values as `f64` relative to a reference value (the paper
    /// normalizes by the software solver's best cut).
    pub fn relative_to(&self, reference: f64) -> Vec<f64> {
        self.best
            .iter()
            .map(|&b| {
                if reference > 0.0 {
                    b as f64 / reference
                } else {
                    1.0
                }
            })
            .collect()
    }
}

/// Folds one drawn cut into a lazily-initialized [`CutTracker`],
/// returning the cut's value. The first call seeds the tracker (one
/// scratch evaluation); later calls diff incrementally.
pub(crate) fn tracked_value<'g>(
    tracker: &mut Option<CutTracker<'g>>,
    graph: &'g Graph,
    cut: CutAssignment,
) -> u64 {
    match tracker.as_mut() {
        Some(t) => t.set_to(&cut),
        None => {
            let t = CutTracker::new(graph, cut);
            let v = t.value();
            *tracker = Some(t);
            v
        }
    }
}

/// Weighted-graph variant of [`tracked_value`].
pub(crate) fn tracked_value_weighted<'g>(
    tracker: &mut Option<snc_graph::WeightedCutTracker<'g>>,
    graph: &'g snc_graph::WeightedGraph,
    cut: CutAssignment,
) -> f64 {
    match tracker.as_mut() {
        Some(t) => t.set_to(&cut),
        None => {
            let t = snc_graph::WeightedCutTracker::new(graph, cut);
            let v = t.value();
            *tracker = Some(t);
            v
        }
    }
}

/// Spike-pattern variant of [`tracked_value`] (avoids materializing a
/// [`CutAssignment`] per sample after the first).
pub(crate) fn tracked_value_from_spikes<'g>(
    tracker: &mut Option<CutTracker<'g>>,
    graph: &'g Graph,
    spiked: &[bool],
) -> u64 {
    match tracker.as_mut() {
        Some(t) => t.set_from_spikes(spiked),
        None => {
            let t = CutTracker::new(graph, CutAssignment::from_spikes(spiked));
            let v = t.value();
            *tracker = Some(t);
            v
        }
    }
}

/// The shared checkpoint loop of the batched multi-replica samplers
/// (`BatchedLifGwCircuit::best_traces`,
/// `BatchedLifTrevisanCircuit::best_traces`): draws samples up to the
/// last checkpoint, tracking a best-so-far value per replica, and
/// records the bests at every checkpoint.
///
/// `draw_values` advances the batch by one sample and writes each
/// replica's cut value into its slot (using the replica's lazily-seeded
/// [`CutTracker`] to evaluate incrementally). Keeping the loop here means
/// the circuits only supply the advance-and-read step, so the checkpoint
/// semantics cannot drift between circuit families.
///
/// # Panics
///
/// Panics if `checkpoints` is not strictly ascending.
pub(crate) fn batched_best_traces<'g>(
    checkpoints: &[u64],
    replicas: usize,
    mut draw_values: impl FnMut(&mut [Option<CutTracker<'g>>], &mut [u64]),
) -> Vec<BestTrace> {
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly ascending"
    );
    let mut trackers: Vec<Option<CutTracker<'g>>> = (0..replicas).map(|_| None).collect();
    let mut values = vec![0u64; replicas];
    let mut best = vec![0u64; replicas];
    let mut out: Vec<Vec<u64>> = vec![Vec::with_capacity(checkpoints.len()); replicas];
    let mut drawn = 0u64;
    for &cp in checkpoints {
        while drawn < cp {
            draw_values(&mut trackers, &mut values);
            for (b, &v) in best.iter_mut().zip(&values) {
                *b = (*b).max(v);
            }
            drawn += 1;
        }
        for (trace, &b) in out.iter_mut().zip(&best) {
            trace.push(b);
        }
    }
    out.into_iter()
        .map(|b| BestTrace {
            checkpoints: checkpoints.to_vec(),
            best: b,
        })
        .collect()
}

/// Logarithmically spaced checkpoints `1, 2, 4, …` up to and including
/// `budget` (deduplicated; empty for zero budget).
pub fn log2_checkpoints(budget: u64) -> Vec<u64> {
    let mut cp = Vec::new();
    let mut c = 1u64;
    while c < budget {
        cp.push(c);
        c = c.saturating_mul(2);
    }
    if budget > 0 {
        cp.push(budget);
    }
    cp.dedup();
    cp
}

/// Draws samples up to the last checkpoint, recording the best-so-far cut
/// value at every checkpoint.
///
/// Cut values are maintained incrementally with a [`CutTracker`]: each
/// sample is diffed against the previous one and updated flip-by-flip, so
/// samplers whose consecutive cuts differ in few vertices (LIF-Trevisan's
/// slowly-learning readout, annealing) pay O(changed · degree) per sample
/// instead of O(m). The tracker's integer arithmetic is exact, so the
/// recorded trace is identical to evaluating every sample from scratch.
///
/// # Panics
///
/// Panics if `checkpoints` is not strictly ascending.
pub fn sample_best_trace(
    sampler: &mut impl CutSampler,
    graph: &Graph,
    checkpoints: &[u64],
) -> BestTrace {
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly ascending"
    );
    let mut best = 0u64;
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut drawn = 0u64;
    let mut tracker: Option<CutTracker<'_>> = None;
    for &cp in checkpoints {
        while drawn < cp {
            let cut = sampler.next_cut();
            // A cut and its complement are equivalent; both are covered by
            // the single evaluation.
            let value = tracked_value(&mut tracker, graph, cut);
            best = best.max(value);
            drawn += 1;
        }
        out.push(best);
    }
    BestTrace {
        checkpoints: checkpoints.to_vec(),
        best: out,
    }
}

/// Runs `replicas` independent samplers (built by `factory`, which receives
/// the replica index for seeding) across `threads` threads; each replica
/// records the same checkpoint grid. Results are deterministic and
/// independent of `threads`.
pub fn parallel_best_traces<S, F>(
    factory: F,
    graph: &Graph,
    checkpoints: &[u64],
    replicas: usize,
    threads: usize,
) -> Vec<BestTrace>
where
    S: CutSampler,
    F: Fn(usize) -> S + Sync,
{
    run_replicas(replicas, threads, |i| {
        let mut sampler = factory(i);
        sample_best_trace(&mut sampler, graph, checkpoints)
    })
}

/// Summary statistics of a fixed-budget sampling run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleStats {
    /// Best cut value seen.
    pub best: u64,
    /// Mean cut value across all samples.
    pub mean: f64,
    /// Number of samples drawn.
    pub count: u64,
}

/// Draws `budget` samples and returns best and mean cut values.
///
/// The *mean* is the sensitive statistic for distribution quality: a
/// sampler with a distorted covariance can still luck into good best-of-N
/// cuts while its average sample degrades.
pub fn sample_stats(
    sampler: &mut impl CutSampler,
    graph: &Graph,
    budget: u64,
) -> SampleStats {
    let mut best = 0u64;
    let mut total = 0.0f64;
    let mut tracker: Option<CutTracker<'_>> = None;
    for _ in 0..budget {
        let cut = sampler.next_cut();
        let value = tracked_value(&mut tracker, graph, cut);
        best = best.max(value);
        total += value as f64;
    }
    SampleStats {
        best,
        mean: if budget > 0 { total / budget as f64 } else { 0.0 },
        count: budget,
    }
}

/// Merges replica traces into a single "total samples" trace: at checkpoint
/// `k` the merged best is the max over replicas, and the merged sample
/// count is the sum.
///
/// # Panics
///
/// Panics if traces have mismatched checkpoint grids.
pub fn merge_traces(traces: &[BestTrace]) -> BestTrace {
    assert!(!traces.is_empty(), "cannot merge zero traces");
    let grid = &traces[0].checkpoints;
    for t in traces {
        assert_eq!(&t.checkpoints, grid, "checkpoint grids differ");
    }
    let checkpoints: Vec<u64> = grid.iter().map(|&c| c * traces.len() as u64).collect();
    let best: Vec<u64> = (0..grid.len())
        .map(|k| traces.iter().map(|t| t.best[k]).max().unwrap_or(0))
        .collect();
    BestTrace { checkpoints, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snc_devices::Xoshiro256pp;
    use snc_graph::generators::structured::cycle;

    struct CountingSampler {
        rng: Xoshiro256pp,
        n: usize,
        calls: u64,
    }

    impl CutSampler for CountingSampler {
        fn next_cut(&mut self) -> CutAssignment {
            self.calls += 1;
            CutAssignment::random(self.n, &mut self.rng)
        }
    }

    #[test]
    fn checkpoints_cover_budget() {
        assert_eq!(log2_checkpoints(8), vec![1, 2, 4, 8]);
        assert_eq!(log2_checkpoints(10), vec![1, 2, 4, 8, 10]);
        assert_eq!(log2_checkpoints(1), vec![1]);
        assert!(log2_checkpoints(0).is_empty());
    }

    #[test]
    fn trace_is_monotone_and_draws_exactly_budget() {
        let g = cycle(9);
        let mut s = CountingSampler {
            rng: Xoshiro256pp::new(1),
            n: 9,
            calls: 0,
        };
        let cp = log2_checkpoints(64);
        let trace = sample_best_trace(&mut s, &g, &cp);
        assert_eq!(s.calls, 64);
        assert!(trace.best.windows(2).all(|w| w[0] <= w[1]));
        assert!(trace.final_best() <= g.m() as u64);
        // C9 random cuts find at least something.
        assert!(trace.final_best() >= 6);
    }

    #[test]
    fn relative_normalization() {
        let t = BestTrace {
            checkpoints: vec![1, 2],
            best: vec![5, 10],
        };
        assert_eq!(t.relative_to(10.0), vec![0.5, 1.0]);
        assert_eq!(t.relative_to(0.0), vec![1.0, 1.0]);
    }

    #[test]
    fn parallel_traces_deterministic_across_thread_counts() {
        let g = cycle(11);
        let cp = log2_checkpoints(32);
        let factory = |i: usize| CountingSampler {
            rng: Xoshiro256pp::new(1000 + i as u64),
            n: 11,
            calls: 0,
        };
        let a = parallel_best_traces(factory, &g, &cp, 4, 1);
        let b = parallel_best_traces(factory, &g, &cp, 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_semantics() {
        let t1 = BestTrace {
            checkpoints: vec![1, 2],
            best: vec![3, 5],
        };
        let t2 = BestTrace {
            checkpoints: vec![1, 2],
            best: vec![4, 4],
        };
        let m = merge_traces(&[t1, t2]);
        assert_eq!(m.checkpoints, vec![2, 4]);
        assert_eq!(m.best, vec![4, 5]);
    }

    #[test]
    fn sample_stats_semantics() {
        let g = cycle(9);
        let mut s = CountingSampler {
            rng: Xoshiro256pp::new(2),
            n: 9,
            calls: 0,
        };
        let stats = sample_stats(&mut s, &g, 500);
        assert_eq!(stats.count, 500);
        assert!(stats.mean <= stats.best as f64);
        // Random cuts on C9 average m/2 = 4.5.
        assert!((stats.mean - 4.5).abs() < 0.5, "mean={}", stats.mean);
        let empty = sample_stats(&mut s, &g, 0);
        assert_eq!(empty.best, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bad_checkpoints_panic() {
        let g = cycle(5);
        let mut s = CountingSampler {
            rng: Xoshiro256pp::new(1),
            n: 5,
            calls: 0,
        };
        sample_best_trace(&mut s, &g, &[4, 2]);
    }
}
