//! The uniform random-cut baseline (the paper's red ✕ curves).
//!
//! Every vertex independently lands on either side with probability 1/2.
//! In expectation this cuts `m/2` edges — the 0.5-approximation that all
//! serious algorithms must beat.

use crate::sampling::CutSampler;
use snc_devices::Xoshiro256pp;
use snc_graph::CutAssignment;

/// A sampler producing uniformly random cuts.
#[derive(Clone, Debug)]
pub struct RandomCutSampler {
    n: usize,
    rng: Xoshiro256pp,
}

impl RandomCutSampler {
    /// Creates a sampler for graphs with `n` vertices.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            n,
            rng: Xoshiro256pp::new(seed),
        }
    }
}

impl CutSampler for RandomCutSampler {
    fn next_cut(&mut self) -> CutAssignment {
        CutAssignment::random(self.n, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snc_graph::generators::structured::complete;

    #[test]
    fn mean_cut_is_half_the_edges() {
        let g = complete(12); // m = 66
        let mut s = RandomCutSampler::new(12, 3);
        let samples = 4000;
        let total: u64 = (0..samples).map(|_| s.next_cut().cut_value(&g)).sum();
        let mean = total as f64 / samples as f64;
        assert!((mean - 33.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn deterministic() {
        let mut a = RandomCutSampler::new(10, 42);
        let mut b = RandomCutSampler::new(10, 42);
        for _ in 0..20 {
            assert_eq!(a.next_cut(), b.next_cut());
        }
    }
}
