//! MAXCUT solvers and the paper's neuromorphic circuits.
//!
//! This crate is the primary contribution of the reproduction: it
//! implements every solver the paper evaluates, on a common sampling API.
//!
//! * [`random`] — the uniform random-cut baseline (red ✕ curves).
//! * [`gw`] — the software Goemans–Williamson pipeline: Burer–Monteiro SDP
//!   (rank 4, §IV.A) plus Gaussian/hyperplane rounding (green ▲ curves).
//! * [`trevisan`] — the Trevisan "simple spectral" algorithm: minimum
//!   eigenvector of `I + D^{-1/2} A D^{-1/2}`, sign-thresholded (§II.B).
//! * [`circuits`] — **LIF-GW** (Fig. 1) and **LIF-Trevisan** (Fig. 2), the
//!   neuromorphic circuits (blue ● and orange ■ curves), plus two
//!   companion families: **LIF-annealed** (the LIF-GW substrate under a σ
//!   cooling schedule) and **Hopfield** (deterministic continuous
//!   relaxation, the classical analog baseline).
//! * [`exact`] — Gray-code brute force and branch-and-bound, for ground
//!   truth on small instances.
//! * [`anneal`] — simulated annealing, the software version of the
//!   hardware Ising-machine baseline class the paper positions against.
//! * [`weighted`] — the full stack on weighted graphs (two Table-I
//!   networks are weighted).
//! * [`greedy`] — 1-opt local search, an additional classical baseline.
//! * [`sampling`] — the [`CutSampler`] trait, best-so-far traces at
//!   logarithmic checkpoints (the x-axis of Figs. 3–4), and a deterministic
//!   parallel sampling runner.
//! * [`extensions`] — MAX2SAT and MAXDICUT via the same SDP + rounding
//!   machinery, the generalization sketched in the Discussion (§VI).
//! * [`cache`] — the deterministic [`SdpCache`]: memoized SDP
//!   factor/bound pairs keyed by `(graph fingerprint, sdp seed, rank)`,
//!   so repeated LIF-GW solves of one graph pay the offline stage once.
//! * [`mod@solve`] — request→circuit dispatch: one deterministic entry point
//!   turning (graph, family, budget, replicas, seed) into the best cut,
//!   its partition, and a merged trace — the unit of work the
//!   `snc-server` serving layer schedules.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anneal;
pub mod cache;
pub mod circuits;
pub mod exact;
pub mod extensions;
pub mod greedy;
pub mod gw;
pub mod random;
pub mod sampling;
pub mod solve;
pub mod stats;
pub mod trevisan;
pub mod weighted;

pub use anneal::{CoolingSchedule, ScheduleError, ScheduleKind};
pub use cache::{CacheStats, SdpCache};
pub use circuits::hopfield::{BatchedHopfieldCircuit, HopfieldCircuit, HopfieldConfig};
pub use circuits::lif_annealed::{
    BatchedLifAnnealedCircuit, LifAnnealedCircuit, LifAnnealedConfig,
};
pub use circuits::lif_gw::{BatchedLifGwCircuit, LifGwCircuit, LifGwConfig};
pub use circuits::lif_trevisan::{BatchedLifTrevisanCircuit, LifTrevisanCircuit, LifTrevisanConfig};
pub use gw::{solve_gw, GwConfig, GwSampler, GwSolution};
pub use random::RandomCutSampler;
pub use sampling::{
    log2_checkpoints, merge_traces, parallel_best_traces, sample_best_trace, BestTrace, CutSampler,
};
pub use solve::{
    solve, solve_weighted, solve_with_cache, CircuitFamily, SolveError, SolveOutcome, SolveSpec,
    StageTimings, WeightedSolveOutcome,
};
pub use trevisan::{solve_trevisan, SpectralRounding, TrevisanConfig, TrevisanSolution};
pub use weighted::WeightedBestTrace;
