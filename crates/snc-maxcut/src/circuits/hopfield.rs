//! The Hopfield–Tank relaxation circuit: the deterministic
//! continuous-descent baseline family.
//!
//! Anti-ferromagnetic couplings on the graph's edges make the Hopfield
//! energy's coupling term `½ Σ x_i x_j` over edges — minimized exactly
//! when adjacent units take opposite signs — so the sign-threshold
//! readout of the relaxation trajectory is a MAXCUT partition that
//! improves as the network descends. Unlike the stochastic families,
//! nothing is random after the seeded initial state: successive samples
//! read out successive stretches of one deterministic trajectory, and
//! replicas differ only in their seeded starting points (restarts, not
//! noise).

use crate::sampling::CutSampler;
use snc_graph::{CutAssignment, Graph, WeightedGraph};
use snc_neuro::hopfield::{HopfieldNetwork, HopfieldParams};

/// Configuration of the Hopfield circuit family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HopfieldConfig {
    /// Dynamics parameters (step size, gain, leak, init scale).
    pub params: HopfieldParams,
    /// Euler steps integrated between successive cut readouts.
    pub steps_per_sample: u64,
}

impl Default for HopfieldConfig {
    fn default() -> Self {
        Self {
            params: HopfieldParams::default(),
            steps_per_sample: 8,
        }
    }
}

/// One Hopfield–Tank relaxation with sign-threshold readout.
#[derive(Clone, Debug)]
pub struct HopfieldCircuit {
    net: HopfieldNetwork,
    steps_per_sample: u64,
}

impl HopfieldCircuit {
    /// Builds the circuit on an unweighted graph (unit couplings on
    /// every edge).
    pub fn new(graph: &Graph, seed: u64, cfg: &HopfieldConfig) -> Self {
        let couplings: Vec<(u32, u32, f64)> =
            graph.edges().map(|(u, v)| (u, v, 1.0)).collect();
        Self::from_couplings(graph.n(), &couplings, seed, cfg)
    }

    /// Builds the circuit on a weighted graph. Negative edge weights
    /// become ferromagnetic couplings (the endpoints prefer the same
    /// side), matching the weighted cut objective.
    pub fn new_weighted(graph: &WeightedGraph, seed: u64, cfg: &HopfieldConfig) -> Self {
        let couplings: Vec<(u32, u32, f64)> = graph.edges().collect();
        Self::from_couplings(graph.n(), &couplings, seed, cfg)
    }

    fn from_couplings(
        n: usize,
        couplings: &[(u32, u32, f64)],
        seed: u64,
        cfg: &HopfieldConfig,
    ) -> Self {
        Self {
            net: HopfieldNetwork::new(n, couplings, cfg.params, seed),
            steps_per_sample: cfg.steps_per_sample.max(1),
        }
    }

    /// Number of vertices / units.
    pub fn n(&self) -> usize {
        self.net.n()
    }

    /// Euler steps integrated per sample.
    pub fn steps_per_sample(&self) -> u64 {
        self.steps_per_sample
    }

    /// The underlying relaxation network (for energy inspection).
    pub fn network(&self) -> &HopfieldNetwork {
        &self.net
    }
}

impl CutSampler for HopfieldCircuit {
    fn next_cut(&mut self) -> CutAssignment {
        self.net.step_many(self.steps_per_sample);
        CutAssignment::from_signs(self.net.activations())
    }
}

/// `R` Hopfield relaxations advanced in lock-step — independent seeded
/// restarts of the same deterministic descent. Replica `r`'s sample
/// stream is *definitionally* the sequential circuit's with seed
/// `seeds[r]` (the dynamics are deterministic and unshared), which the
/// equivalence test below pins anyway so the family keeps the same
/// batched-vs-sequential contract as the stochastic circuits.
#[derive(Clone, Debug)]
pub struct BatchedHopfieldCircuit {
    circuits: Vec<HopfieldCircuit>,
}

impl BatchedHopfieldCircuit {
    /// Builds one relaxation per seed on an unweighted graph.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn new(graph: &Graph, seeds: &[u64], cfg: &HopfieldConfig) -> Self {
        assert!(!seeds.is_empty(), "at least one replica seed");
        Self {
            circuits: seeds
                .iter()
                .map(|&s| HopfieldCircuit::new(graph, s, cfg))
                .collect(),
        }
    }

    /// Builds one relaxation per seed on a weighted graph.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn new_weighted(graph: &WeightedGraph, seeds: &[u64], cfg: &HopfieldConfig) -> Self {
        assert!(!seeds.is_empty(), "at least one replica seed");
        Self {
            circuits: seeds
                .iter()
                .map(|&s| HopfieldCircuit::new_weighted(graph, s, cfg))
                .collect(),
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.circuits.len()
    }

    /// Number of vertices / units per replica.
    pub fn n(&self) -> usize {
        self.circuits[0].n()
    }

    /// Advances all replicas to the next sample and returns one cut per
    /// replica (index `r` corresponds to `seeds[r]`).
    pub fn next_cuts(&mut self) -> Vec<CutAssignment> {
        self.circuits.iter_mut().map(CutSampler::next_cut).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force;
    use crate::sampling::{log2_checkpoints, sample_best_trace};
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::complete_bipartite;

    #[test]
    fn finds_the_bipartite_cut() {
        let g = complete_bipartite(4, 4);
        let mut circuit = HopfieldCircuit::new(&g, 3, &HopfieldConfig::default());
        let trace = sample_best_trace(&mut circuit, &g, &log2_checkpoints(64));
        assert_eq!(trace.final_best(), 16, "K(4,4) relaxes to the exact cut");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gnp(14, 0.4, 2).unwrap();
        let mut a = HopfieldCircuit::new(&g, 9, &HopfieldConfig::default());
        let mut b = HopfieldCircuit::new(&g, 9, &HopfieldConfig::default());
        for _ in 0..8 {
            assert_eq!(a.next_cut(), b.next_cut());
        }
    }

    #[test]
    fn batched_replicas_match_sequential_circuits() {
        let g = gnp(12, 0.5, 7).unwrap();
        let cfg = HopfieldConfig::default();
        let seeds = [10u64, 20, 30];
        let mut batch = BatchedHopfieldCircuit::new(&g, &seeds, &cfg);
        assert_eq!((batch.replicas(), batch.n()), (3, 12));
        let mut sequential: Vec<HopfieldCircuit> = seeds
            .iter()
            .map(|&s| HopfieldCircuit::new(&g, s, &cfg))
            .collect();
        for sample in 0..10 {
            let cuts = batch.next_cuts();
            for (r, circuit) in sequential.iter_mut().enumerate() {
                assert_eq!(cuts[r], circuit.next_cut(), "sample {sample} replica {r}");
            }
        }
    }

    #[test]
    fn restarts_reach_a_good_cut_on_random_graphs() {
        // Deterministic descent with a handful of restarts lands within
        // 80% of optimum on small ER graphs — a baseline, not a match
        // for the stochastic samplers, but far above random.
        for seed in 0..3u64 {
            let g = gnp(12, 0.5, seed).unwrap();
            let (_, opt) = brute_force(&g);
            if opt == 0 {
                continue;
            }
            let mut batch =
                BatchedHopfieldCircuit::new(&g, &[1, 2, 3, 4], &HopfieldConfig::default());
            let mut best = 0u64;
            for _ in 0..16 {
                for cut in batch.next_cuts() {
                    best = best.max(cut.cut_value(&g));
                }
            }
            let ratio = best as f64 / opt as f64;
            assert!(ratio >= 0.8, "seed={seed}: ratio {ratio}");
        }
    }

    #[test]
    fn weighted_construction_respects_signs() {
        // A strongly negative edge glues its endpoints to one side.
        let g = WeightedGraph::from_weighted_edges(
            3,
            &[(0, 1, -4.0), (1, 2, 1.0), (0, 2, 1.0)],
        )
        .unwrap();
        let mut circuit = HopfieldCircuit::new_weighted(&g, 1, &HopfieldConfig::default());
        let mut last = None;
        for _ in 0..40 {
            last = Some(circuit.next_cut());
        }
        let cut = last.unwrap();
        assert_eq!(cut.side(0), cut.side(1), "negative edge keeps 0,1 together");
        // And the achieved weighted value is the optimum (2.0: cut both
        // unit edges, keep the negative edge uncut).
        assert_eq!(g.cut_value(&cut), 2.0);
    }
}
