//! The LIF-Trevisan circuit (Fig. 2, §IV.B).
//!
//! One stochastic device per vertex drives the LIF population through
//! weights proportional to the Trevisan matrix `M = I + D^{-1/2}AD^{-1/2}`.
//! The membrane covariance is then `κ·M²`, whose minimum eigenvector equals
//! that of `M` (M is PSD). A single readout neuron's incoming weight vector
//! `w`, trained with Oja's anti-Hebbian rule on the population activity,
//! converges to that eigenvector; thresholding `w` by sign is the Trevisan
//! cut. *"This circuit solves the MAXCUT problem entirely within the
//! circuit, without requiring any external preprocessing."*
//!
//! Each call to [`CutSampler::next_cut`] advances the circuit by a fixed
//! number of plasticity updates and reads the current weight vector — so
//! the best-so-far curves *improve over time as learning proceeds*, the
//! characteristic shape of the orange curves in Figs. 3–4.

use crate::sampling::CutSampler;
use snc_devices::{CommonCause, DeviceModel};
use snc_graph::{CutAssignment, Graph};
use snc_neuro::{TwoStageConfig, TwoStageNetwork};

/// Configuration of the LIF-Trevisan circuit sampler.
#[derive(Clone, Debug)]
pub struct LifTrevisanConfig {
    /// Two-stage network configuration (LIF params, learning rate, gain).
    pub network: TwoStageConfig,
    /// Plasticity updates applied per emitted cut sample.
    pub updates_per_sample: u64,
    /// Device model (fair coins in the paper's evaluation).
    pub device: DeviceModel,
    /// Optional cross-device correlation (robustness study).
    pub common_cause: Option<CommonCause>,
}

impl Default for LifTrevisanConfig {
    fn default() -> Self {
        Self {
            network: TwoStageConfig::default(),
            updates_per_sample: 1,
            device: DeviceModel::fair(),
            common_cause: None,
        }
    }
}

/// The LIF-Trevisan circuit.
#[derive(Clone, Debug)]
pub struct LifTrevisanCircuit {
    net: TwoStageNetwork,
    updates_per_sample: u64,
}

impl LifTrevisanCircuit {
    /// Builds the circuit for a graph.
    pub fn new(graph: &Graph, seed: u64, cfg: &LifTrevisanConfig) -> Self {
        let net = TwoStageNetwork::with_devices(
            graph,
            cfg.device.clone(),
            cfg.common_cause,
            seed,
            cfg.network,
        );
        Self {
            net,
            updates_per_sample: cfg.updates_per_sample.max(1),
        }
    }

    /// Number of vertices (= neurons = devices).
    pub fn n(&self) -> usize {
        self.net.n()
    }

    /// The current plastic weight vector.
    pub fn readout_weights(&self) -> &[f64] {
        self.net.readout_weights()
    }

    /// Total plasticity updates applied.
    pub fn updates(&self) -> u64 {
        self.net.updates()
    }

    /// The circuit's current cut hypothesis without advancing time.
    pub fn current_cut(&self) -> CutAssignment {
        CutAssignment::from_signs(self.net.readout_weights())
    }
}

impl CutSampler for LifTrevisanCircuit {
    fn next_cut(&mut self) -> CutAssignment {
        self.net.run_updates(self.updates_per_sample);
        self.current_cut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{log2_checkpoints, sample_best_trace};
    use crate::trevisan::{solve_trevisan, TrevisanConfig};
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::{complete_bipartite, cycle};
    use snc_linalg::vector;

    #[test]
    fn solves_bipartite_within_budget() {
        let g = complete_bipartite(3, 3);
        let mut circuit = LifTrevisanCircuit::new(&g, 5, &LifTrevisanConfig::default());
        let trace = sample_best_trace(&mut circuit, &g, &log2_checkpoints(20_000));
        assert_eq!(trace.final_best(), 9, "trace={:?}", trace.best);
        assert_eq!(circuit.n(), 6);
    }

    #[test]
    fn performance_improves_with_learning() {
        // The characteristic LIF-TR shape: early samples are near-random,
        // late samples approach the spectral solution.
        let g = gnp(24, 0.3, 3).unwrap();
        let mut circuit = LifTrevisanCircuit::new(&g, 7, &LifTrevisanConfig::default());
        let cp = log2_checkpoints(30_000);
        let trace = sample_best_trace(&mut circuit, &g, &cp);
        let early = trace.best[2] as f64; // after 4 samples
        let late = trace.final_best() as f64;
        assert!(
            late > early,
            "no improvement: early={early} late={late} trace={:?}",
            trace.best
        );
        // Final cut must beat the random-cut expectation m/2.
        assert!(late > g.m() as f64 / 2.0);
    }

    #[test]
    fn converges_toward_software_spectral_cut() {
        let g = cycle(12); // bipartite ring: spectral cut = 12
        let software = solve_trevisan(&g, &TrevisanConfig::default()).unwrap();
        let mut circuit = LifTrevisanCircuit::new(&g, 9, &LifTrevisanConfig::default());
        let trace = sample_best_trace(&mut circuit, &g, &log2_checkpoints(30_000));
        assert!(
            trace.final_best() >= software.value.saturating_sub(1),
            "circuit {} vs software {}",
            trace.final_best(),
            software.value
        );
        // The learned weight vector aligns with the software eigenvector.
        let align = vector::alignment(circuit.readout_weights(), &software.eigenvector);
        assert!(align > 0.9, "alignment={align}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = cycle(8);
        let mut a = LifTrevisanCircuit::new(&g, 11, &LifTrevisanConfig::default());
        let mut b = LifTrevisanCircuit::new(&g, 11, &LifTrevisanConfig::default());
        for _ in 0..50 {
            assert_eq!(a.next_cut(), b.next_cut());
        }
        assert_eq!(a.updates(), 50);
    }

    #[test]
    fn updates_per_sample_respected() {
        let g = cycle(6);
        let cfg = LifTrevisanConfig {
            updates_per_sample: 5,
            ..LifTrevisanConfig::default()
        };
        let mut circuit = LifTrevisanCircuit::new(&g, 1, &cfg);
        let _ = circuit.next_cut();
        let _ = circuit.next_cut();
        assert_eq!(circuit.updates(), 10);
    }
}
