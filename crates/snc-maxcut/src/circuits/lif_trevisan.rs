//! The LIF-Trevisan circuit (Fig. 2, §IV.B).
//!
//! One stochastic device per vertex drives the LIF population through
//! weights proportional to the Trevisan matrix `M = I + D^{-1/2}AD^{-1/2}`.
//! The membrane covariance is then `κ·M²`, whose minimum eigenvector equals
//! that of `M` (M is PSD). A single readout neuron's incoming weight vector
//! `w`, trained with Oja's anti-Hebbian rule on the population activity,
//! converges to that eigenvector; thresholding `w` by sign is the Trevisan
//! cut. *"This circuit solves the MAXCUT problem entirely within the
//! circuit, without requiring any external preprocessing."*
//!
//! Each call to [`CutSampler::next_cut`] advances the circuit by a fixed
//! number of plasticity updates and reads the current weight vector — so
//! the best-so-far curves *improve over time as learning proceeds*, the
//! characteristic shape of the orange curves in Figs. 3–4.

use crate::sampling::{BestTrace, CutSampler};
use snc_devices::{CommonCause, DeviceModel};
use snc_graph::{CutAssignment, Graph};
use snc_neuro::{BatchedTwoStageNetwork, TwoStageConfig, TwoStageNetwork};

/// Configuration of the LIF-Trevisan circuit sampler.
#[derive(Clone, Debug)]
pub struct LifTrevisanConfig {
    /// Two-stage network configuration (LIF params, learning rate, gain).
    pub network: TwoStageConfig,
    /// Plasticity updates applied per emitted cut sample.
    pub updates_per_sample: u64,
    /// Device model (fair coins in the paper's evaluation).
    pub device: DeviceModel,
    /// Optional cross-device correlation (robustness study).
    pub common_cause: Option<CommonCause>,
}

impl Default for LifTrevisanConfig {
    fn default() -> Self {
        Self {
            network: TwoStageConfig::default(),
            updates_per_sample: 1,
            device: DeviceModel::fair(),
            common_cause: None,
        }
    }
}

/// The LIF-Trevisan circuit.
#[derive(Clone, Debug)]
pub struct LifTrevisanCircuit {
    net: TwoStageNetwork,
    updates_per_sample: u64,
}

impl LifTrevisanCircuit {
    /// Builds the circuit for a graph.
    pub fn new(graph: &Graph, seed: u64, cfg: &LifTrevisanConfig) -> Self {
        let net = TwoStageNetwork::with_devices(
            graph,
            cfg.device.clone(),
            cfg.common_cause,
            seed,
            cfg.network,
        );
        Self {
            net,
            updates_per_sample: cfg.updates_per_sample.max(1),
        }
    }

    /// Number of vertices (= neurons = devices).
    pub fn n(&self) -> usize {
        self.net.n()
    }

    /// The current plastic weight vector.
    pub fn readout_weights(&self) -> &[f64] {
        self.net.readout_weights()
    }

    /// Total plasticity updates applied.
    pub fn updates(&self) -> u64 {
        self.net.updates()
    }

    /// The circuit's current cut hypothesis without advancing time.
    pub fn current_cut(&self) -> CutAssignment {
        CutAssignment::from_signs(self.net.readout_weights())
    }
}

impl CutSampler for LifTrevisanCircuit {
    fn next_cut(&mut self) -> CutAssignment {
        self.net.run_updates(self.updates_per_sample);
        self.current_cut()
    }
}

/// `R` LIF-Trevisan replicas advanced in lock-step, structure-of-arrays.
///
/// Each replica is an independent [`LifTrevisanCircuit`] (own device seed
/// and plastic readout vector, same graph and configuration), but all
/// replicas share one traversal of the sparse Trevisan weight matrix per
/// time step and one SoA Oja plasticity pass per update, via
/// [`BatchedTwoStageNetwork`]. Replica `r`'s sample stream is bit-for-bit
/// identical to `LifTrevisanCircuit::new(graph, seeds[r], cfg)` — batching
/// changes the schedule, never the samples — which the equivalence tests
/// pin for R ∈ {1, 8, 16}.
///
/// # Examples
///
/// ```
/// use snc_graph::generators::structured::cycle;
/// use snc_maxcut::{log2_checkpoints, BatchedLifTrevisanCircuit, LifTrevisanConfig};
///
/// let g = cycle(10);
/// let mut batch = BatchedLifTrevisanCircuit::new(&g, &[1, 2, 3, 4], &LifTrevisanConfig::default());
/// assert_eq!((batch.replicas(), batch.n()), (4, 10));
/// // One best-so-far learning curve per replica on a shared sample grid.
/// let traces = batch.best_traces(&g, &log2_checkpoints(8));
/// assert_eq!(traces.len(), 4);
/// assert!(traces.iter().all(|t| t.final_best() <= g.m() as u64));
/// ```
#[derive(Clone, Debug)]
pub struct BatchedLifTrevisanCircuit {
    net: BatchedTwoStageNetwork,
    updates_per_sample: u64,
}

impl BatchedLifTrevisanCircuit {
    /// Builds one replica per seed, mirroring [`LifTrevisanCircuit::new`].
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn new(graph: &Graph, seeds: &[u64], cfg: &LifTrevisanConfig) -> Self {
        let net = BatchedTwoStageNetwork::with_devices(
            graph,
            cfg.device.clone(),
            cfg.common_cause,
            seeds,
            cfg.network,
        );
        Self {
            net,
            updates_per_sample: cfg.updates_per_sample.max(1),
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.net.replicas()
    }

    /// Number of vertices (= neurons = devices) per replica.
    pub fn n(&self) -> usize {
        self.net.n()
    }

    /// Total plasticity updates applied to every replica.
    pub fn updates(&self) -> u64 {
        self.net.updates()
    }

    /// Replica `r`'s current plastic weight vector.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn readout_weights(&self, r: usize) -> &[f64] {
        self.net.readout_weights(r)
    }

    /// Replica `r`'s current cut hypothesis without advancing time.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn current_cut(&self, r: usize) -> CutAssignment {
        CutAssignment::from_signs(self.net.readout_weights(r))
    }

    /// Advances all replicas to the next sample and returns one cut per
    /// replica (index `r` corresponds to `seeds[r]`).
    pub fn next_cuts(&mut self) -> Vec<CutAssignment> {
        self.net.run_updates(self.updates_per_sample);
        (0..self.replicas()).map(|r| self.current_cut(r)).collect()
    }

    /// Runs every replica against the shared checkpoint grid and returns
    /// one best-so-far trace per replica — the batched, single-core
    /// equivalent of [`crate::sampling::parallel_best_traces`] over
    /// [`LifTrevisanCircuit`] factories with the same seeds, with
    /// identical output.
    ///
    /// Cut values are maintained per replica with an incremental
    /// [`snc_graph::CutTracker`], like the sequential sampling loop — a
    /// natural fit here because consecutive LIF-TR samples differ only
    /// where the slowly-learning readout vector changed sign.
    ///
    /// # Panics
    ///
    /// Panics if `graph.n()` differs from the circuit size or
    /// `checkpoints` is not strictly ascending.
    pub fn best_traces(&mut self, graph: &Graph, checkpoints: &[u64]) -> Vec<BestTrace> {
        assert_eq!(graph.n(), self.n(), "graph/circuit size mismatch");
        let replicas = self.replicas();
        crate::sampling::batched_best_traces(checkpoints, replicas, |trackers, values| {
            self.net.run_updates(self.updates_per_sample);
            for (r, (tracker, value)) in trackers.iter_mut().zip(values.iter_mut()).enumerate() {
                let cut = CutAssignment::from_signs(self.net.readout_weights(r));
                *value = crate::sampling::tracked_value(tracker, graph, cut);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{log2_checkpoints, sample_best_trace};
    use crate::trevisan::{solve_trevisan, TrevisanConfig};
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::{complete_bipartite, cycle};
    use snc_linalg::vector;

    #[test]
    fn solves_bipartite_within_budget() {
        let g = complete_bipartite(3, 3);
        let mut circuit = LifTrevisanCircuit::new(&g, 5, &LifTrevisanConfig::default());
        let trace = sample_best_trace(&mut circuit, &g, &log2_checkpoints(20_000));
        assert_eq!(trace.final_best(), 9, "trace={:?}", trace.best);
        assert_eq!(circuit.n(), 6);
    }

    #[test]
    fn performance_improves_with_learning() {
        // The characteristic LIF-TR shape: early samples are near-random,
        // late samples approach the spectral solution.
        let g = gnp(24, 0.3, 3).unwrap();
        let mut circuit = LifTrevisanCircuit::new(&g, 7, &LifTrevisanConfig::default());
        let cp = log2_checkpoints(30_000);
        let trace = sample_best_trace(&mut circuit, &g, &cp);
        let early = trace.best[2] as f64; // after 4 samples
        let late = trace.final_best() as f64;
        assert!(
            late > early,
            "no improvement: early={early} late={late} trace={:?}",
            trace.best
        );
        // Final cut must beat the random-cut expectation m/2.
        assert!(late > g.m() as f64 / 2.0);
    }

    #[test]
    fn converges_toward_software_spectral_cut() {
        let g = cycle(12); // bipartite ring: spectral cut = 12
        let software = solve_trevisan(&g, &TrevisanConfig::default()).unwrap();
        let mut circuit = LifTrevisanCircuit::new(&g, 9, &LifTrevisanConfig::default());
        let trace = sample_best_trace(&mut circuit, &g, &log2_checkpoints(30_000));
        assert!(
            trace.final_best() >= software.value.saturating_sub(1),
            "circuit {} vs software {}",
            trace.final_best(),
            software.value
        );
        // The learned weight vector aligns with the software eigenvector.
        let align = vector::alignment(circuit.readout_weights(), &software.eigenvector);
        assert!(align > 0.9, "alignment={align}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = cycle(8);
        let mut a = LifTrevisanCircuit::new(&g, 11, &LifTrevisanConfig::default());
        let mut b = LifTrevisanCircuit::new(&g, 11, &LifTrevisanConfig::default());
        for _ in 0..50 {
            assert_eq!(a.next_cut(), b.next_cut());
        }
        assert_eq!(a.updates(), 50);
    }

    #[test]
    fn updates_per_sample_respected() {
        let g = cycle(6);
        let cfg = LifTrevisanConfig {
            updates_per_sample: 5,
            ..LifTrevisanConfig::default()
        };
        let mut circuit = LifTrevisanCircuit::new(&g, 1, &cfg);
        let _ = circuit.next_cut();
        let _ = circuit.next_cut();
        assert_eq!(circuit.updates(), 10);
    }

    /// Acceptance pin: batched traces are bit-for-bit the sequential
    /// `TwoStageNetwork`-driven circuit's for seeded R ∈ {1, 8, 16}.
    #[test]
    fn batched_replicas_match_sequential_circuits() {
        let g = gnp(18, 0.3, 21).unwrap();
        let cfg = LifTrevisanConfig {
            updates_per_sample: 3,
            ..LifTrevisanConfig::default()
        };
        for r in [1usize, 8, 16] {
            let seeds: Vec<u64> = (0..r as u64).map(|i| 0x7E71 + i * 131).collect();
            let mut batch = BatchedLifTrevisanCircuit::new(&g, &seeds, &cfg);
            assert_eq!(batch.replicas(), r);
            let mut sequential: Vec<LifTrevisanCircuit> = seeds
                .iter()
                .map(|&s| LifTrevisanCircuit::new(&g, s, &cfg))
                .collect();
            for sample in 0..10 {
                let cuts = batch.next_cuts();
                for (i, circuit) in sequential.iter_mut().enumerate() {
                    assert_eq!(
                        cuts[i],
                        circuit.next_cut(),
                        "R={r} sample {sample} replica {i}"
                    );
                    for (a, b) in batch
                        .readout_weights(i)
                        .iter()
                        .zip(circuit.readout_weights())
                    {
                        assert_eq!(a.to_bits(), b.to_bits(), "R={r} replica {i}");
                    }
                }
            }
            assert_eq!(batch.updates(), 30);
        }
    }

    #[test]
    fn batched_best_traces_match_parallel_best_traces() {
        use crate::sampling::parallel_best_traces;
        use snc_neuro::Reset;
        let g = gnp(14, 0.4, 8).unwrap();
        // Both reset modes: with Reset::ToValue the spike flags feed back
        // into the stage-1 dynamics, exercising the other batched path.
        for reset in [Reset::None, Reset::ToValue(0.0)] {
            let cfg = LifTrevisanConfig {
                network: snc_neuro::TwoStageConfig {
                    reset,
                    ..snc_neuro::TwoStageConfig::default()
                },
                ..LifTrevisanConfig::default()
            };
            let seeds: Vec<u64> = (0..6u64).map(|i| 500 + i).collect();
            let cp = log2_checkpoints(24);
            let mut batch = BatchedLifTrevisanCircuit::new(&g, &seeds, &cfg);
            let batched = batch.best_traces(&g, &cp);
            let reference = parallel_best_traces(
                |i| LifTrevisanCircuit::new(&g, seeds[i], &cfg),
                &g,
                &cp,
                seeds.len(),
                2,
            );
            assert_eq!(batched, reference, "reset={reset:?}");
        }
    }

    #[test]
    fn batched_learning_improves_like_sequential() {
        // The characteristic LIF-TR shape survives batching: the merged
        // best-so-far curve improves as learning proceeds.
        let g = gnp(20, 0.3, 5).unwrap();
        let seeds = [11u64, 12, 13, 14];
        let mut batch = BatchedLifTrevisanCircuit::new(&g, &seeds, &LifTrevisanConfig::default());
        let traces = batch.best_traces(&g, &log2_checkpoints(4000));
        let merged = crate::sampling::merge_traces(&traces);
        assert!(merged.final_best() as f64 > g.m() as f64 / 2.0);
        assert!(merged.best.windows(2).all(|w| w[0] <= w[1]));
    }
}
