//! The paper's neuromorphic circuits (§IV).
//!
//! Both circuits share the motif of a stochastic device pool driving a LIF
//! population; they differ in where the weights come from and how a cut is
//! read out:
//!
//! | | LIF-GW (Fig. 1) | LIF-Trevisan (Fig. 2) |
//! |---|---|---|
//! | devices | `r = rank(SDP)` (4) | one per vertex |
//! | weights | SDP factor matrix | Trevisan matrix |
//! | offline work | solve the SDP | none |
//! | readout | spike pattern per sample step | sign of the plastic weight vector |
//!
//! This table is the trade-off the Discussion (§VI) highlights: LIF-GW
//! needs few devices and delivers superb solutions immediately but requires
//! an offline SDP; LIF-TR needs `n` devices and many samples but solves the
//! problem *entirely within the circuit*.

pub mod lif_gw;
pub mod lif_trevisan;
