//! The paper's neuromorphic circuits (§IV) plus two companion families.
//!
//! The paper's two circuits share the motif of a stochastic device pool
//! driving a LIF population; they differ in where the weights come from and
//! how a cut is read out:
//!
//! | | LIF-GW (Fig. 1) | LIF-Trevisan (Fig. 2) |
//! |---|---|---|
//! | devices | `r = rank(SDP)` (4) | one per vertex |
//! | weights | SDP factor matrix | Trevisan matrix |
//! | offline work | solve the SDP | none |
//! | readout | spike pattern per sample step | sign of the plastic weight vector |
//!
//! This table is the trade-off the Discussion (§VI) highlights: LIF-GW
//! needs few devices and delivers superb solutions immediately but requires
//! an offline SDP; LIF-TR needs `n` devices and many samples but solves the
//! problem *entirely within the circuit*.
//!
//! Two further families complete the comparison surface:
//!
//! | | LIF-annealed ([`lif_annealed`]) | Hopfield ([`hopfield`]) |
//! |---|---|---|
//! | substrate | the LIF-GW circuit, unchanged | continuous Hopfield–Tank units |
//! | randomness | device pool (σ-scheduled readout) | seeded initial state only |
//! | offline work | solve the SDP | none |
//! | readout | sign of `σ(t)·z + (σ(0)−σ(t))·gain·h` | sign of the activations |
//!
//! LIF-annealed cools the stochastic exploration into deterministic local
//! refinement over the sample budget; Hopfield is the deterministic
//! analog-descent baseline (restarts instead of noise).

pub mod hopfield;
pub mod lif_annealed;
pub mod lif_gw;
pub mod lif_trevisan;
