//! The LIF-Goemans-Williamson circuit (Fig. 1, §IV.A).
//!
//! A pool of `r` stochastic devices drives `n` LIF neurons through weights
//! proportional to the SDP factor matrix `W_GW`. By §III.C the stationary
//! membrane covariance is `κ·W_GW W_GWᵀ` — exactly (proportionally) the
//! covariance the Bertsimas–Ye sampling step requires. Thresholding each
//! neuron at its stationary mean makes "spiked vs. silent" the sign of a
//! centered Gaussian: *"Neurons that spike together on a given timestep map
//! to vertices on one side of the cut."*
//!
//! Between samples the circuit free-runs for a decorrelation interval
//! (several membrane time constants) so consecutive readouts are
//! approximately independent — the hardware analogue of drawing fresh
//! Gaussians.

use crate::sampling::{BestTrace, CutSampler};
use snc_devices::{CommonCause, DeviceModel, DevicePool, PoolSpec};
use snc_graph::{CutAssignment, Graph};
use snc_linalg::DMatrix;
use snc_neuro::{DenseWeights, DeviceDrivenNetwork, LifParams, ReplicaBatch, Reset};

/// Configuration of the LIF-GW circuit.
#[derive(Clone, Debug)]
pub struct LifGwConfig {
    /// Membrane parameters of the LIF population.
    pub lif: LifParams,
    /// Reset policy of the readout (default: none — pure statistical
    /// threshold readout; see `snc_neuro::lif::Reset`).
    pub reset: Reset,
    /// Scale applied to the SDP factors when programming the synapses
    /// ("the precise magnitudes of these weights are not critical", §IV.A).
    pub weight_scale: f64,
    /// Steps between samples; `None` uses the analytic decorrelation
    /// horizon (≈ 5τ).
    pub decorrelate_steps: Option<u64>,
    /// Device model (fair coins in the paper's evaluation).
    pub device: DeviceModel,
    /// Optional cross-device common-cause correlation (robustness study).
    pub common_cause: Option<CommonCause>,
    /// Steps to free-run before the first sample.
    pub warmup_steps: u64,
}

impl Default for LifGwConfig {
    fn default() -> Self {
        Self {
            lif: LifParams::default(),
            reset: Reset::None,
            weight_scale: 1.0,
            decorrelate_steps: None,
            device: DeviceModel::fair(),
            common_cause: None,
            warmup_steps: 200,
        }
    }
}

/// The LIF-GW sampling circuit.
#[derive(Clone, Debug)]
pub struct LifGwCircuit {
    net: DeviceDrivenNetwork<DenseWeights>,
    decorrelate: u64,
}

impl LifGwCircuit {
    /// Builds the circuit from an SDP factor matrix (`n × r`, one row per
    /// vertex — the output of [`crate::gw::solve_gw`]).
    pub fn new(factors: &DMatrix, seed: u64, cfg: &LifGwConfig) -> Self {
        let r = factors.cols();
        let weights = DenseWeights::from_matrix_scaled(factors, cfg.weight_scale);
        let mut spec = PoolSpec::uniform(cfg.device.clone(), r);
        if let Some(cc) = cfg.common_cause {
            spec = spec.with_common_cause(cc);
        }
        let pool = DevicePool::new(spec, seed);
        let mut net = DeviceDrivenNetwork::new(pool, weights, cfg.lif, cfg.reset);
        net.step_many(cfg.warmup_steps);
        let decorrelate = cfg
            .decorrelate_steps
            .unwrap_or_else(|| cfg.lif.decorrelation_steps());
        Self { net, decorrelate }
    }

    /// Number of vertices / neurons.
    pub fn n(&self) -> usize {
        self.net.neurons()
    }

    /// Number of devices (the SDP rank).
    pub fn devices(&self) -> usize {
        self.net.devices()
    }

    /// Steps simulated between samples.
    pub fn decorrelate_steps(&self) -> u64 {
        self.decorrelate
    }

    /// The underlying network (for inspection / covariance checks).
    pub fn network(&self) -> &DeviceDrivenNetwork<DenseWeights> {
        &self.net
    }
}

impl CutSampler for LifGwCircuit {
    fn next_cut(&mut self) -> CutAssignment {
        // Free-run to decorrelate from the previous sample, then read the
        // spike pattern of the final step.
        if self.decorrelate > 1 {
            self.net.step_many(self.decorrelate - 1);
        }
        let spiked = self.net.step();
        CutAssignment::from_spikes(spiked)
    }
}

/// `R` LIF-GW replicas advanced in lock-step, structure-of-arrays.
///
/// Each replica is an independent [`LifGwCircuit`] (own device seed, same
/// SDP factors and configuration), but all replicas share one traversal of
/// the weight matrix per time step via [`ReplicaBatch`]. Replica `r`'s
/// sample stream is bit-for-bit identical to
/// `LifGwCircuit::new(factors, seeds[r], cfg)` — batching changes the
/// schedule, never the samples — which the equivalence tests pin.
///
/// # Examples
///
/// ```
/// use snc_linalg::DMatrix;
/// use snc_maxcut::{BatchedLifGwCircuit, LifGwConfig};
///
/// // Tiny 3-vertex factor matrix (rank 2) for illustration; real use
/// // passes `solve_gw(..).factors`.
/// let factors = DMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.6, -0.8]]);
/// let mut batch = BatchedLifGwCircuit::new(
///     &factors, &[1, 2, 3, 4], &LifGwConfig::default());
/// assert_eq!((batch.replicas(), batch.n()), (4, 3));
/// let cuts = batch.next_cuts();
/// assert_eq!(cuts.len(), 4);
/// assert!(cuts.iter().all(|c| c.len() == 3));
/// ```
#[derive(Clone, Debug)]
pub struct BatchedLifGwCircuit {
    batch: ReplicaBatch<DenseWeights>,
    decorrelate: u64,
}

impl BatchedLifGwCircuit {
    /// Builds one replica per seed from an SDP factor matrix (`n × r`, one
    /// row per vertex), mirroring [`LifGwCircuit::new`] including the
    /// warmup free-run.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn new(factors: &DMatrix, seeds: &[u64], cfg: &LifGwConfig) -> Self {
        let r = factors.cols();
        let weights = DenseWeights::from_matrix_scaled(factors, cfg.weight_scale);
        let mut spec = PoolSpec::uniform(cfg.device.clone(), r);
        if let Some(cc) = cfg.common_cause {
            spec = spec.with_common_cause(cc);
        }
        let mut batch = ReplicaBatch::new(spec, seeds, weights, cfg.lif, cfg.reset);
        batch.step_many(cfg.warmup_steps);
        let decorrelate = cfg
            .decorrelate_steps
            .unwrap_or_else(|| cfg.lif.decorrelation_steps())
            .max(1);
        Self { batch, decorrelate }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.batch.replicas()
    }

    /// Number of vertices / neurons per replica.
    pub fn n(&self) -> usize {
        self.batch.neurons()
    }

    /// Number of devices per replica (the SDP rank).
    pub fn devices(&self) -> usize {
        self.batch.devices()
    }

    /// Steps simulated between samples.
    pub fn decorrelate_steps(&self) -> u64 {
        self.decorrelate
    }

    /// Advances all replicas to the next sample and returns one cut per
    /// replica (index `r` corresponds to `seeds[r]`).
    pub fn next_cuts(&mut self) -> Vec<CutAssignment> {
        self.batch.step_many(self.decorrelate);
        let n = self.n();
        let mut spikes = vec![false; n];
        (0..self.replicas())
            .map(|r| {
                self.batch.spiked_into(r, &mut spikes);
                CutAssignment::from_spikes(&spikes)
            })
            .collect()
    }

    /// Runs every replica against the shared checkpoint grid and returns
    /// one best-so-far trace per replica — the batched, single-core
    /// equivalent of [`crate::sampling::parallel_best_traces`] over
    /// [`LifGwCircuit`] factories with the same seeds, with identical
    /// output.
    ///
    /// Cut values are maintained per replica with an incremental
    /// [`snc_graph::CutTracker`], like the sequential sampling loop.
    ///
    /// # Examples
    ///
    /// ```
    /// use snc_graph::generators::structured::complete_bipartite;
    /// use snc_maxcut::{log2_checkpoints, solve_gw, BatchedLifGwCircuit, GwConfig, LifGwConfig};
    ///
    /// let g = complete_bipartite(3, 3);
    /// let factors = solve_gw(&g, &GwConfig::default()).unwrap().factors;
    /// let mut batch = BatchedLifGwCircuit::new(&factors, &[7, 8, 9], &LifGwConfig::default());
    /// let traces = batch.best_traces(&g, &log2_checkpoints(8));
    /// // One best-so-far trace per replica on the shared sample grid.
    /// assert_eq!(traces.len(), 3);
    /// assert!(traces.iter().all(|t| t.checkpoints == log2_checkpoints(8)));
    /// // On K_{3,3} nearly every sample is the exact cut (9 edges).
    /// assert!(traces.iter().any(|t| t.final_best() == 9));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `graph.n()` differs from the circuit size or
    /// `checkpoints` is not strictly ascending.
    pub fn best_traces(&mut self, graph: &Graph, checkpoints: &[u64]) -> Vec<BestTrace> {
        assert_eq!(graph.n(), self.n(), "graph/circuit size mismatch");
        let replicas = self.replicas();
        let mut spikes = vec![false; graph.n()];
        crate::sampling::batched_best_traces(checkpoints, replicas, |trackers, values| {
            self.batch.step_many(self.decorrelate);
            for (r, (tracker, value)) in trackers.iter_mut().zip(values.iter_mut()).enumerate() {
                self.batch.spiked_into(r, &mut spikes);
                *value = crate::sampling::tracked_value_from_spikes(tracker, graph, &spikes);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force;
    use crate::gw::{solve_gw, GwConfig, GwSampler};
    use crate::sampling::{log2_checkpoints, sample_best_trace};
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::complete_bipartite;

    #[test]
    fn circuit_dimensions_follow_sdp_rank() {
        let g = complete_bipartite(3, 3);
        let sol = solve_gw(&g, &GwConfig::default()).unwrap();
        let circuit = LifGwCircuit::new(&sol.factors, 1, &LifGwConfig::default());
        assert_eq!(circuit.n(), 6);
        assert_eq!(circuit.devices(), 4); // fixed rank 4 per the paper
        assert_eq!(circuit.decorrelate_steps(), 50); // 5τ at τ/Δt = 10
    }

    #[test]
    fn bipartite_cut_found_quickly() {
        // On bipartite graphs the membrane correlations are ±1 between
        // parts, so nearly every sample is the exact cut.
        let g = complete_bipartite(4, 4);
        let sol = solve_gw(&g, &GwConfig::default()).unwrap();
        let mut circuit = LifGwCircuit::new(&sol.factors, 3, &LifGwConfig::default());
        let trace = sample_best_trace(&mut circuit, &g, &log2_checkpoints(8));
        assert_eq!(trace.final_best(), 16);
    }

    #[test]
    fn matches_software_gw_on_small_graphs() {
        // The headline claim of Fig. 3: "the LIF-GW circuit matches the
        // performance of the generic solver."
        for seed in 0..3u64 {
            let g = gnp(14, 0.5, seed).unwrap();
            let opt = brute_force(&g).1;
            if opt == 0 {
                continue;
            }
            let sol = solve_gw(&g, &GwConfig::default()).unwrap();
            let cp = log2_checkpoints(128);
            let mut circuit = LifGwCircuit::new(&sol.factors, seed, &LifGwConfig::default());
            let circuit_trace = sample_best_trace(&mut circuit, &g, &cp);
            let mut software = GwSampler::new(sol.factors.clone(), seed ^ 0xFF);
            let software_trace = sample_best_trace(&mut software, &g, &cp);
            let c = circuit_trace.final_best() as f64 / opt as f64;
            let s = software_trace.final_best() as f64 / opt as f64;
            assert!(
                (c - s).abs() <= 0.12,
                "seed={seed}: circuit {c:.3} vs software {s:.3}"
            );
            assert!(c >= 0.878, "seed={seed}: circuit ratio {c}");
        }
    }

    #[test]
    fn batched_replicas_match_sequential_circuits() {
        // The tentpole equivalence: every batched replica's sample stream
        // is bit-for-bit the sequential circuit's with the same seed.
        let g = gnp(16, 0.4, 9).unwrap();
        let sol = solve_gw(&g, &GwConfig::default()).unwrap();
        let cfg = LifGwConfig::default();
        let seeds: Vec<u64> = (0..6u64).map(|i| 0x6A11 + i * 97).collect();
        let mut batch = BatchedLifGwCircuit::new(&sol.factors, &seeds, &cfg);
        assert_eq!(batch.replicas(), 6);
        assert_eq!(batch.devices(), 4);
        let mut sequential: Vec<LifGwCircuit> = seeds
            .iter()
            .map(|&s| LifGwCircuit::new(&sol.factors, s, &cfg))
            .collect();
        for sample in 0..12 {
            let cuts = batch.next_cuts();
            for (r, circuit) in sequential.iter_mut().enumerate() {
                assert_eq!(cuts[r], circuit.next_cut(), "sample {sample} replica {r}");
            }
        }
    }

    #[test]
    fn batched_best_traces_match_parallel_best_traces() {
        use crate::sampling::parallel_best_traces;
        let g = gnp(14, 0.5, 4).unwrap();
        let sol = solve_gw(&g, &GwConfig::default()).unwrap();
        let cfg = LifGwConfig::default();
        let seeds: Vec<u64> = (0..8u64).map(|i| 1000 + i).collect();
        let cp = log2_checkpoints(32);
        let mut batch = BatchedLifGwCircuit::new(&sol.factors, &seeds, &cfg);
        let batched = batch.best_traces(&g, &cp);
        let reference = parallel_best_traces(
            |i| LifGwCircuit::new(&sol.factors, seeds[i], &cfg),
            &g,
            &cp,
            seeds.len(),
            2,
        );
        assert_eq!(batched, reference);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gnp(10, 0.4, 5).unwrap();
        let sol = solve_gw(&g, &GwConfig::default()).unwrap();
        let mut a = LifGwCircuit::new(&sol.factors, 7, &LifGwConfig::default());
        let mut b = LifGwCircuit::new(&sol.factors, 7, &LifGwConfig::default());
        for _ in 0..5 {
            assert_eq!(a.next_cut(), b.next_cut());
        }
    }

    #[test]
    fn spike_rate_balanced_at_mean_threshold() {
        let g = gnp(12, 0.5, 2).unwrap();
        let sol = solve_gw(&g, &GwConfig::default()).unwrap();
        let mut circuit = LifGwCircuit::new(&sol.factors, 11, &LifGwConfig::default());
        let samples = 400;
        let mut per_neuron = [0u32; 12];
        for _ in 0..samples {
            let cut = circuit.next_cut();
            for i in 0..12 {
                if cut.side(i) == 1 {
                    per_neuron[i] += 1;
                }
            }
        }
        for (i, &c) in per_neuron.iter().enumerate() {
            let rate = c as f64 / samples as f64;
            assert!((rate - 0.5).abs() < 0.2, "neuron {i}: rate {rate}");
        }
    }
}
