//! The annealed-noise LIF-GW circuit: temperature-scheduled stochastic
//! relaxation on the LIF-GW substrate.
//!
//! The circuit keeps LIF-GW's entire stochastic machinery — SDP factors
//! programmed into the synapses, a stochastic device pool, the same
//! decorrelation free-run between samples, the same RNG streams — and
//! anneals the *readout*: sample `t` thresholds the mixed field
//!
//! ```text
//! f_i(t) = σ(t)·z_i  +  (σ(0) − σ(t))·gain·h_i
//! ```
//!
//! where `z_i` is the mean-centered membrane (the Gaussian LIF-GW
//! rounds) and `h_i = −(Σ_j w_ij s_j)/deg_i` is the deterministic local
//! field of the *previous* sample's partition `s` — the direction that
//! flips `i` to disagree with its neighbors. Early in the schedule
//! (`σ(t) ≈ σ(0)`) the readout is pure Gaussian exploration; as σ cools
//! the local field dominates and samples lock into greedy refinements
//! of their predecessors — the memristor-Hopfield annealing recipe of
//! Cai et al. (2020) transplanted onto the paper's circuit.
//!
//! Two exactness properties anchor the family:
//!
//! * **Constant schedule ⇒ LIF-GW bit for bit.** With `σ(t) = σ(0)` the
//!   feedback coefficient is exactly `0.0` and the readout reduces to
//!   `z_i > 0`, which equals the spike readout `V_i > θ_i` bit for bit
//!   (`θ_i` is the analytic mean that centering subtracts; IEEE
//!   subtraction preserves exact sign). The regression test pins this.
//! * **The σ-schedule consumes no RNG draws** — it only re-weighs the
//!   readout — so the device/membrane trajectories are bit-identical to
//!   LIF-GW's under any schedule.

use crate::anneal::CoolingSchedule;
use crate::circuits::lif_gw::LifGwConfig;
use crate::sampling::CutSampler;
use snc_devices::{DevicePool, PoolSpec};
use snc_graph::{CutAssignment, Graph, WeightedGraph};
use snc_linalg::DMatrix;
use snc_neuro::{DenseWeights, DeviceDrivenNetwork, ReplicaBatch};

/// Configuration of the annealed LIF-GW circuit.
#[derive(Clone, Debug)]
pub struct LifAnnealedConfig {
    /// The LIF-GW substrate configuration (devices, membranes, warmup,
    /// decorrelation).
    pub base: LifGwConfig,
    /// The σ cooling schedule over the per-replica sample horizon.
    pub schedule: CoolingSchedule,
    /// Gain on the local feedback field once σ departs from σ(0).
    pub feedback_gain: f64,
}

impl Default for LifAnnealedConfig {
    fn default() -> Self {
        Self {
            base: LifGwConfig::default(),
            schedule: CoolingSchedule::default(),
            feedback_gain: 1.0,
        }
    }
}

/// The graph-local feedback field `h_i = −(Σ_j w_ij s_j)/norm_i`, with
/// `norm_i = Σ_j |w_ij|` (degree on unweighted graphs; 1 for isolated
/// vertices so the division is always defined).
#[derive(Clone, Debug)]
struct FeedbackField {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    inv_norm: Vec<f64>,
}

impl FeedbackField {
    fn from_pairs(n: usize, pairs: impl Iterator<Item = (u32, u32, f64)>) -> Self {
        let pairs: Vec<(u32, u32, f64)> = pairs.collect();
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &pairs {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut targets = vec![0u32; acc];
        let mut weights = vec![0.0; acc];
        for &(u, v, w) in &pairs {
            for (a, b) in [(u as usize, v), (v as usize, u)] {
                targets[cursor[a]] = b;
                weights[cursor[a]] = w;
                cursor[a] += 1;
            }
        }
        let inv_norm = (0..n)
            .map(|i| {
                let norm: f64 = weights[offsets[i]..offsets[i + 1]]
                    .iter()
                    .map(|w| w.abs())
                    .sum();
                if norm > 0.0 {
                    1.0 / norm
                } else {
                    1.0
                }
            })
            .collect();
        Self {
            offsets,
            targets,
            weights,
            inv_norm,
        }
    }

    fn from_graph(graph: &Graph) -> Self {
        Self::from_pairs(graph.n(), graph.edges().map(|(u, v)| (u, v, 1.0)))
    }

    fn from_weighted(graph: &WeightedGraph) -> Self {
        Self::from_pairs(graph.n(), graph.edges())
    }

    fn n(&self) -> usize {
        self.inv_norm.len()
    }

    /// Writes `h` for the previous partition into `out`.
    fn compute(&self, prev: &CutAssignment, out: &mut [f64]) {
        for i in 0..self.n() {
            let mut drive = 0.0;
            for k in self.offsets[i]..self.offsets[i + 1] {
                drive += self.weights[k] * f64::from(prev.side(self.targets[k] as usize));
            }
            out[i] = -drive * self.inv_norm[i];
        }
    }
}

/// The annealed readout shared by the sequential and batched circuits:
/// threshold `σ·z + coeff·gain·h`, with the `coeff == 0` case reduced to
/// the exact LIF-GW spike readout `z > 0`.
fn annealed_cut(
    z: &[f64],
    sigma: f64,
    coeff: f64,
    gain: f64,
    field: &FeedbackField,
    prev: Option<&CutAssignment>,
    h: &mut [f64],
) -> CutAssignment {
    if coeff == 0.0 {
        return CutAssignment::from_signs(z);
    }
    match prev {
        None => CutAssignment::from_signs(z),
        Some(prev) => {
            field.compute(prev, h);
            let sides: Vec<i8> = z
                .iter()
                .zip(h.iter())
                .map(|(&zi, &hi)| {
                    if sigma * zi + coeff * gain * hi > 0.0 {
                        1
                    } else {
                        -1
                    }
                })
                .collect();
            CutAssignment::from_sides(sides)
        }
    }
}

/// σ values over a sample horizon, clamped at the final level for
/// samples drawn past it.
#[derive(Clone, Debug)]
struct SigmaTape {
    values: Vec<f64>,
}

impl SigmaTape {
    fn new(schedule: &CoolingSchedule, horizon: u64) -> Self {
        Self {
            values: schedule.values(horizon.max(1)),
        }
    }

    fn start(&self) -> f64 {
        self.values[0]
    }

    fn at(&self, t: u64) -> f64 {
        let idx = (t as usize).min(self.values.len() - 1);
        self.values[idx]
    }
}

/// The sequential annealed LIF-GW circuit (one replica).
#[derive(Clone, Debug)]
pub struct LifAnnealedCircuit {
    net: DeviceDrivenNetwork<DenseWeights>,
    decorrelate: u64,
    field: FeedbackField,
    sigma: SigmaTape,
    feedback_gain: f64,
    prev: Option<CutAssignment>,
    t: u64,
    z: Vec<f64>,
    h: Vec<f64>,
}

impl LifAnnealedCircuit {
    /// Builds the circuit from SDP factors and the graph the feedback
    /// field reads, with `horizon` samples of schedule (the per-replica
    /// budget).
    pub fn new(
        factors: &DMatrix,
        graph: &Graph,
        seed: u64,
        cfg: &LifAnnealedConfig,
        horizon: u64,
    ) -> Self {
        Self::with_field(factors, FeedbackField::from_graph(graph), seed, cfg, horizon)
    }

    /// Builds the circuit on a weighted graph (weighted feedback field;
    /// the factors come from the weighted SDP).
    pub fn new_weighted(
        factors: &DMatrix,
        graph: &WeightedGraph,
        seed: u64,
        cfg: &LifAnnealedConfig,
        horizon: u64,
    ) -> Self {
        Self::with_field(
            factors,
            FeedbackField::from_weighted(graph),
            seed,
            cfg,
            horizon,
        )
    }

    fn with_field(
        factors: &DMatrix,
        field: FeedbackField,
        seed: u64,
        cfg: &LifAnnealedConfig,
        horizon: u64,
    ) -> Self {
        let base = &cfg.base;
        let r = factors.cols();
        let weights = DenseWeights::from_matrix_scaled(factors, base.weight_scale);
        let mut spec = PoolSpec::uniform(base.device.clone(), r);
        if let Some(cc) = base.common_cause {
            spec = spec.with_common_cause(cc);
        }
        let pool = DevicePool::new(spec, seed);
        let mut net = DeviceDrivenNetwork::new(pool, weights, base.lif, base.reset);
        net.step_many(base.warmup_steps);
        let decorrelate = base
            .decorrelate_steps
            .unwrap_or_else(|| base.lif.decorrelation_steps())
            .max(1);
        let n = field.n();
        Self {
            net,
            decorrelate,
            field,
            sigma: SigmaTape::new(&cfg.schedule, horizon),
            feedback_gain: cfg.feedback_gain,
            prev: None,
            t: 0,
            z: vec![0.0; n],
            h: vec![0.0; n],
        }
    }

    /// Number of vertices / neurons.
    pub fn n(&self) -> usize {
        self.field.n()
    }

    /// Steps simulated between samples.
    pub fn decorrelate_steps(&self) -> u64 {
        self.decorrelate
    }
}

impl CutSampler for LifAnnealedCircuit {
    fn next_cut(&mut self) -> CutAssignment {
        self.net.step_many(self.decorrelate);
        self.net.centered_into(&mut self.z);
        let sigma = self.sigma.at(self.t);
        let coeff = self.sigma.start() - sigma;
        let cut = annealed_cut(
            &self.z,
            sigma,
            coeff,
            self.feedback_gain,
            &self.field,
            self.prev.as_ref(),
            &mut self.h,
        );
        self.prev = Some(cut.clone());
        self.t += 1;
        cut
    }
}

/// `R` annealed replicas advanced in lock-step on one [`ReplicaBatch`].
///
/// The membrane machinery is exactly [`super::lif_gw::BatchedLifGwCircuit`]'s
/// (same constructor pipeline, same warmup, same per-step RNG streams);
/// only the readout differs, so replica `r`'s sample stream is
/// bit-for-bit [`LifAnnealedCircuit`]'s with seed `seeds[r]` — and, under
/// a constant schedule, bit-for-bit LIF-GW's.
#[derive(Clone, Debug)]
pub struct BatchedLifAnnealedCircuit {
    batch: ReplicaBatch<DenseWeights>,
    decorrelate: u64,
    field: FeedbackField,
    sigma: SigmaTape,
    feedback_gain: f64,
    prev: Vec<Option<CutAssignment>>,
    t: u64,
    centered: Vec<f64>,
    h: Vec<f64>,
}

impl BatchedLifAnnealedCircuit {
    /// Builds one replica per seed (unweighted feedback field).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn new(
        factors: &DMatrix,
        graph: &Graph,
        seeds: &[u64],
        cfg: &LifAnnealedConfig,
        horizon: u64,
    ) -> Self {
        Self::with_field(factors, FeedbackField::from_graph(graph), seeds, cfg, horizon)
    }

    /// Builds one replica per seed on a weighted graph.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn new_weighted(
        factors: &DMatrix,
        graph: &WeightedGraph,
        seeds: &[u64],
        cfg: &LifAnnealedConfig,
        horizon: u64,
    ) -> Self {
        Self::with_field(
            factors,
            FeedbackField::from_weighted(graph),
            seeds,
            cfg,
            horizon,
        )
    }

    fn with_field(
        factors: &DMatrix,
        field: FeedbackField,
        seeds: &[u64],
        cfg: &LifAnnealedConfig,
        horizon: u64,
    ) -> Self {
        let base = &cfg.base;
        let r = factors.cols();
        let weights = DenseWeights::from_matrix_scaled(factors, base.weight_scale);
        let mut spec = PoolSpec::uniform(base.device.clone(), r);
        if let Some(cc) = base.common_cause {
            spec = spec.with_common_cause(cc);
        }
        let mut batch = ReplicaBatch::new(spec, seeds, weights, base.lif, base.reset);
        batch.step_many(base.warmup_steps);
        let decorrelate = base
            .decorrelate_steps
            .unwrap_or_else(|| base.lif.decorrelation_steps())
            .max(1);
        let n = field.n();
        let replicas = seeds.len();
        Self {
            batch,
            decorrelate,
            field,
            sigma: SigmaTape::new(&cfg.schedule, horizon),
            feedback_gain: cfg.feedback_gain,
            prev: vec![None; replicas],
            t: 0,
            centered: vec![0.0; n * replicas],
            h: vec![0.0; n],
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.batch.replicas()
    }

    /// Number of vertices / neurons per replica.
    pub fn n(&self) -> usize {
        self.batch.neurons()
    }

    /// Number of devices per replica (the SDP rank).
    pub fn devices(&self) -> usize {
        self.batch.devices()
    }

    /// Advances all replicas to the next sample and returns one cut per
    /// replica (index `r` corresponds to `seeds[r]`).
    pub fn next_cuts(&mut self) -> Vec<CutAssignment> {
        self.batch.step_many(self.decorrelate);
        self.batch.centered_into(&mut self.centered);
        let n = self.n();
        let sigma = self.sigma.at(self.t);
        let coeff = self.sigma.start() - sigma;
        let cuts: Vec<CutAssignment> = (0..self.replicas())
            .map(|r| {
                let z = &self.centered[r * n..(r + 1) * n];
                let cut = annealed_cut(
                    z,
                    sigma,
                    coeff,
                    self.feedback_gain,
                    &self.field,
                    self.prev[r].as_ref(),
                    &mut self.h,
                );
                self.prev[r] = Some(cut.clone());
                cut
            })
            .collect();
        self.t += 1;
        cuts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::lif_gw::BatchedLifGwCircuit;
    use crate::gw::{solve_gw, GwConfig};
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::complete_bipartite;

    fn factors_for(g: &Graph) -> DMatrix {
        solve_gw(g, &GwConfig::default()).unwrap().factors
    }

    #[test]
    fn constant_schedule_reproduces_lif_gw_bit_for_bit() {
        // The satellite regression: with σ(t) ≡ σ(0) the annealed
        // readout is exactly the LIF-GW spike readout, sample by sample.
        let g = gnp(16, 0.4, 3).unwrap();
        let factors = factors_for(&g);
        let seeds = [5u64, 6, 7];
        let base = LifGwConfig::default();
        let cfg = LifAnnealedConfig {
            base: base.clone(),
            schedule: CoolingSchedule::constant(1.0).unwrap(),
            feedback_gain: 1.0,
        };
        let mut gw = BatchedLifGwCircuit::new(&factors, &seeds, &base);
        let mut annealed = BatchedLifAnnealedCircuit::new(&factors, &g, &seeds, &cfg, 16);
        for sample in 0..16 {
            assert_eq!(annealed.next_cuts(), gw.next_cuts(), "sample {sample}");
        }
    }

    #[test]
    fn batched_replicas_match_sequential_circuits() {
        let g = gnp(14, 0.4, 9).unwrap();
        let factors = factors_for(&g);
        let cfg = LifAnnealedConfig::default();
        let seeds = [100u64, 200, 300];
        let horizon = 12;
        let mut batch = BatchedLifAnnealedCircuit::new(&factors, &g, &seeds, &cfg, horizon);
        assert_eq!((batch.replicas(), batch.n(), batch.devices()), (3, 14, 4));
        let mut sequential: Vec<LifAnnealedCircuit> = seeds
            .iter()
            .map(|&s| LifAnnealedCircuit::new(&factors, &g, s, &cfg, horizon))
            .collect();
        for sample in 0..12 {
            let cuts = batch.next_cuts();
            for (r, circuit) in sequential.iter_mut().enumerate() {
                assert_eq!(cuts[r], circuit.next_cut(), "sample {sample} replica {r}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gnp(12, 0.5, 1).unwrap();
        let factors = factors_for(&g);
        let cfg = LifAnnealedConfig::default();
        let mut a = LifAnnealedCircuit::new(&factors, &g, 42, &cfg, 10);
        let mut b = LifAnnealedCircuit::new(&factors, &g, 42, &cfg, 10);
        for _ in 0..10 {
            assert_eq!(a.next_cut(), b.next_cut());
        }
    }

    #[test]
    fn cooling_locks_in_the_bipartite_cut() {
        // On K(4,4) the cooled feedback phase must preserve (or reach)
        // the exact cut: once a sample hits the bipartition, the local
        // field of every vertex points away from its neighbors and the
        // cold readout keeps it there.
        let g = complete_bipartite(4, 4);
        let factors = factors_for(&g);
        let cfg = LifAnnealedConfig::default();
        let mut circuit = LifAnnealedCircuit::new(&factors, &g, 2, &cfg, 64);
        let mut best = 0;
        let mut last = 0;
        for _ in 0..64 {
            last = circuit.next_cut().cut_value(&g);
            best = best.max(last);
        }
        assert_eq!(best, 16);
        assert_eq!(last, 16, "the cooled tail must hold the optimum");
    }

    #[test]
    fn schedule_consumes_no_rng_draws() {
        // Different schedules, same seed: the membrane trajectories stay
        // bit-identical, so the first sample (σ == σ(0) in both) agrees.
        let g = gnp(12, 0.5, 8).unwrap();
        let factors = factors_for(&g);
        let mut geo = LifAnnealedCircuit::new(
            &factors,
            &g,
            11,
            &LifAnnealedConfig::default(),
            32,
        );
        let linear_cfg = LifAnnealedConfig {
            schedule: CoolingSchedule::linear(1.0, 0.0).unwrap(),
            ..LifAnnealedConfig::default()
        };
        let mut lin = LifAnnealedCircuit::new(&factors, &g, 11, &linear_cfg, 32);
        assert_eq!(geo.next_cut(), lin.next_cut(), "t=0 readouts agree");
    }

    #[test]
    fn weighted_field_uses_weight_magnitudes() {
        let wg = WeightedGraph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, -1.0)]).unwrap();
        let field = FeedbackField::from_weighted(&wg);
        let prev = CutAssignment::from_sides(vec![1, 1, -1]);
        let mut h = vec![0.0; 3];
        field.compute(&prev, &mut h);
        // h_0 = −(2·(+1))/2 = −1; h_1 = −(2·1 + (−1)·(−1))/3 = −1;
        // h_2 = −((−1)·1)/1 = 1.
        assert!((h[0] + 1.0).abs() < 1e-15, "{h:?}");
        assert!((h[1] + 1.0).abs() < 1e-15, "{h:?}");
        assert!((h[2] - 1.0).abs() < 1e-15, "{h:?}");
    }
}
