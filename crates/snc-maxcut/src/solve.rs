//! Request→circuit dispatch: one entry point that turns a *solve
//! request* — graph, circuit family, sample budget, replica width,
//! seed — into a finished MAXCUT answer with the best partition and its
//! best-so-far trace.
//!
//! This is the API a serving layer consumes (the `snc-server` crate
//! schedules [`solve`] calls onto a worker pool), and the experiment
//! harness shares its budget/seed arithmetic: [`replica_seeds`],
//! [`effective_replicas`], and [`replica_checkpoints`] are the exact
//! functions `snc_experiments::suite` splits figure budgets with, so a
//! service request reproduces the harness's traces bit for bit.
//!
//! ## Determinism contract
//!
//! [`solve`] is a pure function of `(graph, spec)`. The per-replica seed
//! ladder is rooted at `spec.seed` via `SplitMix64::derive` — the same
//! deterministic sub-stream derivation pinned throughout the workspace —
//! and the batched steppers guarantee replica `r`'s sample stream is
//! bit-for-bit the sequential circuit's with seed `seeds[r]`. Two calls
//! with identical inputs return identical outcomes, on any thread, at
//! any concurrency.

use crate::cache::SdpCache;
use crate::circuits::lif_gw::{BatchedLifGwCircuit, LifGwConfig};
use crate::circuits::lif_trevisan::{BatchedLifTrevisanCircuit, LifTrevisanConfig};
use crate::gw::{solve_gw, GwConfig, GwSolution};
use crate::sampling::{log2_checkpoints, BestTrace};
use snc_devices::SplitMix64;
use snc_graph::{CutAssignment, CutTracker, Graph};
use snc_linalg::{LinalgError, SdpConfig};
use snc_neuro::{LifParams, TwoStageConfig};
use std::sync::Arc;

/// The two neuromorphic circuit families a request can name (§IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitFamily {
    /// LIF-GW: SDP factors programmed into synapses, Gaussian sampling
    /// in the membrane covariance (Fig. 1).
    LifGw,
    /// LIF-Trevisan: fully online spectral circuit with a plastic
    /// readout (Fig. 2).
    LifTrevisan,
}

impl CircuitFamily {
    /// Both families, LIF-GW first.
    pub fn all() -> [CircuitFamily; 2] {
        [CircuitFamily::LifGw, CircuitFamily::LifTrevisan]
    }

    /// The wire/CLI name of the family.
    pub fn name(&self) -> &'static str {
        match self {
            CircuitFamily::LifGw => "lif-gw",
            CircuitFamily::LifTrevisan => "lif-trevisan",
        }
    }

    /// Parses a wire/CLI name (`"lif-gw"` / `"lif-trevisan"`).
    pub fn from_name(name: &str) -> Option<CircuitFamily> {
        CircuitFamily::all().into_iter().find(|f| f.name() == name)
    }
}

/// A fully specified solve request (everything [`solve`] depends on).
#[derive(Clone, Debug)]
pub struct SolveSpec {
    /// Which circuit family to sample.
    pub family: CircuitFamily,
    /// Total sample budget across replicas (≥ 1).
    pub budget: u64,
    /// Replica width: how many lock-stepped circuit copies share the
    /// budget (the `ReplicaBatch` width). Capped at the budget; see
    /// [`effective_replicas`].
    pub replicas: usize,
    /// Master seed; every RNG stream in the solve derives from it.
    pub seed: u64,
    /// SDP rank for LIF-GW's offline factor computation (4 in §IV.A).
    pub sdp_rank: usize,
    /// Membrane parameters for the circuit's LIF population.
    pub lif: LifParams,
}

impl SolveSpec {
    /// A spec with the workspace defaults: one replica, SDP rank 4, and
    /// default LIF parameters.
    pub fn new(family: CircuitFamily, budget: u64, seed: u64) -> Self {
        Self {
            family,
            budget,
            replicas: 1,
            seed,
            sdp_rank: 4,
            lif: LifParams::default(),
        }
    }
}

/// The answer to a solve request.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// Merged best-so-far trace on the total-samples checkpoint grid
    /// (per-replica log2 checkpoints × effective width).
    pub trace: BestTrace,
    /// The best cut value over every sample of every replica (equal to
    /// `trace.final_best()`).
    pub best_value: u64,
    /// A partition achieving `best_value` — the earliest such sample,
    /// ties broken by lowest replica index, so the argmax is as
    /// deterministic as the value.
    pub best_cut: CutAssignment,
    /// The SDP upper bound (LIF-GW only; LIF-Trevisan does no offline
    /// work).
    pub sdp_bound: Option<f64>,
    /// Effective replica width after capping at the budget.
    pub replicas: usize,
    /// Total samples actually drawn: `⌊budget/R⌋·R ≤ budget`.
    pub samples: u64,
}

/// Errors a solve request can fail with.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The sample budget was zero — there is nothing to sample and no
    /// partition to return.
    EmptyBudget,
    /// The graph has no vertices; the circuits have no population to
    /// build.
    EmptyGraph,
    /// The offline SDP stage failed (LIF-GW only).
    Sdp(LinalgError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::EmptyBudget => f.write_str("sample budget must be ≥ 1"),
            SolveError::EmptyGraph => f.write_str("graph must have at least one vertex"),
            SolveError::Sdp(e) => write!(f, "SDP stage failed: {e}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<LinalgError> for SolveError {
    fn from(e: LinalgError) -> Self {
        SolveError::Sdp(e)
    }
}

/// Deterministic replica seed ladder rooted at `base`.
///
/// A single replica uses `base` itself, so `replicas == 1` consumes
/// exactly the seed stream a sequential single-circuit run does and
/// reproduces its traces bit-for-bit.
pub fn replica_seeds(base: u64, replicas: usize) -> Vec<u64> {
    if replicas <= 1 {
        vec![base]
    } else {
        (0..replicas as u64)
            .map(|r| SplitMix64::derive(base, r))
            .collect()
    }
}

/// The effective batch width for a total budget: never more replicas
/// than samples, so the merged trace cannot exceed the budget.
pub fn effective_replicas(budget: u64, replicas: usize) -> usize {
    replicas.max(1).min(budget.max(1) as usize)
}

/// The per-replica checkpoint grid for a total budget split `replicas`
/// ways. When the budget is not divisible by the batch width the merged
/// circuit trace ends at `⌊budget/R⌋·R ≤ budget`; [`effective_replicas`]
/// guarantees at least one sample per replica without overshooting. A
/// zero budget draws zero circuit samples (empty grid).
pub fn replica_checkpoints(budget: u64, replicas: usize) -> Vec<u64> {
    log2_checkpoints(budget / effective_replicas(budget, replicas) as u64)
}

/// Runs the requested circuit on `graph` and returns the best cut found
/// within the budget, its partition, and the merged best-so-far trace.
///
/// Seed ladder (shared with `snc_experiments::suite::run_suite`, so a
/// request with the harness's per-graph seed reproduces the harness's
/// circuit trace): slot 1 seeds the SDP, slot 3 roots the LIF-GW replica
/// ladder, slot 4 roots the LIF-Trevisan replica ladder.
///
/// # Errors
///
/// Returns [`SolveError::EmptyBudget`] for a zero budget,
/// [`SolveError::EmptyGraph`] for a vertexless graph, and propagates SDP
/// failures for LIF-GW.
pub fn solve(graph: &Graph, spec: &SolveSpec) -> Result<SolveOutcome, SolveError> {
    solve_with_cache(graph, spec, None)
}

/// [`solve`] with an optional [`SdpCache`] consulted for the LIF-GW
/// offline stage.
///
/// LIF-GW requests look up `(graph fingerprint, derived sdp seed, rank)`
/// in the cache and reuse the stored factor/bound on a hit, skipping the
/// SDP entirely; LIF-Trevisan does no offline work and bypasses the
/// cache untouched. Because the cached factor is bit-identical to a
/// fresh solve's (the SDP is deterministic in its seed) and the sampling
/// RNG streams derive from separate seed slots, a warm call returns
/// bit-for-bit the outcome of a cold [`solve`] — the cache can change
/// latency, never answers.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_cache(
    graph: &Graph,
    spec: &SolveSpec,
    cache: Option<&SdpCache>,
) -> Result<SolveOutcome, SolveError> {
    if spec.budget == 0 {
        return Err(SolveError::EmptyBudget);
    }
    if graph.n() == 0 {
        return Err(SolveError::EmptyGraph);
    }
    let replicas = effective_replicas(spec.budget, spec.replicas);
    let checkpoints = replica_checkpoints(spec.budget, spec.replicas);
    match spec.family {
        CircuitFamily::LifGw => {
            let sdp_seed = SplitMix64::derive(spec.seed, 1);
            let gw: Arc<GwSolution> = match cache {
                Some(cache) => cache.get_or_solve(graph, sdp_seed, spec.sdp_rank)?,
                None => {
                    let sdp_cfg = SdpConfig {
                        rank: spec.sdp_rank,
                        seed: sdp_seed,
                        ..SdpConfig::default()
                    };
                    Arc::new(solve_gw(graph, &GwConfig { sdp: sdp_cfg })?)
                }
            };
            let cfg = LifGwConfig {
                lif: spec.lif,
                ..LifGwConfig::default()
            };
            let seeds = replica_seeds(SplitMix64::derive(spec.seed, 3), replicas);
            let mut batch = BatchedLifGwCircuit::new(&gw.factors, &seeds, &cfg);
            let driven = drive(graph, &checkpoints, replicas, || batch.next_cuts());
            Ok(driven.into_outcome(replicas, Some(gw.sdp_bound)))
        }
        CircuitFamily::LifTrevisan => {
            let cfg = LifTrevisanConfig {
                network: TwoStageConfig {
                    lif: spec.lif,
                    ..TwoStageConfig::default()
                },
                ..LifTrevisanConfig::default()
            };
            let seeds = replica_seeds(SplitMix64::derive(spec.seed, 4), replicas);
            let mut batch = BatchedLifTrevisanCircuit::new(graph, &seeds, &cfg);
            let driven = drive(graph, &checkpoints, replicas, || batch.next_cuts());
            Ok(driven.into_outcome(replicas, None))
        }
    }
}

/// Intermediate result of [`drive`].
struct Driven {
    trace: BestTrace,
    best_value: u64,
    best_cut: CutAssignment,
}

impl Driven {
    fn into_outcome(self, replicas: usize, sdp_bound: Option<f64>) -> SolveOutcome {
        let samples = self.trace.checkpoints.last().copied().unwrap_or(0);
        SolveOutcome {
            best_value: self.best_value,
            best_cut: self.best_cut,
            trace: self.trace,
            sdp_bound,
            replicas,
            samples,
        }
    }
}

/// The argmax-tracking variant of the batched checkpoint loop: advances
/// the batch one sample at a time, maintains per-replica best values
/// with incremental [`CutTracker`]s (values identical to the circuits'
/// `best_traces`), merges at each checkpoint (max over replicas, sample
/// counts summed — the `merge_traces` semantics), and keeps the earliest
/// partition achieving the global best.
fn drive(
    graph: &Graph,
    checkpoints: &[u64],
    replicas: usize,
    mut next_cuts: impl FnMut() -> Vec<CutAssignment>,
) -> Driven {
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly ascending"
    );
    assert!(!checkpoints.is_empty(), "budget ≥ 1 yields ≥ 1 checkpoint");
    let mut trackers: Vec<Option<CutTracker<'_>>> = (0..replicas).map(|_| None).collect();
    let mut per_replica_best = vec![0u64; replicas];
    let mut merged_best = Vec::with_capacity(checkpoints.len());
    // Champion: strictly-greater updates ⇒ earliest sample wins, ties
    // within a sample broken by replica index.
    let mut champion: Option<(u64, CutAssignment)> = None;
    let mut drawn = 0u64;
    for &cp in checkpoints {
        while drawn < cp {
            let cuts = next_cuts();
            debug_assert_eq!(cuts.len(), replicas);
            for (r, cut) in cuts.into_iter().enumerate() {
                let value = match trackers[r].as_mut() {
                    Some(t) => t.set_to(&cut),
                    None => {
                        let t = CutTracker::new(graph, cut.clone());
                        let v = t.value();
                        trackers[r] = Some(t);
                        v
                    }
                };
                per_replica_best[r] = per_replica_best[r].max(value);
                if champion.as_ref().is_none_or(|(best, _)| value > *best) {
                    champion = Some((value, cut));
                }
            }
            drawn += 1;
        }
        merged_best.push(per_replica_best.iter().copied().max().unwrap_or(0));
    }
    let (best_value, best_cut) = champion.expect("≥ 1 sample was drawn");
    Driven {
        trace: BestTrace {
            checkpoints: checkpoints.iter().map(|&c| c * replicas as u64).collect(),
            best: merged_best,
        },
        best_value,
        best_cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::merge_traces;
    use snc_graph::generators::erdos_renyi::gnp;

    fn spec(family: CircuitFamily) -> SolveSpec {
        SolveSpec {
            budget: 64,
            replicas: 4,
            ..SolveSpec::new(family, 64, 0xBEEF)
        }
    }

    #[test]
    fn family_names_roundtrip() {
        for f in CircuitFamily::all() {
            assert_eq!(CircuitFamily::from_name(f.name()), Some(f));
        }
        assert_eq!(CircuitFamily::from_name("gw"), None);
    }

    #[test]
    fn rejects_degenerate_requests() {
        let g = gnp(10, 0.5, 1).unwrap();
        let mut s = spec(CircuitFamily::LifGw);
        s.budget = 0;
        assert_eq!(solve(&g, &s).unwrap_err(), SolveError::EmptyBudget);
        let empty = Graph::empty(0);
        assert_eq!(
            solve(&empty, &spec(CircuitFamily::LifTrevisan)).unwrap_err(),
            SolveError::EmptyGraph
        );
    }

    #[test]
    fn outcome_is_internally_consistent() {
        let g = gnp(20, 0.4, 7).unwrap();
        for family in CircuitFamily::all() {
            let out = solve(&g, &spec(family)).unwrap();
            // The partition must achieve exactly the reported value …
            assert_eq!(out.best_cut.cut_value(&g), out.best_value, "{family:?}");
            // … which is the final trace value …
            assert_eq!(out.best_value, out.trace.final_best(), "{family:?}");
            // … and the merged grid covers the whole (divisible) budget.
            assert_eq!(out.samples, 64);
            assert_eq!(out.replicas, 4);
            assert_eq!(out.trace.checkpoints.last(), Some(&64));
            assert!(out.trace.best.windows(2).all(|w| w[0] <= w[1]));
            match family {
                CircuitFamily::LifGw => {
                    let bound = out.sdp_bound.expect("LIF-GW carries the SDP bound");
                    assert!(bound >= out.best_value as f64 - 1e-6);
                }
                CircuitFamily::LifTrevisan => assert_eq!(out.sdp_bound, None),
            }
        }
    }

    #[test]
    fn identical_requests_yield_identical_outcomes() {
        let g = gnp(18, 0.4, 3).unwrap();
        for family in CircuitFamily::all() {
            let a = solve(&g, &spec(family)).unwrap();
            let b = solve(&g, &spec(family)).unwrap();
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.best_value, b.best_value);
            assert_eq!(a.best_cut, b.best_cut);
            assert_eq!(a.sdp_bound, b.sdp_bound);
        }
    }

    #[test]
    fn cached_solves_are_bit_identical_to_cold_solves() {
        let cache = SdpCache::new(8);
        for seed in [0u64, 0xBEEF, 71] {
            let g = gnp(16, 0.4, seed).unwrap();
            for family in CircuitFamily::all() {
                let mut s = spec(family);
                s.seed = seed;
                let cold = solve(&g, &s).unwrap();
                let miss = solve_with_cache(&g, &s, Some(&cache)).unwrap();
                let hit = solve_with_cache(&g, &s, Some(&cache)).unwrap();
                for warm in [&miss, &hit] {
                    assert_eq!(cold.trace, warm.trace, "{family:?} seed {seed}");
                    assert_eq!(cold.best_value, warm.best_value);
                    assert_eq!(cold.best_cut, warm.best_cut);
                    assert_eq!(cold.sdp_bound, warm.sdp_bound, "bound must be bit-equal");
                }
            }
        }
        let stats = cache.stats();
        // Only LIF-GW touches the cache: 3 seeds × (1 miss + 1 hit).
        assert_eq!((stats.hits, stats.misses), (3, 3), "LIF-Trevisan bypasses");
    }

    #[test]
    fn distinct_request_seeds_use_distinct_sdp_entries() {
        // The cache key uses the *derived* SDP seed (slot 1), so two
        // requests differing only in the master seed must not share a
        // factor.
        let cache = SdpCache::new(8);
        let g = gnp(14, 0.5, 4).unwrap();
        let mut a = spec(CircuitFamily::LifGw);
        a.seed = 1;
        let mut b = a.clone();
        b.seed = 2;
        solve_with_cache(&g, &a, Some(&cache)).unwrap();
        solve_with_cache(&g, &b, Some(&cache)).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn trace_matches_the_batched_steppers() {
        // solve() must report exactly the trace the batched circuits
        // produce with the same seed ladder — the argmax bookkeeping may
        // not perturb the numbers.
        let g = gnp(16, 0.5, 11).unwrap();
        let s = spec(CircuitFamily::LifTrevisan);
        let out = solve(&g, &s).unwrap();
        let replicas = effective_replicas(s.budget, s.replicas);
        let cp = replica_checkpoints(s.budget, s.replicas);
        let seeds = replica_seeds(SplitMix64::derive(s.seed, 4), replicas);
        let cfg = LifTrevisanConfig {
            network: TwoStageConfig {
                lif: s.lif,
                ..TwoStageConfig::default()
            },
            ..LifTrevisanConfig::default()
        };
        let mut batch = BatchedLifTrevisanCircuit::new(&g, &seeds, &cfg);
        let reference = merge_traces(&batch.best_traces(&g, &cp));
        assert_eq!(out.trace, reference);
    }

    #[test]
    fn replica_arithmetic_caps_and_splits() {
        assert_eq!(effective_replicas(1000, 16), 16);
        assert_eq!(replica_checkpoints(1000, 16).last(), Some(&62));
        assert_eq!(effective_replicas(4, 8), 4);
        assert_eq!(effective_replicas(0, 8), 1);
        assert_eq!(effective_replicas(64, 0), 1);
        assert!(replica_checkpoints(0, 8).is_empty());
        assert_eq!(replica_seeds(9, 1), vec![9]);
        let ladder = replica_seeds(9, 3);
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0], SplitMix64::derive(9, 0));
    }

    #[test]
    fn indivisible_budget_never_overshoots() {
        let g = gnp(12, 0.5, 2).unwrap();
        let mut s = spec(CircuitFamily::LifGw);
        s.budget = 10;
        s.replicas = 4;
        let out = solve(&g, &s).unwrap();
        assert_eq!(out.samples, 8); // 4 · ⌊10/4⌋
        assert_eq!(out.trace.checkpoints.last(), Some(&8));
        assert_eq!(out.best_cut.cut_value(&g), out.best_value);
    }
}
