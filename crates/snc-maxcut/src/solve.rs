//! Request→circuit dispatch: one entry point that turns a *solve
//! request* — graph, circuit family, sample budget, replica width,
//! seed — into a finished MAXCUT answer with the best partition and its
//! best-so-far trace.
//!
//! This is the API a serving layer consumes (the `snc-server` crate
//! schedules [`solve`] calls onto a worker pool), and the experiment
//! harness shares its budget/seed arithmetic: [`replica_seeds`],
//! [`effective_replicas`], and [`replica_checkpoints`] are the exact
//! functions `snc_experiments::suite` splits figure budgets with, so a
//! service request reproduces the harness's traces bit for bit.
//!
//! ## Determinism contract
//!
//! [`solve`] is a pure function of `(graph, spec)`. The per-replica seed
//! ladder is rooted at `spec.seed` via `SplitMix64::derive` — the same
//! deterministic sub-stream derivation pinned throughout the workspace —
//! and the batched steppers guarantee replica `r`'s sample stream is
//! bit-for-bit the sequential circuit's with seed `seeds[r]`. Two calls
//! with identical inputs return identical outcomes, on any thread, at
//! any concurrency.

use crate::anneal::CoolingSchedule;
use crate::cache::SdpCache;
use crate::circuits::hopfield::{BatchedHopfieldCircuit, HopfieldConfig};
use crate::circuits::lif_annealed::{BatchedLifAnnealedCircuit, LifAnnealedConfig};
use crate::circuits::lif_gw::{BatchedLifGwCircuit, LifGwConfig};
use crate::circuits::lif_trevisan::{BatchedLifTrevisanCircuit, LifTrevisanConfig};
use crate::gw::{solve_gw, GwConfig, GwSolution};
use crate::sampling::{log2_checkpoints, BestTrace, CutSampler};
use crate::weighted::{solve_gw_weighted, WeightedBestTrace, WeightedLifTrevisanCircuit};
use snc_devices::SplitMix64;
use snc_graph::{CutAssignment, CutTracker, Graph, WeightedCutTracker, WeightedGraph};
use snc_linalg::{LinalgError, SdpConfig};
use snc_neuro::{LifParams, TwoStageConfig};
use std::sync::Arc;
use std::time::Instant;

/// The circuit families a request can name: the paper's two circuits
/// (§IV) plus the annealed-noise and Hopfield companions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitFamily {
    /// LIF-GW: SDP factors programmed into synapses, Gaussian sampling
    /// in the membrane covariance (Fig. 1).
    LifGw,
    /// LIF-Trevisan: fully online spectral circuit with a plastic
    /// readout (Fig. 2).
    LifTrevisan,
    /// Annealed LIF-GW: the same substrate with a σ cooling schedule on
    /// the readout — Gaussian exploration early, deterministic local
    /// refinement late.
    LifAnnealed,
    /// Hopfield–Tank: deterministic continuous relaxation with
    /// sign-threshold readout; replicas are seeded restarts.
    Hopfield,
}

impl CircuitFamily {
    /// Every family, the paper's two first.
    pub fn all() -> [CircuitFamily; 4] {
        [
            CircuitFamily::LifGw,
            CircuitFamily::LifTrevisan,
            CircuitFamily::LifAnnealed,
            CircuitFamily::Hopfield,
        ]
    }

    /// The wire/CLI name of the family.
    pub fn name(&self) -> &'static str {
        match self {
            CircuitFamily::LifGw => "lif-gw",
            CircuitFamily::LifTrevisan => "lif-trevisan",
            CircuitFamily::LifAnnealed => "lif-annealed",
            CircuitFamily::Hopfield => "hopfield",
        }
    }

    /// Parses a wire/CLI name (`"lif-gw"`, `"lif-trevisan"`,
    /// `"lif-annealed"`, `"hopfield"`).
    pub fn from_name(name: &str) -> Option<CircuitFamily> {
        CircuitFamily::all().into_iter().find(|f| f.name() == name)
    }

    /// Whether the family runs an offline SDP stage (and therefore
    /// reports an SDP upper bound).
    pub fn uses_sdp(&self) -> bool {
        matches!(self, CircuitFamily::LifGw | CircuitFamily::LifAnnealed)
    }
}

/// A fully specified solve request (everything [`solve`] depends on).
#[derive(Clone, Debug)]
pub struct SolveSpec {
    /// Which circuit family to sample.
    pub family: CircuitFamily,
    /// Total sample budget across replicas (≥ 1).
    pub budget: u64,
    /// Replica width: how many lock-stepped circuit copies share the
    /// budget (the `ReplicaBatch` width). Capped at the budget; see
    /// [`effective_replicas`].
    pub replicas: usize,
    /// Master seed; every RNG stream in the solve derives from it.
    pub seed: u64,
    /// SDP rank for LIF-GW's offline factor computation (4 in §IV.A).
    pub sdp_rank: usize,
    /// Membrane parameters for the circuit's LIF population.
    pub lif: LifParams,
    /// σ cooling schedule over each replica's sample horizon
    /// ([`CircuitFamily::LifAnnealed`] only; ignored elsewhere).
    pub schedule: CoolingSchedule,
    /// Euler steps per sample ([`CircuitFamily::Hopfield`] only;
    /// ignored elsewhere; clamped to ≥ 1).
    pub hopfield_steps: u64,
}

impl SolveSpec {
    /// A spec with the workspace defaults: one replica, SDP rank 4,
    /// default LIF parameters, the default geometric cooling schedule,
    /// and 8 Euler steps per Hopfield sample.
    pub fn new(family: CircuitFamily, budget: u64, seed: u64) -> Self {
        Self {
            family,
            budget,
            replicas: 1,
            seed,
            sdp_rank: 4,
            lif: LifParams::default(),
            schedule: CoolingSchedule::default(),
            hopfield_steps: 8,
        }
    }
}

/// Wall-clock microseconds spent in each stage of one solve call.
///
/// Purely observational: timings ride alongside the deterministic
/// answer (which remains a pure function of `(graph, spec)`) so a
/// serving layer can export per-stage latency histograms without
/// re-instrumenting the solver. Rendering layers must ignore these
/// fields — response bodies stay byte-identical across cache state.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Time in the offline SDP stage, `Some` only when an SDP was
    /// actually solved this call — `None` for families with no offline
    /// stage *and* for cache hits, so a histogram of these values is a
    /// census of real SDP solves.
    pub sdp_us: Option<u64>,
    /// Time driving the stochastic circuit (sampling + trace merging).
    pub sampling_us: u64,
}

/// Microseconds since `start`, saturating into `u64`.
fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The answer to a solve request.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// Merged best-so-far trace on the total-samples checkpoint grid
    /// (per-replica log2 checkpoints × effective width).
    pub trace: BestTrace,
    /// The best cut value over every sample of every replica (equal to
    /// `trace.final_best()`).
    pub best_value: u64,
    /// A partition achieving `best_value` — the earliest such sample,
    /// ties broken by lowest replica index, so the argmax is as
    /// deterministic as the value.
    pub best_cut: CutAssignment,
    /// The SDP upper bound (LIF-GW only; LIF-Trevisan does no offline
    /// work).
    pub sdp_bound: Option<f64>,
    /// Effective replica width after capping at the budget.
    pub replicas: usize,
    /// Total samples actually drawn: `⌊budget/R⌋·R ≤ budget`.
    pub samples: u64,
    /// Wall-clock stage breakdown for this call (observational only —
    /// not part of the deterministic answer).
    pub stages: StageTimings,
}

/// Errors a solve request can fail with.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The sample budget was zero — there is nothing to sample and no
    /// partition to return.
    EmptyBudget,
    /// The graph has no vertices; the circuits have no population to
    /// build.
    EmptyGraph,
    /// The offline SDP stage failed (SDP-backed families only).
    Sdp(LinalgError),
    /// The requested family cannot run on a graph with negative edge
    /// weights (the LIF-Trevisan operator requires non-negative
    /// weights).
    NegativeWeights,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::EmptyBudget => f.write_str("sample budget must be ≥ 1"),
            SolveError::EmptyGraph => f.write_str("graph must have at least one vertex"),
            SolveError::Sdp(e) => write!(f, "SDP stage failed: {e}"),
            SolveError::NegativeWeights => {
                f.write_str("lif-trevisan requires non-negative edge weights")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<LinalgError> for SolveError {
    fn from(e: LinalgError) -> Self {
        SolveError::Sdp(e)
    }
}

/// Deterministic replica seed ladder rooted at `base`.
///
/// A single replica uses `base` itself, so `replicas == 1` consumes
/// exactly the seed stream a sequential single-circuit run does and
/// reproduces its traces bit-for-bit.
pub fn replica_seeds(base: u64, replicas: usize) -> Vec<u64> {
    if replicas <= 1 {
        vec![base]
    } else {
        (0..replicas as u64)
            .map(|r| SplitMix64::derive(base, r))
            .collect()
    }
}

/// The effective batch width for a total budget: never more replicas
/// than samples, so the merged trace cannot exceed the budget.
pub fn effective_replicas(budget: u64, replicas: usize) -> usize {
    replicas.max(1).min(budget.max(1) as usize)
}

/// The per-replica checkpoint grid for a total budget split `replicas`
/// ways. When the budget is not divisible by the batch width the merged
/// circuit trace ends at `⌊budget/R⌋·R ≤ budget`; [`effective_replicas`]
/// guarantees at least one sample per replica without overshooting. A
/// zero budget draws zero circuit samples (empty grid).
pub fn replica_checkpoints(budget: u64, replicas: usize) -> Vec<u64> {
    log2_checkpoints(budget / effective_replicas(budget, replicas) as u64)
}

/// Runs the requested circuit on `graph` and returns the best cut found
/// within the budget, its partition, and the merged best-so-far trace.
///
/// Seed ladder (shared with `snc_experiments::suite::run_suite`, so a
/// request with the harness's per-graph seed reproduces the harness's
/// circuit trace): slot 1 seeds the SDP (LIF-GW *and* LIF-annealed —
/// both program the same factors), slot 3 roots the LIF-GW replica
/// ladder, slot 4 LIF-Trevisan's, slot 6 LIF-annealed's, and slot 7
/// Hopfield's.
///
/// # Errors
///
/// Returns [`SolveError::EmptyBudget`] for a zero budget,
/// [`SolveError::EmptyGraph`] for a vertexless graph, and propagates SDP
/// failures for LIF-GW.
pub fn solve(graph: &Graph, spec: &SolveSpec) -> Result<SolveOutcome, SolveError> {
    solve_with_cache(graph, spec, None)
}

/// [`solve`] with an optional [`SdpCache`] consulted for the LIF-GW
/// offline stage.
///
/// LIF-GW requests look up `(graph fingerprint, derived sdp seed, rank)`
/// in the cache and reuse the stored factor/bound on a hit, skipping the
/// SDP entirely; LIF-Trevisan does no offline work and bypasses the
/// cache untouched. Because the cached factor is bit-identical to a
/// fresh solve's (the SDP is deterministic in its seed) and the sampling
/// RNG streams derive from separate seed slots, a warm call returns
/// bit-for-bit the outcome of a cold [`solve`] — the cache can change
/// latency, never answers.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_cache(
    graph: &Graph,
    spec: &SolveSpec,
    cache: Option<&SdpCache>,
) -> Result<SolveOutcome, SolveError> {
    if spec.budget == 0 {
        return Err(SolveError::EmptyBudget);
    }
    if graph.n() == 0 {
        return Err(SolveError::EmptyGraph);
    }
    let replicas = effective_replicas(spec.budget, spec.replicas);
    let checkpoints = replica_checkpoints(spec.budget, spec.replicas);
    match spec.family {
        CircuitFamily::LifGw => {
            let sdp_seed = SplitMix64::derive(spec.seed, 1);
            let sdp_started = Instant::now();
            let (gw, freshly_solved): (Arc<GwSolution>, bool) = match cache {
                Some(cache) => cache.get_or_solve_traced(graph, sdp_seed, spec.sdp_rank)?,
                None => {
                    let sdp_cfg = SdpConfig {
                        rank: spec.sdp_rank,
                        seed: sdp_seed,
                        ..SdpConfig::default()
                    };
                    (Arc::new(solve_gw(graph, &GwConfig { sdp: sdp_cfg })?), true)
                }
            };
            // Cache hits report no SDP time: the histogram of `sdp_us`
            // stays a census of real SDP solves, not lookups.
            let sdp_us = freshly_solved.then(|| elapsed_us(sdp_started));
            let cfg = LifGwConfig {
                lif: spec.lif,
                ..LifGwConfig::default()
            };
            let seeds = replica_seeds(SplitMix64::derive(spec.seed, 3), replicas);
            let mut batch = BatchedLifGwCircuit::new(&gw.factors, &seeds, &cfg);
            let sampling_started = Instant::now();
            let driven = drive(graph, &checkpoints, replicas, || batch.next_cuts());
            let stages = StageTimings {
                sdp_us,
                sampling_us: elapsed_us(sampling_started),
            };
            Ok(driven.into_outcome(replicas, Some(gw.sdp_bound), stages))
        }
        CircuitFamily::LifTrevisan => {
            let cfg = LifTrevisanConfig {
                network: TwoStageConfig {
                    lif: spec.lif,
                    ..TwoStageConfig::default()
                },
                ..LifTrevisanConfig::default()
            };
            let seeds = replica_seeds(SplitMix64::derive(spec.seed, 4), replicas);
            let mut batch = BatchedLifTrevisanCircuit::new(graph, &seeds, &cfg);
            let sampling_started = Instant::now();
            let driven = drive(graph, &checkpoints, replicas, || batch.next_cuts());
            let stages = StageTimings {
                sdp_us: None,
                sampling_us: elapsed_us(sampling_started),
            };
            Ok(driven.into_outcome(replicas, None, stages))
        }
        CircuitFamily::LifAnnealed => {
            // Same slot-1 SDP seed as LIF-GW (identical factors for an
            // identical master seed) but computed inline, *never* through
            // the SdpCache: the cache's hit/miss gauges stay an exact
            // census of LIF-GW offline work, which the cache-equivalence
            // suite pins.
            let sdp_seed = SplitMix64::derive(spec.seed, 1);
            let sdp_cfg = SdpConfig {
                rank: spec.sdp_rank,
                seed: sdp_seed,
                ..SdpConfig::default()
            };
            let sdp_started = Instant::now();
            let gw = solve_gw(graph, &GwConfig { sdp: sdp_cfg })?;
            let sdp_us = Some(elapsed_us(sdp_started));
            let cfg = LifAnnealedConfig {
                base: LifGwConfig {
                    lif: spec.lif,
                    ..LifGwConfig::default()
                },
                schedule: spec.schedule,
                ..LifAnnealedConfig::default()
            };
            let horizon = spec.budget / replicas as u64;
            let seeds = replica_seeds(SplitMix64::derive(spec.seed, 6), replicas);
            let mut batch =
                BatchedLifAnnealedCircuit::new(&gw.factors, graph, &seeds, &cfg, horizon);
            let sampling_started = Instant::now();
            let driven = drive(graph, &checkpoints, replicas, || batch.next_cuts());
            let stages = StageTimings {
                sdp_us,
                sampling_us: elapsed_us(sampling_started),
            };
            Ok(driven.into_outcome(replicas, Some(gw.sdp_bound), stages))
        }
        CircuitFamily::Hopfield => {
            let cfg = HopfieldConfig {
                steps_per_sample: spec.hopfield_steps,
                ..HopfieldConfig::default()
            };
            let seeds = replica_seeds(SplitMix64::derive(spec.seed, 7), replicas);
            let mut batch = BatchedHopfieldCircuit::new(graph, &seeds, &cfg);
            let sampling_started = Instant::now();
            let driven = drive(graph, &checkpoints, replicas, || batch.next_cuts());
            let stages = StageTimings {
                sdp_us: None,
                sampling_us: elapsed_us(sampling_started),
            };
            Ok(driven.into_outcome(replicas, None, stages))
        }
    }
}

/// The answer to a weighted solve request — [`SolveOutcome`]'s shape
/// with `f64` cut values.
#[derive(Clone, Debug)]
pub struct WeightedSolveOutcome {
    /// Merged best-so-far trace on the total-samples checkpoint grid.
    pub trace: WeightedBestTrace,
    /// The best weighted cut value over every sample of every replica
    /// (equal to `trace.final_best()`).
    pub best_value: f64,
    /// A partition achieving `best_value` (earliest sample, ties by
    /// lowest replica index).
    pub best_cut: CutAssignment,
    /// The weighted SDP upper bound (SDP-backed families only).
    pub sdp_bound: Option<f64>,
    /// Effective replica width after capping at the budget.
    pub replicas: usize,
    /// Total samples actually drawn: `⌊budget/R⌋·R ≤ budget`.
    pub samples: u64,
    /// Wall-clock stage breakdown for this call (observational only —
    /// not part of the deterministic answer).
    pub stages: StageTimings,
}

/// [`solve`] on a weighted graph: every family runs, with the weighted
/// SDP backing LIF-GW and LIF-annealed, weighted couplings in the
/// Hopfield relaxation, and the weighted Trevisan operator in LIF-TR.
///
/// The seed ladder is slot-for-slot [`solve`]'s, so the weighted and
/// unweighted paths of one master seed never share RNG streams by
/// accident. Like [`solve`], the outcome is a pure function of
/// `(graph, spec)`.
///
/// # Errors
///
/// Same as [`solve`], plus [`SolveError::NegativeWeights`] when the
/// LIF-Trevisan family is requested on a graph with negative weights
/// (its operator is undefined there; the other three families accept
/// signed weights).
pub fn solve_weighted(
    graph: &WeightedGraph,
    spec: &SolveSpec,
) -> Result<WeightedSolveOutcome, SolveError> {
    if spec.budget == 0 {
        return Err(SolveError::EmptyBudget);
    }
    if graph.n() == 0 {
        return Err(SolveError::EmptyGraph);
    }
    let replicas = effective_replicas(spec.budget, spec.replicas);
    let checkpoints = replica_checkpoints(spec.budget, spec.replicas);
    let sdp_cfg = |spec: &SolveSpec| SdpConfig {
        rank: spec.sdp_rank,
        seed: SplitMix64::derive(spec.seed, 1),
        ..SdpConfig::default()
    };
    match spec.family {
        CircuitFamily::LifGw => {
            let sdp_started = Instant::now();
            let gw = solve_gw_weighted(graph, &sdp_cfg(spec))?;
            let sdp_us = Some(elapsed_us(sdp_started));
            let cfg = LifGwConfig {
                lif: spec.lif,
                ..LifGwConfig::default()
            };
            let seeds = replica_seeds(SplitMix64::derive(spec.seed, 3), replicas);
            let mut batch = BatchedLifGwCircuit::new(&gw.factors, &seeds, &cfg);
            let sampling_started = Instant::now();
            let driven = drive_weighted(graph, &checkpoints, replicas, || batch.next_cuts());
            let stages = StageTimings {
                sdp_us,
                sampling_us: elapsed_us(sampling_started),
            };
            Ok(driven.into_outcome(replicas, Some(gw.sdp_bound), stages))
        }
        CircuitFamily::LifTrevisan => {
            if !graph.is_nonnegative() {
                return Err(SolveError::NegativeWeights);
            }
            let cfg = LifTrevisanConfig {
                network: TwoStageConfig {
                    lif: spec.lif,
                    ..TwoStageConfig::default()
                },
                ..LifTrevisanConfig::default()
            };
            let seeds = replica_seeds(SplitMix64::derive(spec.seed, 4), replicas);
            let mut circuits: Vec<WeightedLifTrevisanCircuit> = seeds
                .iter()
                .map(|&s| WeightedLifTrevisanCircuit::new(graph, s, &cfg))
                .collect();
            let sampling_started = Instant::now();
            let driven = drive_weighted(graph, &checkpoints, replicas, || {
                circuits.iter_mut().map(CutSampler::next_cut).collect()
            });
            let stages = StageTimings {
                sdp_us: None,
                sampling_us: elapsed_us(sampling_started),
            };
            Ok(driven.into_outcome(replicas, None, stages))
        }
        CircuitFamily::LifAnnealed => {
            let sdp_started = Instant::now();
            let gw = solve_gw_weighted(graph, &sdp_cfg(spec))?;
            let sdp_us = Some(elapsed_us(sdp_started));
            let cfg = LifAnnealedConfig {
                base: LifGwConfig {
                    lif: spec.lif,
                    ..LifGwConfig::default()
                },
                schedule: spec.schedule,
                ..LifAnnealedConfig::default()
            };
            let horizon = spec.budget / replicas as u64;
            let seeds = replica_seeds(SplitMix64::derive(spec.seed, 6), replicas);
            let mut batch =
                BatchedLifAnnealedCircuit::new_weighted(&gw.factors, graph, &seeds, &cfg, horizon);
            let sampling_started = Instant::now();
            let driven = drive_weighted(graph, &checkpoints, replicas, || batch.next_cuts());
            let stages = StageTimings {
                sdp_us,
                sampling_us: elapsed_us(sampling_started),
            };
            Ok(driven.into_outcome(replicas, Some(gw.sdp_bound), stages))
        }
        CircuitFamily::Hopfield => {
            let cfg = HopfieldConfig {
                steps_per_sample: spec.hopfield_steps,
                ..HopfieldConfig::default()
            };
            let seeds = replica_seeds(SplitMix64::derive(spec.seed, 7), replicas);
            let mut batch = BatchedHopfieldCircuit::new_weighted(graph, &seeds, &cfg);
            let sampling_started = Instant::now();
            let driven = drive_weighted(graph, &checkpoints, replicas, || batch.next_cuts());
            let stages = StageTimings {
                sdp_us: None,
                sampling_us: elapsed_us(sampling_started),
            };
            Ok(driven.into_outcome(replicas, None, stages))
        }
    }
}

/// Intermediate result of [`drive`].
struct Driven {
    trace: BestTrace,
    best_value: u64,
    best_cut: CutAssignment,
}

impl Driven {
    fn into_outcome(
        self,
        replicas: usize,
        sdp_bound: Option<f64>,
        stages: StageTimings,
    ) -> SolveOutcome {
        let samples = self.trace.checkpoints.last().copied().unwrap_or(0);
        SolveOutcome {
            best_value: self.best_value,
            best_cut: self.best_cut,
            trace: self.trace,
            sdp_bound,
            replicas,
            samples,
            stages,
        }
    }
}

/// The argmax-tracking variant of the batched checkpoint loop: advances
/// the batch one sample at a time, maintains per-replica best values
/// with incremental [`CutTracker`]s (values identical to the circuits'
/// `best_traces`), merges at each checkpoint (max over replicas, sample
/// counts summed — the `merge_traces` semantics), and keeps the earliest
/// partition achieving the global best.
fn drive(
    graph: &Graph,
    checkpoints: &[u64],
    replicas: usize,
    mut next_cuts: impl FnMut() -> Vec<CutAssignment>,
) -> Driven {
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly ascending"
    );
    assert!(!checkpoints.is_empty(), "budget ≥ 1 yields ≥ 1 checkpoint");
    let mut trackers: Vec<Option<CutTracker<'_>>> = (0..replicas).map(|_| None).collect();
    let mut per_replica_best = vec![0u64; replicas];
    let mut merged_best = Vec::with_capacity(checkpoints.len());
    // Champion: strictly-greater updates ⇒ earliest sample wins, ties
    // within a sample broken by replica index.
    let mut champion: Option<(u64, CutAssignment)> = None;
    let mut drawn = 0u64;
    for &cp in checkpoints {
        while drawn < cp {
            let cuts = next_cuts();
            debug_assert_eq!(cuts.len(), replicas);
            for (r, cut) in cuts.into_iter().enumerate() {
                let value = match trackers[r].as_mut() {
                    Some(t) => t.set_to(&cut),
                    None => {
                        let t = CutTracker::new(graph, cut.clone());
                        let v = t.value();
                        trackers[r] = Some(t);
                        v
                    }
                };
                per_replica_best[r] = per_replica_best[r].max(value);
                if champion.as_ref().is_none_or(|(best, _)| value > *best) {
                    champion = Some((value, cut));
                }
            }
            drawn += 1;
        }
        merged_best.push(per_replica_best.iter().copied().max().unwrap_or(0));
    }
    let (best_value, best_cut) = champion.expect("≥ 1 sample was drawn");
    Driven {
        trace: BestTrace {
            checkpoints: checkpoints.iter().map(|&c| c * replicas as u64).collect(),
            best: merged_best,
        },
        best_value,
        best_cut,
    }
}

/// Intermediate result of [`drive_weighted`].
struct DrivenWeighted {
    trace: WeightedBestTrace,
    best_value: f64,
    best_cut: CutAssignment,
}

impl DrivenWeighted {
    fn into_outcome(
        self,
        replicas: usize,
        sdp_bound: Option<f64>,
        stages: StageTimings,
    ) -> WeightedSolveOutcome {
        let samples = self.trace.checkpoints.last().copied().unwrap_or(0);
        WeightedSolveOutcome {
            best_value: self.best_value,
            best_cut: self.best_cut,
            trace: self.trace,
            sdp_bound,
            replicas,
            samples,
            stages,
        }
    }
}

/// [`drive`] with weighted cut values: per-replica incremental
/// [`WeightedCutTracker`]s, `f64` best-so-far merging, and the same
/// earliest-sample/lowest-replica champion semantics (strictly-greater
/// updates).
fn drive_weighted(
    graph: &WeightedGraph,
    checkpoints: &[u64],
    replicas: usize,
    mut next_cuts: impl FnMut() -> Vec<CutAssignment>,
) -> DrivenWeighted {
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly ascending"
    );
    assert!(!checkpoints.is_empty(), "budget ≥ 1 yields ≥ 1 checkpoint");
    let mut trackers: Vec<Option<WeightedCutTracker<'_>>> = (0..replicas).map(|_| None).collect();
    let mut per_replica_best = vec![f64::NEG_INFINITY; replicas];
    let mut merged_best = Vec::with_capacity(checkpoints.len());
    let mut champion: Option<(f64, CutAssignment)> = None;
    let mut drawn = 0u64;
    for &cp in checkpoints {
        while drawn < cp {
            let cuts = next_cuts();
            debug_assert_eq!(cuts.len(), replicas);
            for (r, cut) in cuts.into_iter().enumerate() {
                let value = match trackers[r].as_mut() {
                    Some(t) => t.set_to(&cut),
                    None => {
                        let t = WeightedCutTracker::new(graph, cut.clone());
                        let v = t.value();
                        trackers[r] = Some(t);
                        v
                    }
                };
                per_replica_best[r] = per_replica_best[r].max(value);
                if champion.as_ref().is_none_or(|(best, _)| value > *best) {
                    champion = Some((value, cut));
                }
            }
            drawn += 1;
        }
        let best = per_replica_best
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        merged_best.push(best);
    }
    let (best_value, best_cut) = champion.expect("≥ 1 sample was drawn");
    DrivenWeighted {
        trace: WeightedBestTrace {
            checkpoints: checkpoints.iter().map(|&c| c * replicas as u64).collect(),
            best: merged_best,
        },
        best_value,
        best_cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::merge_traces;
    use snc_graph::generators::erdos_renyi::gnp;

    fn spec(family: CircuitFamily) -> SolveSpec {
        SolveSpec {
            budget: 64,
            replicas: 4,
            ..SolveSpec::new(family, 64, 0xBEEF)
        }
    }

    #[test]
    fn family_names_roundtrip() {
        for f in CircuitFamily::all() {
            assert_eq!(CircuitFamily::from_name(f.name()), Some(f));
        }
        assert_eq!(CircuitFamily::all().len(), 4);
        assert_eq!(CircuitFamily::from_name("lif-annealed"), Some(CircuitFamily::LifAnnealed));
        assert_eq!(CircuitFamily::from_name("hopfield"), Some(CircuitFamily::Hopfield));
        assert_eq!(CircuitFamily::from_name("gw"), None);
        assert!(CircuitFamily::LifAnnealed.uses_sdp());
        assert!(!CircuitFamily::Hopfield.uses_sdp());
    }

    #[test]
    fn rejects_degenerate_requests() {
        let g = gnp(10, 0.5, 1).unwrap();
        let mut s = spec(CircuitFamily::LifGw);
        s.budget = 0;
        assert_eq!(solve(&g, &s).unwrap_err(), SolveError::EmptyBudget);
        let empty = Graph::empty(0);
        assert_eq!(
            solve(&empty, &spec(CircuitFamily::LifTrevisan)).unwrap_err(),
            SolveError::EmptyGraph
        );
    }

    #[test]
    fn outcome_is_internally_consistent() {
        let g = gnp(20, 0.4, 7).unwrap();
        for family in CircuitFamily::all() {
            let out = solve(&g, &spec(family)).unwrap();
            // The partition must achieve exactly the reported value …
            assert_eq!(out.best_cut.cut_value(&g), out.best_value, "{family:?}");
            // … which is the final trace value …
            assert_eq!(out.best_value, out.trace.final_best(), "{family:?}");
            // … and the merged grid covers the whole (divisible) budget.
            assert_eq!(out.samples, 64);
            assert_eq!(out.replicas, 4);
            assert_eq!(out.trace.checkpoints.last(), Some(&64));
            assert!(out.trace.best.windows(2).all(|w| w[0] <= w[1]));
            if family.uses_sdp() {
                let bound = out.sdp_bound.expect("SDP-backed families carry the bound");
                assert!(bound >= out.best_value as f64 - 1e-6, "{family:?}");
            } else {
                assert_eq!(out.sdp_bound, None, "{family:?}");
            }
        }
    }

    #[test]
    fn identical_requests_yield_identical_outcomes() {
        let g = gnp(18, 0.4, 3).unwrap();
        for family in CircuitFamily::all() {
            let a = solve(&g, &spec(family)).unwrap();
            let b = solve(&g, &spec(family)).unwrap();
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.best_value, b.best_value);
            assert_eq!(a.best_cut, b.best_cut);
            assert_eq!(a.sdp_bound, b.sdp_bound);
        }
    }

    #[test]
    fn cached_solves_are_bit_identical_to_cold_solves() {
        let cache = SdpCache::new(8);
        for seed in [0u64, 0xBEEF, 71] {
            let g = gnp(16, 0.4, seed).unwrap();
            for family in CircuitFamily::all() {
                let mut s = spec(family);
                s.seed = seed;
                let cold = solve(&g, &s).unwrap();
                let miss = solve_with_cache(&g, &s, Some(&cache)).unwrap();
                let hit = solve_with_cache(&g, &s, Some(&cache)).unwrap();
                for warm in [&miss, &hit] {
                    assert_eq!(cold.trace, warm.trace, "{family:?} seed {seed}");
                    assert_eq!(cold.best_value, warm.best_value);
                    assert_eq!(cold.best_cut, warm.best_cut);
                    assert_eq!(cold.sdp_bound, warm.sdp_bound, "bound must be bit-equal");
                }
            }
        }
        let stats = cache.stats();
        // Only LIF-GW touches the cache: 3 seeds × (1 miss + 1 hit).
        // LIF-Trevisan and Hopfield do no offline work; LIF-annealed
        // computes its SDP inline by design.
        assert_eq!((stats.hits, stats.misses), (3, 3), "other families bypass");
    }

    #[test]
    fn distinct_request_seeds_use_distinct_sdp_entries() {
        // The cache key uses the *derived* SDP seed (slot 1), so two
        // requests differing only in the master seed must not share a
        // factor.
        let cache = SdpCache::new(8);
        let g = gnp(14, 0.5, 4).unwrap();
        let mut a = spec(CircuitFamily::LifGw);
        a.seed = 1;
        let mut b = a.clone();
        b.seed = 2;
        solve_with_cache(&g, &a, Some(&cache)).unwrap();
        solve_with_cache(&g, &b, Some(&cache)).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn trace_matches_the_batched_steppers() {
        // solve() must report exactly the trace the batched circuits
        // produce with the same seed ladder — the argmax bookkeeping may
        // not perturb the numbers.
        let g = gnp(16, 0.5, 11).unwrap();
        let s = spec(CircuitFamily::LifTrevisan);
        let out = solve(&g, &s).unwrap();
        let replicas = effective_replicas(s.budget, s.replicas);
        let cp = replica_checkpoints(s.budget, s.replicas);
        let seeds = replica_seeds(SplitMix64::derive(s.seed, 4), replicas);
        let cfg = LifTrevisanConfig {
            network: TwoStageConfig {
                lif: s.lif,
                ..TwoStageConfig::default()
            },
            ..LifTrevisanConfig::default()
        };
        let mut batch = BatchedLifTrevisanCircuit::new(&g, &seeds, &cfg);
        let reference = merge_traces(&batch.best_traces(&g, &cp));
        assert_eq!(out.trace, reference);
    }

    #[test]
    fn replica_arithmetic_caps_and_splits() {
        assert_eq!(effective_replicas(1000, 16), 16);
        assert_eq!(replica_checkpoints(1000, 16).last(), Some(&62));
        assert_eq!(effective_replicas(4, 8), 4);
        assert_eq!(effective_replicas(0, 8), 1);
        assert_eq!(effective_replicas(64, 0), 1);
        assert!(replica_checkpoints(0, 8).is_empty());
        assert_eq!(replica_seeds(9, 1), vec![9]);
        let ladder = replica_seeds(9, 3);
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0], SplitMix64::derive(9, 0));
    }

    #[test]
    fn indivisible_budget_never_overshoots() {
        let g = gnp(12, 0.5, 2).unwrap();
        let mut s = spec(CircuitFamily::LifGw);
        s.budget = 10;
        s.replicas = 4;
        let out = solve(&g, &s).unwrap();
        assert_eq!(out.samples, 8); // 4 · ⌊10/4⌋
        assert_eq!(out.trace.checkpoints.last(), Some(&8));
        assert_eq!(out.best_cut.cut_value(&g), out.best_value);
    }

    #[test]
    fn annealed_never_consults_the_sdp_cache() {
        // The family computes its SDP inline (same slot-1 seed as
        // LIF-GW) but must leave the cache gauges untouched — the
        // serving layer's hit/miss census counts LIF-GW offline work
        // only.
        let cache = SdpCache::new(8);
        let g = gnp(14, 0.5, 6).unwrap();
        let s = spec(CircuitFamily::LifAnnealed);
        let cold = solve(&g, &s).unwrap();
        let warm = solve_with_cache(&g, &s, Some(&cache)).unwrap();
        assert_eq!(cold.trace, warm.trace);
        assert_eq!(cold.best_cut, warm.best_cut);
        assert_eq!(cold.sdp_bound, warm.sdp_bound);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn annealed_and_lif_gw_share_the_sdp_bound() {
        // Same master seed ⇒ same slot-1 SDP seed ⇒ bit-identical
        // factors and bound, even though the sampling ladders differ
        // (slot 6 vs slot 3).
        let g = gnp(16, 0.4, 12).unwrap();
        let gw = solve(&g, &spec(CircuitFamily::LifGw)).unwrap();
        let annealed = solve(&g, &spec(CircuitFamily::LifAnnealed)).unwrap();
        assert_eq!(
            gw.sdp_bound.unwrap().to_bits(),
            annealed.sdp_bound.unwrap().to_bits()
        );
    }

    #[test]
    fn cooling_schedule_changes_the_samples() {
        // A constant schedule keeps the readout pure LIF-GW; the default
        // geometric schedule departs from it once σ cools. Both are
        // deterministic, so inequality of the sample streams is a stable
        // fact of this seed, not a flake.
        let g = gnp(18, 0.4, 5).unwrap();
        let factors = solve_gw(&g, &GwConfig::default()).unwrap().factors;
        let cooled_cfg = LifAnnealedConfig::default();
        let constant_cfg = LifAnnealedConfig {
            schedule: CoolingSchedule::constant(1.0).unwrap(),
            ..LifAnnealedConfig::default()
        };
        let mut cooled = BatchedLifAnnealedCircuit::new(&factors, &g, &[9], &cooled_cfg, 32);
        let mut constant = BatchedLifAnnealedCircuit::new(&factors, &g, &[9], &constant_cfg, 32);
        let a: Vec<_> = (0..32).flat_map(|_| cooled.next_cuts()).collect();
        let b: Vec<_> = (0..32).flat_map(|_| constant.next_cuts()).collect();
        assert_ne!(a, b, "cooling must alter the sample stream");
    }

    #[test]
    fn weighted_outcome_is_internally_consistent() {
        let base = gnp(14, 0.5, 8).unwrap();
        let g = snc_graph::weighted::randomize_weights(
            &base,
            snc_graph::weighted::WeightDistribution::Uniform { lo: 0.5, hi: 2.0 },
            3,
        )
        .unwrap();
        for family in CircuitFamily::all() {
            let out = solve_weighted(&g, &spec(family)).unwrap();
            // The incremental tracker resyncs periodically, so the
            // reported value matches a scratch evaluation to rounding.
            let scratch = g.cut_value(&out.best_cut);
            assert!(
                (out.best_value - scratch).abs() <= 1e-9 * g.total_weight().max(1.0),
                "{family:?}: {} vs {scratch}",
                out.best_value
            );
            assert_eq!(out.best_value, out.trace.final_best(), "{family:?}");
            assert_eq!(out.samples, 64);
            assert_eq!(out.replicas, 4);
            assert!(out.trace.best.windows(2).all(|w| w[0] <= w[1]));
            if family.uses_sdp() {
                let bound = out.sdp_bound.expect("SDP-backed families carry the bound");
                assert!(bound >= out.best_value - 1e-6, "{family:?}");
            } else {
                assert_eq!(out.sdp_bound, None, "{family:?}");
            }
        }
    }

    #[test]
    fn weighted_solves_are_deterministic() {
        let base = gnp(12, 0.5, 9).unwrap();
        let g = snc_graph::weighted::randomize_weights(
            &base,
            snc_graph::weighted::WeightDistribution::Uniform { lo: 0.5, hi: 2.0 },
            7,
        )
        .unwrap();
        for family in CircuitFamily::all() {
            let a = solve_weighted(&g, &spec(family)).unwrap();
            let b = solve_weighted(&g, &spec(family)).unwrap();
            assert_eq!(a.trace, b.trace, "{family:?}");
            assert_eq!(a.best_cut, b.best_cut, "{family:?}");
            assert_eq!(
                a.best_value.to_bits(),
                b.best_value.to_bits(),
                "{family:?}"
            );
        }
    }

    #[test]
    fn negative_weights_reject_trevisan_only() {
        let g = WeightedGraph::from_weighted_edges(
            4,
            &[(0, 1, 1.0), (1, 2, -0.5), (2, 3, 2.0)],
        )
        .unwrap();
        assert_eq!(
            solve_weighted(&g, &spec(CircuitFamily::LifTrevisan)).unwrap_err(),
            SolveError::NegativeWeights
        );
        for family in [
            CircuitFamily::LifGw,
            CircuitFamily::LifAnnealed,
            CircuitFamily::Hopfield,
        ] {
            let out = solve_weighted(&g, &spec(family)).unwrap();
            assert!(out.best_value.is_finite(), "{family:?}");
        }
    }

    #[test]
    fn weighted_rejects_degenerate_requests() {
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 1.0)]).unwrap();
        let mut s = spec(CircuitFamily::Hopfield);
        s.budget = 0;
        assert_eq!(solve_weighted(&g, &s).unwrap_err(), SolveError::EmptyBudget);
        let empty = WeightedGraph::from_weighted_edges(0, &[]).unwrap();
        assert_eq!(
            solve_weighted(&empty, &spec(CircuitFamily::Hopfield)).unwrap_err(),
            SolveError::EmptyGraph
        );
    }

    #[test]
    fn unit_weighted_hopfield_matches_unweighted() {
        // Hopfield consumes only the coupling list, so unit weights via
        // the weighted path reproduce the unweighted solve exactly.
        let base = gnp(12, 0.5, 4).unwrap();
        let g = WeightedGraph::from_graph(&base);
        let s = spec(CircuitFamily::Hopfield);
        let unweighted = solve(&base, &s).unwrap();
        let weighted = solve_weighted(&g, &s).unwrap();
        assert_eq!(weighted.best_cut, unweighted.best_cut);
        assert_eq!(weighted.best_value, unweighted.best_value as f64);
        assert_eq!(
            weighted.trace.best,
            unweighted
                .trace
                .best
                .iter()
                .map(|&v| v as f64)
                .collect::<Vec<_>>()
        );
    }
}
