//! Exact MAXCUT solvers for ground truth on small instances.
//!
//! * [`brute_force`] — Gray-code enumeration of all 2^(n−1) distinct cuts
//!   with O(deg) incremental updates; practical to n ≈ 26.
//! * [`branch_and_bound`] — DFS over vertex assignments (degree-descending
//!   order) with the "remaining edges" upper bound; usually far faster on
//!   sparse graphs, and exact at any size it finishes.

use snc_graph::{CutAssignment, Graph};

/// Exhaustive maximum cut by Gray-code enumeration.
///
/// Complement symmetry is exploited by pinning vertex `n−1` to the `−1`
/// side (every cut or its complement has this form).
///
/// # Panics
///
/// Panics if `n > 30` (use [`branch_and_bound`] or a heuristic instead).
pub fn brute_force(graph: &Graph) -> (CutAssignment, u64) {
    let n = graph.n();
    assert!(n <= 30, "brute force is limited to n <= 30 (got {n})");
    if n == 0 {
        return (CutAssignment::all_ones(0), 0);
    }
    let free = n - 1; // last vertex pinned
    let mut cut = CutAssignment::all_ones(n);
    // all_ones is cut 0.
    let mut value: i64 = 0;
    let mut best_value: i64 = 0;
    let mut best = cut.clone();
    // Gray code over the free vertices: between consecutive codes exactly
    // one vertex flips; the flip index is the number of trailing ones of
    // the counter.
    for counter in 1u64..(1u64 << free) {
        let flip = counter.trailing_zeros() as usize;
        value += cut.flip_delta(graph, flip);
        cut.flip(flip);
        if value > best_value {
            best_value = value;
            best = cut.clone();
        }
    }
    (best, best_value as u64)
}

/// Exact maximum cut by branch and bound.
///
/// Vertices are assigned in degree-descending order. At each node the bound
/// is `current cut + edges with at least one unassigned endpoint`; subtrees
/// that cannot beat the incumbent are pruned.
pub fn branch_and_bound(graph: &Graph) -> (CutAssignment, u64) {
    let n = graph.n();
    if n == 0 {
        return (CutAssignment::all_ones(0), 0);
    }
    // Assignment order: highest degree first (stronger early bounds).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));

    // remaining_edges[k] = edges whose *later-ordered* endpoint is at
    // position >= k, i.e. edges not yet fully decided before level k.
    let mut position = vec![0usize; n];
    for (pos, &v) in order.iter().enumerate() {
        position[v] = pos;
    }
    let mut undecided_at = vec![0u64; n + 1];
    for (u, v) in graph.edges() {
        let later = position[u as usize].max(position[v as usize]);
        undecided_at[later] += 1;
    }
    // suffix sums: edges decided at level >= k.
    for k in (0..n).rev() {
        undecided_at[k] += undecided_at[k + 1];
    }

    let mut sides = vec![0i8; n]; // 0 = unassigned
    let mut best_sides = vec![1i8; n];
    let mut best_value = 0u64;

    // Greedy warm start: a good incumbent prunes hard.
    let (greedy_cut, greedy_value) = crate::greedy::local_search(graph, 0xB0B);
    best_value = best_value.max(greedy_value);
    best_sides.copy_from_slice(greedy_cut.sides());

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        graph: &Graph,
        order: &[usize],
        undecided_at: &[u64],
        sides: &mut [i8],
        level: usize,
        current: u64,
        best_value: &mut u64,
        best_sides: &mut [i8],
    ) {
        if level == order.len() {
            if current > *best_value {
                *best_value = current;
                best_sides.copy_from_slice(sides);
            }
            return;
        }
        if current + undecided_at[level] <= *best_value {
            return; // even cutting every undecided edge cannot improve
        }
        let v = order[level];
        // Count already-assigned neighbors on each side.
        let mut plus = 0u64;
        let mut minus = 0u64;
        for &w in graph.neighbors(v) {
            match sides[w as usize] {
                1 => plus += 1,
                -1 => minus += 1,
                _ => {}
            }
        }
        // Symmetry breaking: the first vertex goes to +1 only. Otherwise
        // explore the side that cuts more already-assigned edges first.
        let sides_to_try: &[i8] = if level == 0 {
            &[1]
        } else if minus >= plus {
            &[1, -1]
        } else {
            &[-1, 1]
        };
        for &side in sides_to_try {
            let gained = if side == 1 { minus } else { plus };
            sides[v] = side;
            dfs(
                graph,
                order,
                undecided_at,
                sides,
                level + 1,
                current + gained,
                best_value,
                best_sides,
            );
            sides[v] = 0;
        }
    }

    dfs(
        graph,
        &order,
        &undecided_at,
        &mut sides,
        0,
        0,
        &mut best_value,
        &mut best_sides,
    );
    (CutAssignment::from_sides(best_sides), best_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::{complete, complete_bipartite, cycle, path, petersen};

    #[test]
    fn known_optimal_values() {
        // K_n: ⌊n/2⌋·⌈n/2⌉.
        assert_eq!(brute_force(&complete(4)).1, 4);
        assert_eq!(brute_force(&complete(5)).1, 6);
        assert_eq!(brute_force(&complete(6)).1, 9);
        // Bipartite: all edges.
        assert_eq!(brute_force(&complete_bipartite(3, 4)).1, 12);
        // Even cycle: m; odd cycle: m − 1.
        assert_eq!(brute_force(&cycle(8)).1, 8);
        assert_eq!(brute_force(&cycle(9)).1, 8);
        // Path: all edges.
        assert_eq!(brute_force(&path(7)).1, 6);
        // Petersen: 12 (classic).
        assert_eq!(brute_force(&petersen()).1, 12);
        // Empty graph.
        assert_eq!(brute_force(&Graph::empty(3)).1, 0);
        assert_eq!(brute_force(&Graph::empty(0)).1, 0);
    }

    #[test]
    fn returned_assignment_achieves_value() {
        for g in [petersen(), cycle(7), complete(6)] {
            let (cut, v) = brute_force(&g);
            assert_eq!(cut.cut_value(&g), v);
        }
    }

    #[test]
    fn branch_and_bound_matches_brute_force() {
        for seed in 0..6u64 {
            let g = gnp(14, 0.4, seed).unwrap();
            let bf = brute_force(&g).1;
            let (cut, bb) = branch_and_bound(&g);
            assert_eq!(bb, bf, "seed={seed}");
            assert_eq!(cut.cut_value(&g), bb);
        }
    }

    #[test]
    fn branch_and_bound_structured() {
        assert_eq!(branch_and_bound(&petersen()).1, 12);
        assert_eq!(branch_and_bound(&complete_bipartite(5, 5)).1, 25);
        assert_eq!(branch_and_bound(&cycle(15)).1, 14);
        assert_eq!(branch_and_bound(&Graph::empty(4)).1, 0);
    }

    #[test]
    fn branch_and_bound_handles_larger_sparse() {
        let g = gnp(40, 0.08, 5).unwrap();
        let (cut, v) = branch_and_bound(&g);
        assert_eq!(cut.cut_value(&g), v);
        assert!(v >= g.m() as u64 / 2); // must beat the random expectation
    }
}
