//! Deterministic caching for the offline SDP stage.
//!
//! The Burer–Monteiro factor the LIF-GW circuit programs into its
//! synapses is a pure function of `(graph, sdp seed, rank)` — it costs
//! ~13 of the ~20 ms a road-chesapeake solve spends end to end, and it
//! is bit-for-bit reproducible given those three inputs. [`SdpCache`]
//! memoizes exactly that function, so repeated solves of the same graph
//! (anneal restarts, repeated service requests, figure sweeps) pay the
//! SDP once and re-run only the stochastic circuit stage the paper
//! actually studies.
//!
//! ## Determinism contract
//!
//! A cache hit returns the *identical* factor matrix a cold solve would
//! have computed (the SDP is deterministic in its seed), and the factor
//! is consumed read-only by the sampling stage, whose RNG streams derive
//! from separate seed slots. Therefore [`crate::solve::solve_with_cache`]
//! with a warm cache produces bit-for-bit the outcome of a cold
//! [`crate::solve::solve`] — pinned by the cache-equivalence tests.
//!
//! ## Structure
//!
//! The cache is sharded: the graph fingerprint's folded digest picks a
//! shard, each shard is an independent LRU list behind its own
//! `parking_lot` mutex, and **no lock is ever held across an SDP
//! solve** — on a miss the shard lock is released, the factor is
//! computed, and the lock is retaken to insert. Two threads missing the
//! same key concurrently both compute (identical) factors; the second
//! insert is dropped. Entries store the full key — including the graph
//! itself — and a hit requires full-key equality, so a fingerprint
//! collision degrades to a miss, never to a wrong factor.

use crate::gw::{solve_gw, GwConfig, GwSolution};
use parking_lot::Mutex;
use snc_graph::{Graph, GraphFingerprint};
use snc_linalg::{LinalgError, SdpConfig};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Most shards a cache will spread its entries over.
const MAX_SHARDS: usize = 8;
/// Entries per shard below which adding another shard stops paying:
/// small caches use fewer (down to one) shards so that the configured
/// capacity stays exact and tests can reason about eviction order.
const MIN_ENTRIES_PER_SHARD: usize = 8;

/// Counters describing cache traffic (monotonic since construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// The full cache key: fingerprint for routing, plus every input the
/// SDP depends on — including the graph itself for collision checking.
struct Entry {
    fingerprint: GraphFingerprint,
    seed: u64,
    rank: usize,
    graph: Graph,
    solution: Arc<GwSolution>,
}

impl Entry {
    fn matches(&self, fingerprint: GraphFingerprint, seed: u64, rank: usize, graph: &Graph) -> bool {
        // Fingerprint first (cheap reject), then the full key: a
        // fingerprint collision must read as a miss, not a wrong factor.
        self.fingerprint == fingerprint && self.seed == seed && self.rank == rank && self.graph == *graph
    }
}

/// One shard: an LRU list (front = least recently used).
#[derive(Default)]
struct Shard {
    entries: VecDeque<Entry>,
}

/// A bounded, sharded, thread-safe memo of SDP factor/bound pairs keyed
/// by `(graph fingerprint, sdp seed, rank)` with full-key collision
/// checking. See the module docs for the determinism contract.
pub struct SdpCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for SdpCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SdpCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl SdpCache {
    /// Creates a cache retaining at most `capacity` factor entries in
    /// total. `capacity == 0` means *disabled*: every lookup misses,
    /// inserts are dropped, and nothing panics.
    pub fn new(capacity: usize) -> Self {
        let shards = shard_count(capacity, MIN_ENTRIES_PER_SHARD);
        // Floor division keeps the global bound exact: the shards
        // together never retain more than `capacity` entries.
        let per_shard_capacity = capacity.checked_div(shards).unwrap_or(0);
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether the cache can retain anything at all.
    pub fn is_enabled(&self) -> bool {
        self.per_shard_capacity > 0
    }

    /// Total entries the cache may retain.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// A traffic snapshot. Counters are monotonic; `entries` is the
    /// current resident count (each counter is read atomically, the
    /// snapshot as a whole is not — consistent once traffic quiesces).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().entries.len() as u64)
                .sum(),
        }
    }

    fn shard_for(&self, fingerprint: GraphFingerprint) -> &Mutex<Shard> {
        &self.shards[(fingerprint.fold() % self.shards.len() as u64) as usize]
    }

    /// Returns the memoized SDP solution for `(graph, seed, rank)`,
    /// computing (and caching) it on a miss.
    ///
    /// The shard lock is held only for the lookup and the insert — never
    /// across the SDP solve itself, so concurrent solves of distinct
    /// graphs proceed in parallel and concurrent solves of the *same*
    /// graph merely duplicate (deterministic, identical) work.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from the SDP stage; failures are not
    /// cached.
    pub fn get_or_solve(
        &self,
        graph: &Graph,
        seed: u64,
        rank: usize,
    ) -> Result<Arc<GwSolution>, LinalgError> {
        self.get_or_solve_traced(graph, seed, rank)
            .map(|(solution, _)| solution)
    }

    /// [`SdpCache::get_or_solve`], additionally reporting whether the
    /// solution was freshly solved (`true`) or served from the cache
    /// (`false`) — so callers timing the SDP stage can attribute the
    /// elapsed time to a real solve rather than a lookup.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from the SDP stage; failures are not
    /// cached.
    pub fn get_or_solve_traced(
        &self,
        graph: &Graph,
        seed: u64,
        rank: usize,
    ) -> Result<(Arc<GwSolution>, bool), LinalgError> {
        let fingerprint = graph.fingerprint();
        if self.is_enabled() {
            let mut shard = self.shard_for(fingerprint).lock();
            if let Some(idx) = shard
                .entries
                .iter()
                .position(|e| e.matches(fingerprint, seed, rank, graph))
            {
                // LRU touch: move the hit to the back (most recent).
                let entry = shard.entries.remove(idx).expect("index from position");
                let solution = Arc::clone(&entry.solution);
                shard.entries.push_back(entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((solution, false));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Lock released: compute outside any shard lock.
        let cfg = GwConfig {
            sdp: SdpConfig {
                rank,
                seed,
                ..SdpConfig::default()
            },
        };
        let solution = Arc::new(solve_gw(graph, &cfg)?);

        if self.is_enabled() {
            let mut shard = self.shard_for(fingerprint).lock();
            // Another thread may have inserted while we solved; keep the
            // resident entry (the values are identical by determinism).
            let already = shard
                .entries
                .iter()
                .any(|e| e.matches(fingerprint, seed, rank, graph));
            if !already {
                while shard.entries.len() >= self.per_shard_capacity {
                    shard.entries.pop_front();
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                shard.entries.push_back(Entry {
                    fingerprint,
                    seed,
                    rank,
                    graph: graph.clone(),
                    solution: Arc::clone(&solution),
                });
            }
        }
        Ok((solution, true))
    }
}

/// Shard count for a capacity: enough shards to cut contention, never so
/// many that a shard's share of the capacity drops below
/// `min_per_shard` (and zero for a disabled cache).
fn shard_count(capacity: usize, min_per_shard: usize) -> usize {
    if capacity == 0 {
        0
    } else {
        (capacity / min_per_shard).clamp(1, MAX_SHARDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snc_graph::generators::erdos_renyi::gnp;

    #[test]
    fn hit_returns_the_identical_solution() {
        let cache = SdpCache::new(4);
        let g = gnp(12, 0.5, 3).unwrap();
        let cold = cache.get_or_solve(&g, 9, 4).unwrap();
        let warm = cache.get_or_solve(&g, 9, 4).unwrap();
        assert!(Arc::ptr_eq(&cold, &warm), "hit shares the stored factor");
        assert_eq!(cold.factors, warm.factors);
        assert_eq!(cold.sdp_bound, warm.sdp_bound);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_seeds_ranks_and_graphs_are_distinct_entries() {
        let cache = SdpCache::new(8);
        let g = gnp(10, 0.5, 1).unwrap();
        let h = gnp(10, 0.5, 2).unwrap();
        let a = cache.get_or_solve(&g, 1, 4).unwrap();
        let b = cache.get_or_solve(&g, 2, 4).unwrap();
        let c = cache.get_or_solve(&g, 1, 3).unwrap();
        let d = cache.get_or_solve(&h, 1, 4).unwrap();
        assert_eq!(cache.stats().misses, 4, "four distinct keys");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(c.factors.cols(), 3);
        // Same key again: all hits.
        assert!(Arc::ptr_eq(&a, &cache.get_or_solve(&g, 1, 4).unwrap()));
        assert!(Arc::ptr_eq(&b, &cache.get_or_solve(&g, 2, 4).unwrap()));
        assert!(Arc::ptr_eq(&d, &cache.get_or_solve(&h, 1, 4).unwrap()));
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn lru_eviction_is_bounded_and_counted() {
        let cache = SdpCache::new(2);
        assert_eq!(cache.capacity(), 2);
        let graphs: Vec<_> = (0..3).map(|s| gnp(8, 0.6, s).unwrap()).collect();
        for g in &graphs {
            cache.get_or_solve(g, 7, 2).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2, "capacity is a hard bound");
        assert_eq!(stats.evictions, 1);
        // graphs[0] was the LRU victim; graphs[1] and graphs[2] are warm.
        cache.get_or_solve(&graphs[1], 7, 2).unwrap();
        cache.get_or_solve(&graphs[2], 7, 2).unwrap();
        assert_eq!(cache.stats().hits, 2);
        cache.get_or_solve(&graphs[0], 7, 2).unwrap();
        assert_eq!(cache.stats().misses, 4, "victim re-solves");
    }

    #[test]
    fn lru_touch_protects_recently_hit_entries() {
        let cache = SdpCache::new(2);
        let a = gnp(8, 0.6, 10).unwrap();
        let b = gnp(8, 0.6, 11).unwrap();
        let c = gnp(8, 0.6, 12).unwrap();
        cache.get_or_solve(&a, 1, 2).unwrap();
        cache.get_or_solve(&b, 1, 2).unwrap();
        cache.get_or_solve(&a, 1, 2).unwrap(); // touch a: b is now LRU
        cache.get_or_solve(&c, 1, 2).unwrap(); // evicts b
        let hits_before = cache.stats().hits;
        cache.get_or_solve(&a, 1, 2).unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1, "a survived");
        cache.get_or_solve(&b, 1, 2).unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1, "b was evicted");
    }

    #[test]
    fn capacity_zero_disables_without_panicking() {
        let cache = SdpCache::new(0);
        assert!(!cache.is_enabled());
        assert_eq!(cache.capacity(), 0);
        let g = gnp(8, 0.5, 4).unwrap();
        let a = cache.get_or_solve(&g, 1, 2).unwrap();
        let b = cache.get_or_solve(&g, 1, 2).unwrap();
        assert_eq!(a.factors, b.factors, "still deterministic, just uncached");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries, stats.evictions), (0, 2, 0, 0));
    }

    #[test]
    fn capacity_one_holds_exactly_one_entry() {
        let cache = SdpCache::new(1);
        assert_eq!(cache.capacity(), 1);
        let a = gnp(8, 0.5, 20).unwrap();
        let b = gnp(8, 0.5, 21).unwrap();
        cache.get_or_solve(&a, 1, 2).unwrap();
        cache.get_or_solve(&a, 1, 2).unwrap();
        assert_eq!(cache.stats().hits, 1);
        cache.get_or_solve(&b, 1, 2).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn shard_count_scales_with_capacity() {
        assert_eq!(shard_count(0, 8), 0);
        assert_eq!(shard_count(1, 8), 1);
        assert_eq!(shard_count(7, 8), 1);
        assert_eq!(shard_count(16, 8), 2);
        assert_eq!(shard_count(64, 8), 8);
        assert_eq!(shard_count(10_000, 8), 8, "clamped at MAX_SHARDS");
        // Capacity stays a hard bound under flooring.
        let cache = SdpCache::new(65);
        assert!(cache.capacity() <= 65);
        assert!(cache.capacity() >= 64);
    }

    #[test]
    fn errors_are_propagated_and_not_cached() {
        let cache = SdpCache::new(4);
        let g = gnp(6, 0.5, 1).unwrap();
        assert!(cache.get_or_solve(&g, 1, 0).is_err(), "rank 0 is invalid");
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get_or_solve(&g, 1, 2).is_ok());
    }
}
