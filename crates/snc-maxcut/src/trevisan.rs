//! The Trevisan "simple spectral" algorithm (§II.B).
//!
//! Compute the eigenvector of the minimum eigenvalue of
//! `I + D^{-1/2} A D^{-1/2}` and threshold it by sign:
//! `v_i = −1 if u_i ≤ 0, +1 otherwise`. This is the software reference for
//! the LIF-Trevisan circuit, which finds the same eigenvector *online*
//! through Oja's anti-Hebbian plasticity.
//!
//! [`SpectralRounding::BestSweep`] additionally implements the sweep-cut
//! refinement evaluated by Mirka & Williamson \[21\]: try every threshold
//! along the sorted eigenvector and keep the best cut. Strictly at least as
//! good as the sign rounding with the same eigenvector.

use snc_graph::{CutAssignment, Graph, TrevisanOperator};
use snc_linalg::eigen::{extreme_eigenpair, EigenConfig, Which};
use snc_linalg::LinalgError;

/// How the eigenvector is turned into a cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpectralRounding {
    /// Sign thresholding at zero (the paper's rule).
    Sign,
    /// Best of all n−1 sweep cuts along the sorted eigenvector.
    BestSweep,
}

/// Configuration for the spectral solver.
#[derive(Clone, Copy, Debug)]
pub struct TrevisanConfig {
    /// Eigensolver settings.
    pub eigen: EigenConfig,
    /// Rounding rule.
    pub rounding: SpectralRounding,
}

impl Default for TrevisanConfig {
    fn default() -> Self {
        Self {
            eigen: EigenConfig::default(),
            rounding: SpectralRounding::Sign,
        }
    }
}

/// Result of the spectral solver.
#[derive(Clone, Debug)]
pub struct TrevisanSolution {
    /// The minimum eigenvector of the Trevisan matrix.
    pub eigenvector: Vec<f64>,
    /// Its eigenvalue (in `[0, 2]`; 0 exactly iff a bipartite component).
    pub eigenvalue: f64,
    /// The rounded cut.
    pub cut: CutAssignment,
    /// The cut's value.
    pub value: u64,
}

/// Runs the simple spectral algorithm on a graph.
///
/// # Errors
///
/// Propagates eigensolver non-convergence.
pub fn solve_trevisan(graph: &Graph, cfg: &TrevisanConfig) -> Result<TrevisanSolution, LinalgError> {
    if graph.n() == 0 {
        return Ok(TrevisanSolution {
            eigenvector: Vec::new(),
            eigenvalue: 0.0,
            cut: CutAssignment::all_ones(0),
            value: 0,
        });
    }
    let op = TrevisanOperator::new(graph);
    let pair = extreme_eigenpair(&op, Which::Smallest, &cfg.eigen)?;
    let cut = match cfg.rounding {
        SpectralRounding::Sign => CutAssignment::from_signs(&pair.vector),
        SpectralRounding::BestSweep => best_sweep_cut(graph, &pair.vector),
    };
    let value = cut.cut_value(graph);
    Ok(TrevisanSolution {
        eigenvector: pair.vector,
        eigenvalue: pair.value,
        cut,
        value,
    })
}

/// The best threshold cut along the sorted order of `scores`.
///
/// Starts with every vertex on the `−1` side and moves vertices across in
/// ascending score order, maintaining the cut value incrementally
/// (`O(m + n log n)`).
pub fn best_sweep_cut(graph: &Graph, scores: &[f64]) -> CutAssignment {
    let n = graph.n();
    assert_eq!(scores.len(), n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));

    let mut cut = CutAssignment::from_sides(vec![-1; n]);
    let mut value: i64 = 0;
    let mut best_value: i64 = 0;
    let mut best_prefix = 0usize; // how many vertices (in order) sit on +1
    for (moved, &v) in order.iter().enumerate() {
        value += cut.flip_delta(graph, v);
        cut.flip(v);
        if value > best_value {
            best_value = value;
            best_prefix = moved + 1;
        }
    }
    // Rebuild the best prefix assignment.
    let mut sides = vec![-1i8; n];
    for &v in &order[..best_prefix] {
        sides[v] = 1;
    }
    CutAssignment::from_sides(sides)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force;
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::{complete_bipartite, cycle, petersen};

    #[test]
    fn bipartite_graphs_are_solved_exactly() {
        // Bipartite: λ_min(I + N) = 0 and the eigenvector signs are the
        // bipartition.
        let g = complete_bipartite(4, 6);
        let sol = solve_trevisan(&g, &TrevisanConfig::default()).unwrap();
        assert!(sol.eigenvalue.abs() < 1e-6, "λ={}", sol.eigenvalue);
        assert_eq!(sol.value, 24);
        let g2 = cycle(10);
        let sol2 = solve_trevisan(&g2, &TrevisanConfig::default()).unwrap();
        assert_eq!(sol2.value, 10);
    }

    #[test]
    fn eigenvalue_in_spectral_range() {
        let g = gnp(40, 0.2, 1).unwrap();
        let sol = solve_trevisan(&g, &TrevisanConfig::default()).unwrap();
        assert!((-1e-9..=2.0).contains(&sol.eigenvalue), "λ={}", sol.eigenvalue);
        assert_eq!(sol.cut.cut_value(&g), sol.value);
    }

    #[test]
    fn beats_random_expectation_on_er_graphs() {
        for seed in 0..4u64 {
            let g = gnp(50, 0.25, seed).unwrap();
            let sol = solve_trevisan(&g, &TrevisanConfig::default()).unwrap();
            assert!(
                sol.value as f64 > 0.5 * g.m() as f64,
                "seed={seed}: {} ≤ m/2",
                sol.value
            );
        }
    }

    #[test]
    fn sweep_never_loses_to_sign() {
        for seed in 0..4u64 {
            let g = gnp(30, 0.3, seed).unwrap();
            let sign = solve_trevisan(&g, &TrevisanConfig::default()).unwrap();
            let sweep = solve_trevisan(
                &g,
                &TrevisanConfig {
                    rounding: SpectralRounding::BestSweep,
                    ..TrevisanConfig::default()
                },
            )
            .unwrap();
            assert!(sweep.value >= sign.value, "seed={seed}");
        }
    }

    #[test]
    fn near_optimal_on_petersen() {
        let opt = brute_force(&petersen()).1; // 12
        let sol = solve_trevisan(
            &petersen(),
            &TrevisanConfig {
                rounding: SpectralRounding::BestSweep,
                ..TrevisanConfig::default()
            },
        )
        .unwrap();
        assert!(sol.value >= opt - 2, "got {}, opt {opt}", sol.value);
    }

    #[test]
    fn sweep_cut_handles_constant_scores() {
        let g = cycle(6);
        let cut = best_sweep_cut(&g, &[0.5; 6]);
        // All thresholds tried; best is at least... the best prefix cut.
        assert!(cut.cut_value(&g) >= 2);
    }

    #[test]
    fn empty_and_isolated() {
        let sol = solve_trevisan(&Graph::empty(0), &TrevisanConfig::default()).unwrap();
        assert_eq!(sol.value, 0);
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let sol = solve_trevisan(&g, &TrevisanConfig::default()).unwrap();
        assert_eq!(sol.value, 1);
    }
}
