//! Greedy and local-search baselines.
//!
//! Not part of the paper's comparison set, but standard classical
//! reference points: 1-opt local search guarantees a cut of at least `m/2`
//! and usually lands much higher. Also used as the warm start for the
//! branch-and-bound incumbent.

use snc_devices::Xoshiro256pp;
use snc_graph::{CutAssignment, Graph};

/// 1-opt local search from a random start: repeatedly flips any vertex
/// whose flip increases the cut, until no single flip improves.
///
/// The result is a local optimum with value ≥ m/2 (each vertex has at
/// least half its edges cut).
pub fn local_search(graph: &Graph, seed: u64) -> (CutAssignment, u64) {
    let mut rng = Xoshiro256pp::new(seed);
    let cut = CutAssignment::random(graph.n(), &mut rng);
    local_search_from(graph, cut)
}

/// 1-opt local search from a given starting assignment.
pub fn local_search_from(graph: &Graph, mut cut: CutAssignment) -> (CutAssignment, u64) {
    let n = graph.n();
    if n == 0 {
        return (cut, 0);
    }
    let mut improved = true;
    // Each pass is O(Σ deg); the loop terminates because the cut value is
    // integral, bounded by m, and strictly increases.
    while improved {
        improved = false;
        for v in 0..n {
            if cut.flip_delta(graph, v) > 0 {
                cut.flip(v);
                improved = true;
            }
        }
    }
    let value = cut.cut_value(graph);
    (cut, value)
}

/// Best of `restarts` independent local searches.
pub fn multistart_local_search(graph: &Graph, restarts: usize, seed: u64) -> (CutAssignment, u64) {
    let mut best: Option<(CutAssignment, u64)> = None;
    for r in 0..restarts.max(1) {
        let (cut, value) = local_search(graph, seed.wrapping_add(r as u64));
        if best.as_ref().is_none_or(|(_, bv)| value > *bv) {
            best = Some((cut, value));
        }
    }
    best.expect("at least one restart")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force;
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_graph::generators::structured::{complete_bipartite, cycle, petersen};

    #[test]
    fn local_optimum_beats_half() {
        for seed in 0..5u64 {
            let g = gnp(60, 0.2, seed).unwrap();
            let (cut, v) = local_search(&g, seed);
            assert_eq!(cut.cut_value(&g), v);
            assert!(v * 2 >= g.m() as u64, "seed={seed}: {v} < m/2");
            // 1-opt: no improving flip remains.
            for i in 0..g.n() {
                assert!(cut.flip_delta(&g, i) <= 0);
            }
        }
    }

    #[test]
    fn finds_bipartite_optimum() {
        // K_{a,b} local optima of 1-opt are global (known property).
        let g = complete_bipartite(6, 7);
        let (_, v) = multistart_local_search(&g, 5, 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn near_optimal_on_small_graphs() {
        for g in [petersen(), cycle(9)] {
            let opt = brute_force(&g).1;
            let (_, v) = multistart_local_search(&g, 20, 3);
            assert!(v >= opt - 1, "got {v}, opt {opt}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = snc_graph::Graph::empty(0);
        assert_eq!(local_search(&g, 1).1, 0);
    }
}
