//! Weighted MAXCUT: the full solver stack on weighted graphs.
//!
//! The paper's formulation (§II.A) is already weighted (`A_ij` is any
//! adjacency matrix), and two of its Table-I networks are weighted. This
//! module runs every solver on [`WeightedGraph`]s:
//!
//! * [`solve_gw_weighted`] — the GW SDP with weighted couplings; the
//!   factor matrix feeds the same [`GwSampler`](crate::GwSampler)/[`LifGwCircuit`](crate::LifGwCircuit)
//!   machinery unchanged (rounding only looks at the factors).
//! * [`solve_trevisan_weighted`] — minimum eigenvector of the *weighted*
//!   Trevisan matrix `I + D_w^{-1/2} A_w D_w^{-1/2}`.
//! * [`WeightedLifTrevisanCircuit`] — the LIF-TR circuit programmed with
//!   the weighted Trevisan matrix.
//! * [`brute_force_weighted`] — exact ground truth for small instances.
//! * [`sample_best_trace_weighted`] — best-so-far traces with `f64` cut
//!   values.

use crate::circuits::lif_trevisan::LifTrevisanConfig;
use crate::sampling::CutSampler;
use snc_graph::weighted::WeightedTrevisanOperator;
use snc_graph::{CutAssignment, WeightedCutTracker, WeightedGraph};
use snc_linalg::eigen::{extreme_eigenpair, Which};
use snc_linalg::{sdp, LinalgError, SdpConfig};
use snc_neuro::TwoStageNetwork;

/// Best-so-far weighted cut values at sample-count checkpoints.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedBestTrace {
    /// Sample counts (ascending).
    pub checkpoints: Vec<u64>,
    /// Best weighted cut within the first `checkpoints[k]` samples.
    pub best: Vec<f64>,
}

impl WeightedBestTrace {
    /// The final best value.
    pub fn final_best(&self) -> f64 {
        self.best.last().copied().unwrap_or(0.0)
    }
}

/// Draws samples and records the best weighted cut at each checkpoint.
///
/// Cut values are maintained incrementally with a [`WeightedCutTracker`]
/// (the weighted LIF-Trevisan circuit's consecutive samples differ in few
/// vertices, so diffs beat O(m) re-evaluation). The maintained `f64` can
/// differ from a scratch evaluation by accumulated rounding of order
/// `ε·Σ|w|` between the tracker's periodic resyncs; see
/// [`WeightedCutTracker::RESYNC_INTERVAL`].
///
/// # Panics
///
/// Panics if `checkpoints` is not strictly ascending.
pub fn sample_best_trace_weighted(
    sampler: &mut impl CutSampler,
    graph: &WeightedGraph,
    checkpoints: &[u64],
) -> WeightedBestTrace {
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly ascending"
    );
    let mut best = f64::NEG_INFINITY;
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut drawn = 0u64;
    let mut tracker: Option<WeightedCutTracker<'_>> = None;
    for &cp in checkpoints {
        while drawn < cp {
            let cut = sampler.next_cut();
            let value = crate::sampling::tracked_value_weighted(&mut tracker, graph, cut);
            best = best.max(value);
            drawn += 1;
        }
        out.push(if best.is_finite() { best } else { 0.0 });
    }
    WeightedBestTrace {
        checkpoints: checkpoints.to_vec(),
        best: out,
    }
}

/// Result of the weighted GW SDP.
#[derive(Clone, Debug)]
pub struct WeightedGwSolution {
    /// The `n × r` factor matrix.
    pub factors: snc_linalg::DMatrix,
    /// SDP upper bound on the weighted maximum cut.
    pub sdp_bound: f64,
}

/// Solves the weighted GW SDP.
///
/// # Errors
///
/// Propagates SDP solver errors.
pub fn solve_gw_weighted(
    graph: &WeightedGraph,
    cfg: &SdpConfig,
) -> Result<WeightedGwSolution, LinalgError> {
    let couplings: Vec<sdp::Coupling> = graph
        .edges()
        .map(|(i, j, w)| sdp::Coupling { i, j, w })
        .collect();
    let sol = sdp::solve_weighted_sdp(graph.n(), &couplings, cfg)?;
    let sdp_bound = sol.cut_upper_bound(graph.total_weight());
    Ok(WeightedGwSolution {
        factors: sol.factors,
        sdp_bound,
    })
}

/// Result of the weighted Trevisan spectral solver.
#[derive(Clone, Debug)]
pub struct WeightedTrevisanSolution {
    /// The minimum eigenvector of the weighted Trevisan matrix.
    pub eigenvector: Vec<f64>,
    /// Its eigenvalue.
    pub eigenvalue: f64,
    /// The sign-rounded cut and its weighted value.
    pub cut: CutAssignment,
    /// The weighted cut value.
    pub value: f64,
}

/// Runs the weighted Trevisan simple spectral algorithm.
///
/// # Errors
///
/// Returns an error for negative weights or eigensolver non-convergence.
pub fn solve_trevisan_weighted(
    graph: &WeightedGraph,
    eigen: &snc_linalg::eigen::EigenConfig,
) -> Result<WeightedTrevisanSolution, Box<dyn std::error::Error>> {
    let op = WeightedTrevisanOperator::new(graph)?;
    let pair = extreme_eigenpair(&op, Which::Smallest, eigen)?;
    let cut = CutAssignment::from_signs(&pair.vector);
    let value = graph.cut_value(&cut);
    Ok(WeightedTrevisanSolution {
        eigenvector: pair.vector,
        eigenvalue: pair.value,
        cut,
        value,
    })
}

/// The LIF-Trevisan circuit on a weighted graph: identical dynamics, with
/// the weighted Trevisan matrix as the synaptic program.
#[derive(Clone, Debug)]
pub struct WeightedLifTrevisanCircuit {
    net: TwoStageNetwork,
    updates_per_sample: u64,
}

impl WeightedLifTrevisanCircuit {
    /// Builds the circuit.
    ///
    /// # Panics
    ///
    /// Panics if the graph has negative weights.
    pub fn new(graph: &WeightedGraph, seed: u64, cfg: &LifTrevisanConfig) -> Self {
        let net = TwoStageNetwork::new_weighted(graph, seed, cfg.network);
        Self {
            net,
            updates_per_sample: cfg.updates_per_sample.max(1),
        }
    }

    /// The current plastic weight vector.
    pub fn readout_weights(&self) -> &[f64] {
        self.net.readout_weights()
    }
}

impl CutSampler for WeightedLifTrevisanCircuit {
    fn next_cut(&mut self) -> CutAssignment {
        self.net.run_updates(self.updates_per_sample);
        CutAssignment::from_signs(self.net.readout_weights())
    }
}

/// Exact weighted maximum cut by enumeration (`n ≤ 26`).
///
/// # Panics
///
/// Panics for more than 26 vertices.
pub fn brute_force_weighted(graph: &WeightedGraph) -> (CutAssignment, f64) {
    let n = graph.n();
    assert!(n <= 26, "weighted brute force limited to n <= 26");
    if n == 0 {
        return (CutAssignment::all_ones(0), 0.0);
    }
    let mut best_value = f64::NEG_INFINITY;
    let mut best_mask = 0u32;
    for mask in 0u32..(1u32 << (n - 1)) {
        let mut value = 0.0;
        for (u, v, w) in graph.edges() {
            let su = (mask >> u) & 1;
            let sv = (mask >> v) & 1;
            if su != sv {
                value += w;
            }
        }
        if value > best_value {
            best_value = value;
            best_mask = mask;
        }
    }
    let sides: Vec<i8> = (0..n)
        .map(|i| if (best_mask >> i) & 1 == 1 { 1 } else { -1 })
        .collect();
    (CutAssignment::from_sides(sides), best_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gw::GwSampler;
    use crate::sampling::log2_checkpoints;
    use snc_graph::generators::structured::{complete_bipartite, cycle};
    use snc_graph::weighted::{randomize_weights, WeightDistribution};

    fn weighted_fixture(seed: u64) -> WeightedGraph {
        let base = snc_graph::generators::erdos_renyi::gnp(12, 0.5, seed).unwrap();
        randomize_weights(&base, WeightDistribution::Uniform { lo: 0.5, hi: 3.0 }, seed).unwrap()
    }

    #[test]
    fn brute_force_known_values() {
        // Triangle with weights 2, 3, 0.5: best cut separates vertex 1
        // (cuts 2 + 3 = 5).
        let g =
            WeightedGraph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 3.0), (0, 2, 0.5)])
                .unwrap();
        let (cut, v) = brute_force_weighted(&g);
        assert!((v - 5.0).abs() < 1e-12);
        assert!((g.cut_value(&cut) - v).abs() < 1e-12);
    }

    #[test]
    fn negative_weights_prefer_keeping_edges() {
        // One positive, one strongly negative edge: the optimum cuts the
        // positive edge only.
        let g = WeightedGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, -5.0)]).unwrap();
        let (cut, v) = brute_force_weighted(&g);
        assert!((v - 1.0).abs() < 1e-12);
        assert_eq!(cut.side(1), cut.side(2)); // negative edge uncut
    }

    #[test]
    fn weighted_gw_meets_guarantee() {
        for seed in 0..3u64 {
            let g = weighted_fixture(seed);
            let (_, opt) = brute_force_weighted(&g);
            let sol = solve_gw_weighted(&g, &SdpConfig::default()).unwrap();
            assert!(sol.sdp_bound + 1e-6 >= opt, "bound {} < {opt}", sol.sdp_bound);
            let mut sampler = GwSampler::new(sol.factors, seed);
            let trace = sample_best_trace_weighted(&mut sampler, &g, &log2_checkpoints(64));
            assert!(
                trace.final_best() >= 0.878 * opt,
                "seed {seed}: {} < 0.878·{opt}",
                trace.final_best()
            );
        }
    }

    #[test]
    fn weighted_trevisan_solves_bipartite() {
        let base = complete_bipartite(4, 4);
        let g = randomize_weights(&base, WeightDistribution::Uniform { lo: 1.0, hi: 2.0 }, 7)
            .unwrap();
        let sol =
            solve_trevisan_weighted(&g, &snc_linalg::eigen::EigenConfig::default()).unwrap();
        assert!(sol.eigenvalue.abs() < 1e-6);
        assert!((sol.value - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn weighted_matches_unweighted_on_unit_weights() {
        let base = cycle(9);
        let g = WeightedGraph::from_graph(&base);
        let sol_w = solve_trevisan_weighted(&g, &snc_linalg::eigen::EigenConfig::default())
            .unwrap();
        let sol_u =
            crate::trevisan::solve_trevisan(&base, &crate::trevisan::TrevisanConfig::default())
                .unwrap();
        assert!((sol_w.eigenvalue - sol_u.eigenvalue).abs() < 1e-6);
        assert_eq!(sol_w.value as u64, sol_u.value);
    }

    #[test]
    fn weighted_lif_tr_learns_bipartite() {
        let base = complete_bipartite(3, 3);
        let g = randomize_weights(&base, WeightDistribution::Uniform { lo: 0.5, hi: 1.5 }, 5)
            .unwrap();
        let mut circuit = WeightedLifTrevisanCircuit::new(&g, 3, &LifTrevisanConfig::default());
        let trace = sample_best_trace_weighted(&mut circuit, &g, &log2_checkpoints(20_000));
        assert!(
            (trace.final_best() - g.total_weight()).abs() < 1e-9,
            "reached {} of {}",
            trace.final_best(),
            g.total_weight()
        );
    }

    #[test]
    fn trace_is_monotone() {
        let g = weighted_fixture(9);
        let sol = solve_gw_weighted(&g, &SdpConfig::default()).unwrap();
        let mut sampler = GwSampler::new(sol.factors, 1);
        let trace = sample_best_trace_weighted(&mut sampler, &g, &log2_checkpoints(32));
        assert!(trace.best.windows(2).all(|w| w[0] <= w[1]));
    }
}
