//! MAX2SAT via the Goemans–Williamson SDP (§VI extension).
//!
//! For a clause `(l_i ∨ l_j)` with literal signs `a, b ∈ {±1}` (positive
//! literal = +1), the satisfaction indicator over `x ∈ {±1}`
//! (`x = +1` ⇔ true) is
//!
//! ```text
//! 1 − (1 − a·x_i)(1 − b·x_j)/4 = (3 + a·x_i + b·x_j − ab·x_i x_j)/4
//! ```
//!
//! Relaxing `x_i → ⟨v₀, v_i⟩` and `x_i x_j → ⟨v_i, v_j⟩` yields a linear
//! function of inner products — the GW MAX2SAT SDP with approximation
//! ratio 0.878. Rounding: draw a random Gaussian, threshold, and set
//! `x_i = sign_i · sign_0`.

use snc_devices::{Rng64, Xoshiro256pp};
use snc_linalg::{sdp, GaussianSampler, LinalgError, SdpConfig};

/// A literal: variable index plus polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Literal {
    /// Variable index (0-based).
    pub var: u32,
    /// Whether the literal is negated.
    pub negated: bool,
}

impl Literal {
    /// A positive literal.
    pub fn pos(var: u32) -> Self {
        Self { var, negated: false }
    }

    /// A negative literal.
    pub fn neg(var: u32) -> Self {
        Self { var, negated: true }
    }

    /// The ±1 polarity sign.
    fn sign(&self) -> f64 {
        if self.negated {
            -1.0
        } else {
            1.0
        }
    }

    /// Evaluates under a boolean assignment.
    fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var as usize] != self.negated
    }
}

/// A 1- or 2-literal clause with a non-negative weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Clause {
    /// First literal.
    pub a: Literal,
    /// Optional second literal (absent = unit clause).
    pub b: Option<Literal>,
    /// Clause weight.
    pub weight: f64,
}

/// A MAX2SAT instance.
#[derive(Clone, Debug, Default)]
pub struct Max2Sat {
    /// Number of boolean variables.
    pub n_vars: usize,
    /// The clause list.
    pub clauses: Vec<Clause>,
}

impl Max2Sat {
    /// Total satisfied weight under an assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from `n_vars`.
    pub fn value(&self, assignment: &[bool]) -> f64 {
        assert_eq!(assignment.len(), self.n_vars);
        self.clauses
            .iter()
            .filter(|c| c.a.eval(assignment) || c.b.is_some_and(|b| b.eval(assignment)))
            .map(|c| c.weight)
            .sum()
    }

    /// Total clause weight (the trivial upper bound).
    pub fn total_weight(&self) -> f64 {
        self.clauses.iter().map(|c| c.weight).sum()
    }

    /// Exact optimum by enumeration (for `n_vars ≤ 24`).
    ///
    /// # Panics
    ///
    /// Panics for more than 24 variables.
    pub fn brute_force(&self) -> (Vec<bool>, f64) {
        assert!(self.n_vars <= 24, "brute force limited to 24 variables");
        let mut best = (vec![false; self.n_vars], f64::NEG_INFINITY);
        for mask in 0u32..(1u32 << self.n_vars) {
            let assignment: Vec<bool> = (0..self.n_vars).map(|i| (mask >> i) & 1 == 1).collect();
            let v = self.value(&assignment);
            if v > best.1 {
                best = (assignment, v);
            }
        }
        best
    }

    /// A random instance with unit weights: each clause picks two distinct
    /// variables and random polarities.
    pub fn random(n_vars: usize, n_clauses: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::new(seed);
        let clauses = (0..n_clauses)
            .map(|_| {
                let i = rng.next_index(n_vars) as u32;
                let mut j = rng.next_index(n_vars) as u32;
                while j == i && n_vars > 1 {
                    j = rng.next_index(n_vars) as u32;
                }
                Clause {
                    a: Literal { var: i, negated: rng.next_bool(0.5) },
                    b: Some(Literal { var: j, negated: rng.next_bool(0.5) }),
                    weight: 1.0,
                }
            })
            .collect();
        Self { n_vars, clauses }
    }
}

/// Result of the GW MAX2SAT pipeline.
#[derive(Clone, Debug)]
pub struct Max2SatSolution {
    /// The best assignment found.
    pub assignment: Vec<bool>,
    /// Its satisfied weight.
    pub value: f64,
    /// The SDP upper bound on the optimum.
    pub sdp_bound: f64,
}

/// Solves MAX2SAT by the GW SDP + Gaussian rounding, keeping the best of
/// `samples` rounded assignments.
///
/// # Errors
///
/// Propagates SDP solver errors.
pub fn solve_gw_max2sat(
    inst: &Max2Sat,
    cfg: &SdpConfig,
    samples: usize,
    seed: u64,
) -> Result<Max2SatSolution, LinalgError> {
    let n = inst.n_vars;
    let v0 = n as u32; // the truth-direction vector
    let mut couplings: Vec<sdp::Coupling> = Vec::with_capacity(3 * inst.clauses.len());
    // Constant part of the objective, accumulated so the SDP energy can be
    // mapped back to a satisfied-weight bound.
    let mut constant = 0.0;
    for c in &inst.clauses {
        let w = c.weight;
        let a = c.a.sign();
        match c.b {
            Some(b) => {
                let bs = b.sign();
                // (3 + a·x_i + b·x_j − ab·x_i x_j)/4, maximize ⇒ minimize
                // −(w a/4)⟨v0,vi⟩ − (w b/4)⟨v0,vj⟩ + (w ab/4)⟨vi,vj⟩.
                constant += 3.0 * w / 4.0;
                couplings.push(sdp::Coupling { i: v0, j: c.a.var, w: -w * a / 4.0 });
                couplings.push(sdp::Coupling { i: v0, j: b.var, w: -w * bs / 4.0 });
                if c.a.var != b.var {
                    couplings.push(sdp::Coupling { i: c.a.var, j: b.var, w: w * a * bs / 4.0 });
                } else {
                    // Same variable twice: x_i x_i = 1 folds into the constant.
                    constant -= w * a * bs / 4.0;
                }
            }
            None => {
                // (1 + a·x_i)/2 ⇒ minimize −(w a/2)⟨v0,vi⟩.
                constant += w / 2.0;
                couplings.push(sdp::Coupling { i: v0, j: c.a.var, w: -w * a / 2.0 });
            }
        }
    }
    let sol = sdp::solve_weighted_sdp(n + 1, &couplings, cfg)?;
    let sdp_bound = constant - sol.energy;

    // Rounding.
    let mut gauss = GaussianSampler::new(seed);
    let mut g = vec![0.0; sol.factors.cols()];
    let mut x = vec![0.0; n + 1];
    let mut best: Option<(Vec<bool>, f64)> = None;
    for _ in 0..samples.max(1) {
        gauss.fill(&mut g);
        sol.factors.matvec_into(&g, &mut x);
        let truth_side = x[n] > 0.0;
        let assignment: Vec<bool> = (0..n).map(|i| (x[i] > 0.0) == truth_side).collect();
        let value = inst.value(&assignment);
        if best.as_ref().is_none_or(|(_, bv)| value > *bv) {
            best = Some((assignment, value));
        }
    }
    let (assignment, value) = best.expect("at least one sample");
    Ok(Max2SatSolution {
        assignment,
        value,
        sdp_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SdpConfig {
        SdpConfig {
            rank: 4,
            max_iters: 3000,
            grad_tol: 1e-8,
            restarts: 2,
            seed: 5,
        }
    }

    #[test]
    fn clause_evaluation() {
        let inst = Max2Sat {
            n_vars: 2,
            clauses: vec![
                Clause { a: Literal::pos(0), b: Some(Literal::neg(1)), weight: 1.0 },
                Clause { a: Literal::neg(0), b: None, weight: 2.0 },
            ],
        };
        assert_eq!(inst.value(&[true, true]), 1.0); // clause 1 only
        assert_eq!(inst.value(&[false, false]), 3.0); // both
        assert_eq!(inst.total_weight(), 3.0);
    }

    #[test]
    fn brute_force_satisfiable_instance() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (x0 ∨ ¬x1): satisfied by (T, T).
        let inst = Max2Sat {
            n_vars: 2,
            clauses: vec![
                Clause { a: Literal::pos(0), b: Some(Literal::pos(1)), weight: 1.0 },
                Clause { a: Literal::neg(0), b: Some(Literal::pos(1)), weight: 1.0 },
                Clause { a: Literal::pos(0), b: Some(Literal::neg(1)), weight: 1.0 },
            ],
        };
        let (assignment, v) = inst.brute_force();
        assert_eq!(v, 3.0);
        assert_eq!(assignment, vec![true, true]);
    }

    #[test]
    fn sdp_matches_optimum_on_satisfiable() {
        let inst = Max2Sat {
            n_vars: 3,
            clauses: vec![
                Clause { a: Literal::pos(0), b: Some(Literal::neg(1)), weight: 1.0 },
                Clause { a: Literal::pos(1), b: Some(Literal::pos(2)), weight: 1.0 },
                Clause { a: Literal::neg(2), b: None, weight: 1.0 },
            ],
        };
        let sol = solve_gw_max2sat(&inst, &cfg(), 32, 1).unwrap();
        let (_, opt) = inst.brute_force();
        assert_eq!(sol.value, opt, "value {} opt {opt}", sol.value);
        assert!(sol.sdp_bound + 1e-6 >= opt);
    }

    #[test]
    fn achieves_878_ratio_on_random_instances() {
        for seed in 0..3u64 {
            let inst = Max2Sat::random(10, 30, seed);
            let (_, opt) = inst.brute_force();
            let sol = solve_gw_max2sat(&inst, &cfg(), 64, seed).unwrap();
            let ratio = sol.value / opt;
            assert!(ratio >= 0.878, "seed={seed}: ratio {ratio}");
            assert!(sol.sdp_bound + 1e-6 >= opt, "bound {} < {opt}", sol.sdp_bound);
        }
    }

    #[test]
    fn unit_clauses_force_assignment() {
        let inst = Max2Sat {
            n_vars: 2,
            clauses: vec![
                Clause { a: Literal::pos(0), b: None, weight: 5.0 },
                Clause { a: Literal::neg(1), b: None, weight: 5.0 },
            ],
        };
        let sol = solve_gw_max2sat(&inst, &cfg(), 16, 3).unwrap();
        assert_eq!(sol.assignment, vec![true, false]);
        assert_eq!(sol.value, 10.0);
    }

    #[test]
    fn duplicate_variable_clause_is_handled() {
        // (x0 ∨ x0) behaves like the unit clause x0.
        let inst = Max2Sat {
            n_vars: 1,
            clauses: vec![Clause {
                a: Literal::pos(0),
                b: Some(Literal::pos(0)),
                weight: 1.0,
            }],
        };
        let sol = solve_gw_max2sat(&inst, &cfg(), 8, 4).unwrap();
        assert_eq!(sol.value, 1.0);
        assert_eq!(sol.assignment, vec![true]);
    }
}
