//! MAXDICUT via the Goemans–Williamson SDP (§VI extension).
//!
//! Given a directed graph, find `S ⊆ V` maximizing the number of arcs from
//! `S` to `V∖S`. Over `x ∈ {±1}` (`x = +1` ⇔ in `S`) the arc indicator is
//!
//! ```text
//! (1 + x_i)(1 − x_j)/4 = (1 + x_i − x_j − x_i x_j)/4
//! ```
//!
//! which relaxes (with the truth vector `v₀`) to the 0.796-approximation
//! SDP of Goemans–Williamson. Rounding is identical to MAX2SAT.

use snc_devices::{Rng64, Xoshiro256pp};
use snc_linalg::{sdp, GaussianSampler, LinalgError, SdpConfig};

/// A simple directed graph as an arc list.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    /// Number of vertices.
    pub n: usize,
    /// Arcs `(tail, head)`.
    pub arcs: Vec<(u32, u32)>,
}

impl DiGraph {
    /// Builds a digraph, dropping self-loops.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn new(n: usize, arcs: &[(u32, u32)]) -> Self {
        let arcs: Vec<(u32, u32)> = arcs
            .iter()
            .copied()
            .inspect(|&(u, v)| {
                assert!((u as usize) < n && (v as usize) < n, "arc out of range");
            })
            .filter(|&(u, v)| u != v)
            .collect();
        Self { n, arcs }
    }

    /// A random digraph with `m` arcs (duplicates possible, as in random
    /// multigraph models; self-loops excluded).
    pub fn random(n: usize, m: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::new(seed);
        let mut arcs = Vec::with_capacity(m);
        while arcs.len() < m {
            let u = rng.next_index(n) as u32;
            let v = rng.next_index(n) as u32;
            if u != v {
                arcs.push((u, v));
            }
        }
        Self { n, arcs }
    }

    /// The directed cut value of a membership vector (`true` = in `S`).
    ///
    /// # Panics
    ///
    /// Panics if the membership length differs from `n`.
    pub fn dicut_value(&self, in_s: &[bool]) -> u64 {
        assert_eq!(in_s.len(), self.n);
        self.arcs
            .iter()
            .filter(|&&(u, v)| in_s[u as usize] && !in_s[v as usize])
            .count() as u64
    }

    /// Exact optimum by enumeration (`n ≤ 24`).
    ///
    /// # Panics
    ///
    /// Panics for more than 24 vertices.
    pub fn brute_force(&self) -> (Vec<bool>, u64) {
        assert!(self.n <= 24, "brute force limited to 24 vertices");
        let mut best = (vec![false; self.n], 0u64);
        for mask in 0u32..(1u32 << self.n) {
            let in_s: Vec<bool> = (0..self.n).map(|i| (mask >> i) & 1 == 1).collect();
            let v = self.dicut_value(&in_s);
            if v > best.1 {
                best = (in_s, v);
            }
        }
        best
    }
}

/// Result of the GW MAXDICUT pipeline.
#[derive(Clone, Debug)]
pub struct MaxDicutSolution {
    /// Membership vector of the best `S` found.
    pub in_s: Vec<bool>,
    /// Its directed cut value.
    pub value: u64,
    /// SDP upper bound on the optimum.
    pub sdp_bound: f64,
}

/// Solves MAXDICUT by the GW SDP + Gaussian rounding with `samples`
/// rounding draws.
///
/// # Errors
///
/// Propagates SDP solver errors.
pub fn solve_gw_maxdicut(
    g: &DiGraph,
    cfg: &SdpConfig,
    samples: usize,
    seed: u64,
) -> Result<MaxDicutSolution, LinalgError> {
    let n = g.n;
    let v0 = n as u32;
    let mut couplings: Vec<sdp::Coupling> = Vec::with_capacity(3 * g.arcs.len());
    let mut constant = 0.0;
    for &(i, j) in &g.arcs {
        // (1 + x_i − x_j − x_i x_j)/4: maximize ⇒ minimize
        // −(1/4)⟨v0,vi⟩ + (1/4)⟨v0,vj⟩ + (1/4)⟨vi,vj⟩.
        constant += 0.25;
        couplings.push(sdp::Coupling { i: v0, j: i, w: -0.25 });
        couplings.push(sdp::Coupling { i: v0, j, w: 0.25 });
        couplings.push(sdp::Coupling { i, j, w: 0.25 });
    }
    let sol = sdp::solve_weighted_sdp(n + 1, &couplings, cfg)?;
    let sdp_bound = constant - sol.energy;

    let mut gauss = GaussianSampler::new(seed);
    let mut gbuf = vec![0.0; sol.factors.cols()];
    let mut x = vec![0.0; n + 1];
    let mut best: Option<(Vec<bool>, u64)> = None;
    for _ in 0..samples.max(1) {
        gauss.fill(&mut gbuf);
        sol.factors.matvec_into(&gbuf, &mut x);
        let truth_side = x[n] > 0.0;
        let in_s: Vec<bool> = (0..n).map(|i| (x[i] > 0.0) == truth_side).collect();
        let value = g.dicut_value(&in_s);
        if best.as_ref().is_none_or(|(_, bv)| value > *bv) {
            best = Some((in_s, value));
        }
    }
    let (in_s, value) = best.expect("at least one sample");
    Ok(MaxDicutSolution {
        in_s,
        value,
        sdp_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SdpConfig {
        SdpConfig {
            rank: 4,
            max_iters: 3000,
            grad_tol: 1e-8,
            restarts: 2,
            seed: 9,
        }
    }

    #[test]
    fn dicut_value_semantics() {
        // Arcs 0→1, 1→0: S = {0} cuts exactly one.
        let g = DiGraph::new(2, &[(0, 1), (1, 0)]);
        assert_eq!(g.dicut_value(&[true, false]), 1);
        assert_eq!(g.dicut_value(&[false, true]), 1);
        assert_eq!(g.dicut_value(&[true, true]), 0);
        assert_eq!(g.dicut_value(&[false, false]), 0);
    }

    #[test]
    fn brute_force_star() {
        // All arcs out of vertex 0: S = {0} cuts all of them.
        let g = DiGraph::new(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let (in_s, v) = g.brute_force();
        assert_eq!(v, 4);
        assert!(in_s[0]);
        assert!(!in_s[1] && !in_s[2] && !in_s[3] && !in_s[4]);
    }

    #[test]
    fn self_loops_dropped() {
        let g = DiGraph::new(3, &[(0, 0), (0, 1)]);
        assert_eq!(g.arcs.len(), 1);
    }

    #[test]
    fn sdp_finds_star_optimum() {
        let g = DiGraph::new(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let sol = solve_gw_maxdicut(&g, &cfg(), 32, 1).unwrap();
        assert_eq!(sol.value, 4);
        assert!(sol.sdp_bound + 1e-6 >= 4.0);
    }

    #[test]
    fn achieves_796_ratio_on_random_instances() {
        for seed in 0..3u64 {
            let g = DiGraph::random(10, 25, seed);
            let (_, opt) = g.brute_force();
            if opt == 0 {
                continue;
            }
            let sol = solve_gw_maxdicut(&g, &cfg(), 64, seed).unwrap();
            let ratio = sol.value as f64 / opt as f64;
            assert!(ratio >= 0.796, "seed={seed}: ratio {ratio}");
            assert!(sol.sdp_bound + 1e-6 >= opt as f64);
        }
    }
}
