//! Constraint-satisfaction extensions (§VI).
//!
//! "MAXCUT is a special case of a larger class of problems known as
//! constraint satisfaction problems … using results due to Goemans and
//! Williamson, our LIF-GW circuit can implement sampling steps for
//! algorithms for MAXDICUT and MAX2SAT that yield approximation ratios of
//! 0.796 and 0.878, respectively."
//!
//! Both problems reduce to the same machinery as MAXCUT: a signed-coupling
//! SDP over `n + 1` unit vectors (the extra vector `v₀` is the "truth
//! direction"), solved by the Burer–Monteiro solver, rounded by the same
//! sign-of-correlated-Gaussian sampling the LIF-GW circuit performs in
//! hardware. A variable is true iff its Gaussian lands on the same side as
//! `v₀`'s.

pub mod max2sat;
pub mod maxdicut;
