//! Populations of LIF neurons stepped in lock-step.

use crate::lif::{LifParams, Reset};

/// A population of LIF neurons with shared membrane parameters,
/// per-neuron thresholds, and a spike readout.
#[derive(Clone, Debug)]
pub struct LifPopulation {
    params: LifParams,
    v: Vec<f64>,
    thresholds: Vec<f64>,
    reset: Reset,
    spiked: Vec<bool>,
    steps: u64,
}

impl LifPopulation {
    /// Creates `n` neurons at rest (V = 0) with thresholds at 0.
    pub fn new(n: usize, params: LifParams, reset: Reset) -> Self {
        Self {
            params,
            v: vec![0.0; n],
            thresholds: vec![0.0; n],
            reset,
            spiked: vec![false; n],
            steps: 0,
        }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The membrane parameters.
    pub fn params(&self) -> &LifParams {
        &self.params
    }

    /// Sets per-neuron spike thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the population size.
    pub fn set_thresholds(&mut self, thresholds: &[f64]) {
        assert_eq!(thresholds.len(), self.v.len());
        self.thresholds.copy_from_slice(thresholds);
    }

    /// Current thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Sets all membrane potentials (e.g. to start at the stationary mean).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the population size.
    pub fn set_potentials(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.v.len());
        self.v.copy_from_slice(v);
    }

    /// Current membrane potentials.
    pub fn potentials(&self) -> &[f64] {
        &self.v
    }

    /// Spike flags from the most recent step.
    pub fn spiked(&self) -> &[bool] {
        &self.spiked
    }

    /// Advances every membrane one step with the given input currents and
    /// applies the threshold/reset readout. Returns the spike flags.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len()` differs from the population size.
    pub fn step(&mut self, currents: &[f64]) -> &[bool] {
        assert_eq!(currents.len(), self.v.len(), "current vector length");
        let decay = self.params.decay();
        let gain = self.params.input_gain();
        for ((v, &i_in), (spk, &thr)) in self
            .v
            .iter_mut()
            .zip(currents)
            .zip(self.spiked.iter_mut().zip(self.thresholds.iter()))
        {
            *v = decay * *v + gain * i_in;
            *spk = *v > thr;
            if *spk {
                if let Reset::ToValue(rv) = self.reset {
                    *v = rv;
                }
            }
        }
        self.steps += 1;
        &self.spiked
    }

    /// Writes mean-centered potentials into `out`: `out[i] = V_i − means[i]`.
    ///
    /// This is the zero-mean plasticity signal of the LIF-TR circuit.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn centered_into(&self, means: &[f64], out: &mut [f64]) {
        assert_eq!(means.len(), self.v.len());
        assert_eq!(out.len(), self.v.len());
        for ((o, &v), &m) in out.iter_mut().zip(&self.v).zip(means) {
            *o = v - m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_drive_reaches_mean_and_spikes() {
        let mut pop = LifPopulation::new(2, LifParams::default(), Reset::None);
        pop.set_thresholds(&[0.5, 2.0]);
        let mut spikes0 = 0;
        let mut spikes1 = 0;
        for _ in 0..500 {
            let s = pop.step(&[1.0, 1.0]); // stationary V = R·I = 1.0
            spikes0 += s[0] as u32;
            spikes1 += s[1] as u32;
        }
        assert!(spikes0 > 400, "neuron below-mean threshold should spike");
        assert_eq!(spikes1, 0, "neuron above-mean threshold must stay silent");
        assert!((pop.potentials()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reset_to_value() {
        let mut pop = LifPopulation::new(1, LifParams::default(), Reset::ToValue(0.0));
        pop.set_thresholds(&[0.9]);
        for _ in 0..200 {
            pop.step(&[1.0]);
        }
        // With reset, V never stays above threshold after a spike step.
        let v = pop.potentials()[0];
        assert!(v <= 0.9 + 1e-12 || pop.spiked()[0]);
        // And spiking recurs (the membrane re-charges).
        let mut any_spike = false;
        for _ in 0..100 {
            any_spike |= pop.step(&[1.0])[0];
        }
        assert!(any_spike);
    }

    #[test]
    fn centered_subtracts_means() {
        let mut pop = LifPopulation::new(3, LifParams::default(), Reset::None);
        pop.set_potentials(&[1.0, 2.0, 3.0]);
        let mut out = vec![0.0; 3];
        pop.centered_into(&[0.5, 2.0, 4.0], &mut out);
        assert_eq!(out, vec![0.5, 0.0, -1.0]);
    }

    #[test]
    fn step_counts() {
        let mut pop = LifPopulation::new(1, LifParams::default(), Reset::None);
        assert_eq!(pop.steps(), 0);
        pop.step(&[0.0]);
        pop.step(&[0.0]);
        assert_eq!(pop.steps(), 2);
        assert_eq!(pop.len(), 1);
    }

    #[test]
    #[should_panic(expected = "current vector length")]
    fn wrong_current_length_panics() {
        let mut pop = LifPopulation::new(2, LifParams::default(), Reset::None);
        pop.step(&[1.0]);
    }
}
