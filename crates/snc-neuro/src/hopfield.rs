//! Continuous Hopfield–Tank relaxation dynamics.
//!
//! The deterministic counterpart of the stochastic device-driven
//! networks: `n` analog units with internal potentials `u_i`, outputs
//! `x_i = tanh(gain · u_i)`, coupled through a symmetric weight matrix
//! `W` and relaxed by forward-Euler integration of
//!
//! ```text
//! du_i/dt = −leak · u_i − Σ_j w_ij x_j
//! ```
//!
//! With anti-ferromagnetic couplings (`w_ij > 0` on graph edges) the
//! dynamics descend the Hopfield energy
//! `E = ½ Σ_ij w_ij x_i x_j + (leak/gain) Σ_i ∫₀^{x_i} atanh(s) ds`,
//! driving adjacent units to opposite signs — a sign-threshold readout
//! of the fixed point is a locally good MAXCUT partition (Hopfield &
//! Tank 1985; Cai et al. 2020 run the same descent on memristor
//! crossbars). No randomness enters after the seeded initial state, so
//! a trajectory is a pure function of `(couplings, params, seed)`.

use snc_devices::{Rng64, Xoshiro256pp};

/// Parameters of the continuous Hopfield–Tank dynamics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HopfieldParams {
    /// Forward-Euler step size.
    pub dt: f64,
    /// Activation steepness: `x = tanh(gain · u)`.
    pub gain: f64,
    /// Leak rate of the internal potential.
    pub leak: f64,
    /// Half-width of the uniform random initial potentials.
    pub init_scale: f64,
}

impl Default for HopfieldParams {
    fn default() -> Self {
        Self {
            dt: 0.1,
            gain: 2.0,
            leak: 1.0,
            init_scale: 0.1,
        }
    }
}

/// A continuous Hopfield network over a symmetric coupling list.
///
/// # Examples
///
/// ```
/// use snc_neuro::hopfield::{HopfieldNetwork, HopfieldParams};
///
/// // One anti-ferromagnetic pair: the two units relax to opposite signs.
/// let mut net = HopfieldNetwork::new(2, &[(0, 1, 1.0)], HopfieldParams::default(), 7);
/// net.step_many(200);
/// let x = net.activations();
/// assert!(x[0] * x[1] < 0.0, "units must split: {x:?}");
/// ```
#[derive(Clone, Debug)]
pub struct HopfieldNetwork {
    /// CSR offsets into `targets` / `weights`, one slice per unit.
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<f64>,
    params: HopfieldParams,
    u: Vec<f64>,
    x: Vec<f64>,
    /// Scratch for the synchronous update.
    du: Vec<f64>,
    steps: u64,
}

impl HopfieldNetwork {
    /// Builds the network from an undirected coupling list (each pair is
    /// applied in both directions) and seeds the initial potentials
    /// uniformly in `[−init_scale, init_scale]`.
    ///
    /// # Panics
    ///
    /// Panics if a coupling endpoint is out of range. Self-couplings are
    /// dropped (a unit does not drive itself).
    pub fn new(n: usize, couplings: &[(u32, u32, f64)], params: HopfieldParams, seed: u64) -> Self {
        let mut degree = vec![0usize; n];
        for &(i, j, _) in couplings {
            assert!(
                (i as usize) < n && (j as usize) < n,
                "coupling ({i},{j}) out of range for n={n}"
            );
            if i != j {
                degree[i as usize] += 1;
                degree[j as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut targets = vec![0u32; acc];
        let mut weights = vec![0.0f64; acc];
        for &(i, j, w) in couplings {
            if i == j {
                continue;
            }
            for (a, b) in [(i as usize, j), (j as usize, i)] {
                targets[cursor[a]] = b;
                weights[cursor[a]] = w;
                cursor[a] += 1;
            }
        }
        let mut rng = Xoshiro256pp::new(seed);
        let u: Vec<f64> = (0..n)
            .map(|_| (2.0 * rng.next_f64() - 1.0) * params.init_scale)
            .collect();
        let x: Vec<f64> = u.iter().map(|&ui| (params.gain * ui).tanh()).collect();
        Self {
            offsets,
            targets,
            weights,
            params,
            u,
            x,
            du: vec![0.0; n],
            steps: 0,
        }
    }

    /// Number of units.
    pub fn n(&self) -> usize {
        self.u.len()
    }

    /// Euler steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The unit outputs `x = tanh(gain · u)`.
    pub fn activations(&self) -> &[f64] {
        &self.x
    }

    /// The internal potentials `u`.
    pub fn potentials(&self) -> &[f64] {
        &self.u
    }

    /// One synchronous forward-Euler step: every `du_i` is computed from
    /// the *current* outputs before any potential moves.
    pub fn step(&mut self) {
        let p = self.params;
        for i in 0..self.u.len() {
            let mut drive = 0.0;
            for k in self.offsets[i]..self.offsets[i + 1] {
                drive += self.weights[k] * self.x[self.targets[k] as usize];
            }
            self.du[i] = p.dt * (-p.leak * self.u[i] - drive);
        }
        for i in 0..self.u.len() {
            self.u[i] += self.du[i];
            self.x[i] = (p.gain * self.u[i]).tanh();
        }
        self.steps += 1;
    }

    /// Advances `k` steps.
    pub fn step_many(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }

    /// The Hopfield energy
    /// `½ Σ_ij w_ij x_i x_j + (leak/gain) Σ_i ∫₀^{x_i} atanh(s) ds`,
    /// the Lyapunov function the continuous dynamics descend (for
    /// sufficiently small `dt`).
    pub fn energy(&self) -> f64 {
        let mut coupling = 0.0;
        for i in 0..self.u.len() {
            for k in self.offsets[i]..self.offsets[i + 1] {
                coupling += self.weights[k] * self.x[i] * self.x[self.targets[k] as usize];
            }
        }
        let mut barrier = 0.0;
        for &xi in &self.x {
            // ∫₀^x atanh(s) ds = x·atanh(x) + ½·ln(1 − x²).
            let c = xi.clamp(-1.0 + 1e-15, 1.0 - 1e-15);
            barrier += c * c.atanh() + 0.5 * (1.0 - c * c).ln();
        }
        0.5 * coupling + (self.params.leak / self.params.gain) * barrier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Vec<(u32, u32, f64)> {
        vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = HopfieldNetwork::new(3, &triangle(), HopfieldParams::default(), 11);
        let mut b = HopfieldNetwork::new(3, &triangle(), HopfieldParams::default(), 11);
        a.step_many(50);
        b.step_many(50);
        assert_eq!(a.potentials(), b.potentials());
        assert_eq!(a.activations(), b.activations());
        let mut c = HopfieldNetwork::new(3, &triangle(), HopfieldParams::default(), 12);
        c.step_many(50);
        assert_ne!(a.potentials(), c.potentials(), "seed must matter");
    }

    #[test]
    fn initial_potentials_bounded_by_init_scale() {
        let params = HopfieldParams {
            init_scale: 0.25,
            ..HopfieldParams::default()
        };
        let net = HopfieldNetwork::new(64, &[], params, 3);
        assert!(net.potentials().iter().all(|u| u.abs() <= 0.25));
        assert!(net.potentials().iter().any(|u| u.abs() > 0.0));
        assert_eq!(net.steps(), 0);
    }

    #[test]
    fn antiferromagnetic_pair_relaxes_to_opposite_signs() {
        let mut net = HopfieldNetwork::new(2, &[(0, 1, 1.0)], HopfieldParams::default(), 5);
        net.step_many(300);
        let x = net.activations();
        assert!(x[0] * x[1] < -0.5, "strongly split: {x:?}");
    }

    #[test]
    fn update_is_synchronous() {
        // Hand-computed single step on the pair: du_i uses the *old* x_j.
        let params = HopfieldParams {
            dt: 0.5,
            gain: 1.0,
            leak: 1.0,
            init_scale: 0.1,
        };
        let mut net = HopfieldNetwork::new(2, &[(0, 1, 1.0)], params, 9);
        let u0 = net.potentials().to_vec();
        let x0 = net.activations().to_vec();
        net.step();
        for i in 0..2 {
            let expected = u0[i] + 0.5 * (-u0[i] - x0[1 - i]);
            assert!(
                (net.potentials()[i] - expected).abs() < 1e-15,
                "unit {i}: {} vs {expected}",
                net.potentials()[i]
            );
        }
    }

    #[test]
    fn energy_descends_under_small_steps() {
        let params = HopfieldParams {
            dt: 0.01,
            ..HopfieldParams::default()
        };
        let mut net = HopfieldNetwork::new(3, &triangle(), params, 21);
        let mut prev = net.energy();
        for step in 0..500 {
            net.step();
            let e = net.energy();
            assert!(e <= prev + 1e-9, "step {step}: energy rose {prev} → {e}");
            prev = e;
        }
    }

    #[test]
    fn self_couplings_are_dropped_and_bad_endpoints_panic() {
        let net = HopfieldNetwork::new(2, &[(0, 0, 5.0), (0, 1, 1.0)], HopfieldParams::default(), 1);
        assert_eq!(net.n(), 2);
        // Only the (0,1) pair survives: two CSR entries.
        assert_eq!(net.targets.len(), 2);
        let bad = std::panic::catch_unwind(|| {
            HopfieldNetwork::new(2, &[(0, 7, 1.0)], HopfieldParams::default(), 1)
        });
        assert!(bad.is_err(), "out-of-range coupling must panic");
    }
}
