//! Neuromorphic substrate: leaky integrate-and-fire neurons, synaptic
//! weights, plasticity, and device-driven network assemblies.
//!
//! This crate implements §III of the paper ("Neuromorphic Concepts"):
//!
//! * [`lif`] — the LIF neuron `C dV/dt = −V/R + I_tot`, discretized with
//!   either the exact exponential-Euler update or forward Euler.
//! * [`population`] — vectors of LIF neurons stepped in lock-step with
//!   threshold ("spike") readout and optional reset.
//! * [`synapse`] — device→neuron weight matrices in dense column-major and
//!   sparse CSC forms, with the `accumulate_active` kernel that turns a
//!   binary device state vector into synaptic currents (the hot loop of
//!   every circuit).
//! * [`theory`] — closed-form stationary means and covariances of LIF
//!   membranes driven by Bernoulli devices (§III.C: "the LIF membrane
//!   covariances are a linear transformation of the covariances of the
//!   random device pool"), used for threshold placement and verified
//!   empirically in tests.
//! * [`plasticity`] — Hebbian, Oja (principal component), and Oja
//!   anti-Hebbian (minor component) rules; the last one drives the
//!   LIF-Trevisan circuit (§III.D). Every rule also has a structure-of-
//!   arrays multi-replica pass (`update_replicas`) that updates R plastic
//!   vectors per traversal, bit-for-bit equal to the scalar updates.
//! * [`network`] — [`DeviceDrivenNetwork`] (pool → weights → LIF
//!   population, the shared circuit motif of Figs. 1–2),
//!   [`TwoStageNetwork`] (the LIF-TR topology with a plastic readout
//!   neuron), and [`BatchedTwoStageNetwork`] (R lock-stepped LIF-TR
//!   replicas sharing each weight-matrix traversal).
//! * [`hopfield`] — deterministic continuous Hopfield–Tank relaxation
//!   (`du = −leak·u − W·tanh(gain·u)`), the classical analog-descent
//!   counterpart the annealed/Hopfield circuit families build on.
//! * [`parallel`] — replica execution across threads with deterministic
//!   per-replica seeds, and the [`ReplicaBatch`] structure-of-arrays
//!   stepper the batched circuits build on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hopfield;
pub mod lif;
pub mod network;
pub mod parallel;
pub mod plasticity;
pub mod population;
pub mod spike;
pub mod synapse;
pub mod theory;

pub use hopfield::{HopfieldNetwork, HopfieldParams};
pub use lif::{Integrator, LifParams, Reset};
pub use network::{
    BatchedTwoStageNetwork, DeviceDrivenNetwork, PlasticitySignal, TwoStageConfig, TwoStageNetwork,
};
pub use parallel::ReplicaBatch;
pub use plasticity::{Hebbian, LearningRate, OjaMinor, OjaPrincipal, PlasticityRule};
pub use population::LifPopulation;
pub use synapse::{BatchWeights, CscWeights, DenseWeights, InputWeights};
