//! The leaky integrate-and-fire neuron model.
//!
//! Between spikes the membrane obeys `C dV/dt = −V/R + I_tot` (§III.B).
//! Discretization over a step `Δt`:
//!
//! * **Exponential Euler** (exact for piecewise-constant input):
//!   `V ← λV + (1−λ)·R·I` with `λ = exp(−Δt/τ)`, `τ = RC`.
//! * **Forward Euler**: `V ← (1 − Δt/τ)·V + (Δt/C)·I`.
//!
//! Both preserve the paper's stationary mean `⟨V⟩ = R⟨I⟩`; their stationary
//! covariances differ only in a scalar prefactor computed exactly in
//! [`crate::theory`].

/// Time-discretization scheme for the membrane ODE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Integrator {
    /// `V ← e^{−Δt/τ} V + (1 − e^{−Δt/τ}) R I` — exact decay.
    ExponentialEuler,
    /// `V ← (1 − Δt/τ) V + (Δt/C) I` — first-order explicit.
    ForwardEuler,
}

/// What happens to the membrane after a spike.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Reset {
    /// No reset: the threshold acts as a pure statistical readout. This is
    /// the default for the LIF-GW sampling circuit, where thresholding the
    /// stationary Gaussian membrane *is* the Bertsimas–Ye sign rounding.
    None,
    /// Classic LIF: the membrane jumps to the given value after a spike.
    ToValue(f64),
}

/// Membrane parameters shared by a population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LifParams {
    /// Leak resistance `R` (Ω).
    pub r: f64,
    /// Membrane capacitance `C` (F).
    pub c: f64,
    /// Simulation time step `Δt` (s).
    pub dt: f64,
    /// Discretization scheme.
    pub integrator: Integrator,
}

impl Default for LifParams {
    fn default() -> Self {
        // τ = 1 with Δt = τ/10: resolves the membrane dynamics while
        // keeping the decorrelation horizon (≈ 5τ = 50 steps) short.
        Self {
            r: 1.0,
            c: 1.0,
            dt: 0.1,
            integrator: Integrator::ExponentialEuler,
        }
    }
}

impl LifParams {
    /// The membrane time constant `τ = RC`.
    pub fn tau(&self) -> f64 {
        self.r * self.c
    }

    /// The per-step decay multiplier on `V` (λ for exponential Euler,
    /// `1 − Δt/τ` for forward Euler).
    pub fn decay(&self) -> f64 {
        match self.integrator {
            Integrator::ExponentialEuler => (-self.dt / self.tau()).exp(),
            Integrator::ForwardEuler => 1.0 - self.dt / self.tau(),
        }
    }

    /// The per-step multiplier on the input current `I`.
    pub fn input_gain(&self) -> f64 {
        match self.integrator {
            Integrator::ExponentialEuler => (1.0 - self.decay()) * self.r,
            Integrator::ForwardEuler => self.dt / self.c,
        }
    }

    /// Number of steps after which membrane autocorrelation drops below
    /// `e^{-5}` — a safe spacing for approximately independent samples.
    pub fn decorrelation_steps(&self) -> u64 {
        let d = self.decay().abs().max(1e-12);
        if d >= 1.0 {
            return 1;
        }
        // Small epsilon guards against ceil(50.0 + 1e-15) = 51 artifacts.
        (((-5.0 / d.ln()) - 1e-9).ceil() as u64).max(1)
    }

    /// Whether the discretization is stable (`|decay| < 1`).
    pub fn is_stable(&self) -> bool {
        self.decay().abs() < 1.0 && self.dt > 0.0 && self.r > 0.0 && self.c > 0.0
    }

    /// One membrane update for a single neuron.
    #[inline]
    pub fn step_v(&self, v: f64, current: f64) -> f64 {
        self.decay() * v + self.input_gain() * current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_stable() {
        let p = LifParams::default();
        assert!(p.is_stable());
        assert!((p.tau() - 1.0).abs() < 1e-15);
        assert!((p.decay() - (-0.1f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn zero_input_decays_to_zero() {
        let p = LifParams::default();
        let mut v = 1.0;
        for _ in 0..400 {
            v = p.step_v(v, 0.0);
        }
        assert!(v.abs() < 1e-15);
    }

    #[test]
    fn constant_input_converges_to_ri() {
        // ⟨V⟩ = R·I for constant current, both integrators.
        for integrator in [Integrator::ExponentialEuler, Integrator::ForwardEuler] {
            let p = LifParams {
                r: 2.0,
                c: 0.5,
                dt: 0.05,
                integrator,
            };
            let mut v = 0.0;
            for _ in 0..2000 {
                v = p.step_v(v, 3.0);
            }
            assert!((v - 6.0).abs() < 1e-9, "{integrator:?}: v={v}");
        }
    }

    #[test]
    fn forward_euler_instability_detected() {
        let p = LifParams {
            r: 1.0,
            c: 1.0,
            dt: 2.5, // Δt > 2τ: decay < −1
            integrator: Integrator::ForwardEuler,
        };
        assert!(!p.is_stable());
    }

    #[test]
    fn exponential_euler_always_stable() {
        let p = LifParams {
            dt: 100.0,
            ..LifParams::default()
        };
        assert!(p.is_stable());
    }

    #[test]
    fn decorrelation_steps_scale_with_tau() {
        let fast = LifParams::default(); // τ/Δt = 10 ⇒ ≈ 50 steps
        assert_eq!(fast.decorrelation_steps(), 50);
        let slow = LifParams {
            dt: 0.01,
            ..LifParams::default()
        };
        assert_eq!(slow.decorrelation_steps(), 500);
    }

    #[test]
    fn integrators_agree_to_first_order() {
        let pe = LifParams::default();
        let pf = LifParams {
            integrator: Integrator::ForwardEuler,
            ..LifParams::default()
        };
        // decay differs at O(dt²).
        assert!((pe.decay() - pf.decay()).abs() < pe.dt * pe.dt);
    }
}
