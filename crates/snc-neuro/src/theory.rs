//! Closed-form stationary statistics of device-driven LIF membranes.
//!
//! With the per-step update `V ← d·V + g·I` (decay `d`, input gain `g` from
//! [`LifParams`]) and i.i.d. input currents `I_t`, the stationary membrane
//! is the geometric sum `V = g · Σ_{k≥0} d^k I_{t−k}`, giving
//!
//! * mean: `⟨V⟩ = g/(1−d) · ⟨I⟩` — which equals the paper's `R⟨I⟩` for
//!   both integrators (§III.B);
//! * covariance: `Cov(V_i, V_j) = g²/(1−d²) · Cov(I_i, I_j)` — the
//!   discrete-time version of the paper's `(R/C)·Var(I)` scaling (§III.B–C).
//!
//! With `I = W s` for a pool of independent devices with `P(s=1) = p`:
//! `⟨I⟩ = p · (row sums of W)` and `Cov(I) = p(1−p) · W Wᵀ`, hence
//!
//! ```text
//! Cov(V) = kappa · W Wᵀ,   kappa = g²/(1−d²) · p(1−p)
//! ```
//!
//! — "the LIF neuron population transforms the device randomness into a set
//! of Gaussian processes with covariance proportional to the Gram matrix of
//! the weight vectors" (§III.C). These formulas place the spike thresholds
//! and predict the covariances that the integration tests verify
//! empirically.

use crate::lif::LifParams;
use crate::synapse::InputWeights;
use snc_linalg::DMatrix;

/// The geometric-sum mean factor `g/(1−d)`; equals `R` for both built-in
/// integrators.
pub fn mean_factor(params: &LifParams) -> f64 {
    params.input_gain() / (1.0 - params.decay())
}

/// The geometric-sum variance factor `g²/(1−d²)`.
pub fn variance_factor(params: &LifParams) -> f64 {
    let d = params.decay();
    let g = params.input_gain();
    g * g / (1.0 - d * d)
}

/// The scalar `kappa` with `Cov(V) = kappa · W Wᵀ` for devices with
/// `P(1) = p`.
pub fn kappa(params: &LifParams, p: f64) -> f64 {
    variance_factor(params) * p * (1.0 - p)
}

/// Stationary membrane means `⟨V_i⟩ = mean_factor · p · Σ_α W_iα`.
pub fn stationary_means(params: &LifParams, weights: &impl InputWeights, p: f64) -> Vec<f64> {
    let f = mean_factor(params) * p;
    weights.row_sums().into_iter().map(|s| s * f).collect()
}

/// Full stationary covariance matrix `kappa · W Wᵀ`.
///
/// Densifies the Gram matrix; intended for analysis and tests, not hot
/// paths.
pub fn stationary_covariance(
    params: &LifParams,
    weights: &impl InputWeights,
    p: f64,
) -> DMatrix {
    let mut g = weights.gram();
    g.scale(kappa(params, p));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lif::{Integrator, Reset};
    use crate::population::LifPopulation;
    use crate::synapse::DenseWeights;
    use snc_devices::{DeviceModel, DevicePool, PoolSpec};

    #[test]
    fn mean_factor_equals_r() {
        for integrator in [Integrator::ExponentialEuler, Integrator::ForwardEuler] {
            let p = LifParams {
                r: 3.0,
                c: 0.5,
                dt: 0.05,
                integrator,
            };
            assert!(
                (mean_factor(&p) - 3.0).abs() < 1e-12,
                "{integrator:?}: {}",
                mean_factor(&p)
            );
        }
    }

    #[test]
    fn variance_factor_positive_and_consistent() {
        let p = LifParams::default();
        let vf = variance_factor(&p);
        assert!(vf > 0.0);
        // κ maximal for fair coins.
        assert!(kappa(&p, 0.5) > kappa(&p, 0.1));
        assert_eq!(kappa(&p, 0.0), 0.0);
        assert_eq!(kappa(&p, 1.0), 0.0);
    }

    /// The core §III.C claim: empirical membrane covariance matches
    /// `kappa · W Wᵀ`, including the cross-covariance signs induced by
    /// shared and inverted inputs.
    #[test]
    fn empirical_covariance_matches_theory() {
        let params = LifParams::default();
        // 3 neurons, 2 devices: neuron 0 and 1 share device 0 (positive
        // correlation); neuron 2 sees device 0 inverted (negative corr).
        let w = DenseWeights::from_fn(3, 2, |i, a| match (i, a) {
            (0, 0) => 1.0,
            (1, 0) => 0.8,
            (1, 1) => 0.6,
            (2, 0) => -1.0,
            _ => 0.0,
        });
        let mut pool = DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), 2), 42);
        let mut pop = LifPopulation::new(3, params, Reset::None);
        let means = stationary_means(&params, &w, 0.5);
        pop.set_potentials(&means); // start at stationarity

        let mut current = vec![0.0; 3];
        let steps = 400_000usize;
        let mut acc = [0.0; 9];
        let mut v_mean = [0.0; 3];
        // Warmup.
        for _ in 0..1000 {
            let s = pool.step();
            w.accumulate_words(s, &mut current);
            pop.step(&current);
        }
        for _ in 0..steps {
            let s = pool.step();
            w.accumulate_words(s, &mut current);
            pop.step(&current);
            let v = pop.potentials();
            for i in 0..3 {
                v_mean[i] += v[i];
                for j in 0..3 {
                    acc[3 * i + j] += (v[i] - means[i]) * (v[j] - means[j]);
                }
            }
        }
        let theory = stationary_covariance(&params, &w, 0.5);
        for i in 0..3 {
            let emp_mean = v_mean[i] / steps as f64;
            assert!(
                (emp_mean - means[i]).abs() < 0.02,
                "mean[{i}]: emp={emp_mean} theory={}",
                means[i]
            );
            for j in 0..3 {
                let emp = acc[3 * i + j] / steps as f64;
                let th = theory[(i, j)];
                assert!(
                    (emp - th).abs() < 0.02 * (1.0 + th.abs()),
                    "cov[{i}][{j}]: emp={emp} theory={th}"
                );
            }
        }
        // Sign structure: shared input ⇒ positive, inverted ⇒ negative.
        assert!(theory[(0, 1)] > 0.0);
        assert!(theory[(0, 2)] < 0.0);
    }

    #[test]
    fn covariance_scales_with_weight_scale_squared() {
        let params = LifParams::default();
        let base = DenseWeights::from_fn(2, 2, |i, a| (i + a) as f64 * 0.5 + 0.25);
        let scaled = DenseWeights::from_fn(2, 2, |i, a| ((i + a) as f64 * 0.5 + 0.25) * 3.0);
        let c1 = stationary_covariance(&params, &base, 0.5);
        let c2 = stationary_covariance(&params, &scaled, 0.5);
        for i in 0..2 {
            for j in 0..2 {
                assert!((c2[(i, j)] - 9.0 * c1[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
