//! Synaptic plasticity rules (§III.D).
//!
//! The Hebbian principle ("neurons that fire together, wire together")
//! gives `Δw = y·x`, which is unstable. Oja's modification
//! `Δw = y·(x − y·w)` self-normalizes and converges to the *principal*
//! eigenvector of `Cov(x)`. The anti-Hebbian variant used by the
//! LIF-Trevisan circuit,
//!
//! ```text
//! Δw = −y·x + (y² + 1 − wᵀw)·w
//! ```
//!
//! converges to the *minor* (minimum-eigenvalue) eigenvector (Oja 1992),
//! which is exactly the vector Trevisan's simple spectral algorithm
//! thresholds to produce a cut.

use snc_linalg::vector;

/// A learning-rate schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LearningRate {
    /// Constant rate.
    Constant(f64),
    /// Robbins–Monro style decay `η₀ / (1 + t/t₀)`.
    Decay {
        /// Initial rate.
        eta0: f64,
        /// Decay time constant in updates.
        t0: f64,
    },
}

impl LearningRate {
    /// The rate at update index `t`.
    pub fn at(&self, t: u64) -> f64 {
        match *self {
            LearningRate::Constant(eta) => eta,
            LearningRate::Decay { eta0, t0 } => eta0 / (1.0 + t as f64 / t0),
        }
    }
}

/// A plasticity rule updating a weight vector from a presynaptic activity
/// vector. The postsynaptic activity `y = wᵀx` is computed internally and
/// returned.
pub trait PlasticityRule {
    /// Applies one update `w ← w + η·Δw(x, y)` and returns `y`.
    fn update(&self, w: &mut [f64], x: &[f64], eta: f64) -> f64;

    /// Applies one update to `R` independent replicas stored
    /// structure-of-arrays: `w[r·neurons ..][..neurons]` is replica `r`'s
    /// weight vector and `x` its activity in the same replica-major layout.
    /// All replicas share one learning rate `eta` (lock-stepped replicas
    /// are at the same update index). Writes `y_r = w_rᵀx_r` into `ys`.
    ///
    /// Each lane is updated with exactly the scalar [`PlasticityRule::update`]
    /// expression — in the same accumulation order — so a batched update is
    /// bit-for-bit identical to updating every replica alone. Implementors
    /// overriding this for speed must preserve that contract (the
    /// batched-network equivalence tests pin it).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != x.len()`, `w.len()` is not a multiple of
    /// `ys.len()`, or `ys` is empty while `w` is not.
    fn update_replicas(&self, w: &mut [f64], x: &[f64], eta: f64, ys: &mut [f64]) {
        assert_eq!(w.len(), x.len(), "weight/activity layout mismatch");
        let replicas = ys.len();
        assert!(
            replicas > 0 || w.is_empty(),
            "at least one replica required"
        );
        if replicas == 0 {
            return;
        }
        assert!(
            w.len().is_multiple_of(replicas),
            "weight buffer not replica-major"
        );
        let n = w.len() / replicas;
        for ((w_lane, x_lane), y) in w
            .chunks_exact_mut(n)
            .zip(x.chunks_exact(n))
            .zip(ys.iter_mut())
        {
            *y = self.update(w_lane, x_lane, eta);
        }
    }
}

/// Pure Hebbian rule `Δw = y·x` (unstable; kept as the textbook baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct Hebbian;

impl PlasticityRule for Hebbian {
    fn update(&self, w: &mut [f64], x: &[f64], eta: f64) -> f64 {
        let y = vector::dot(w, x);
        vector::axpy(eta * y, x, w);
        y
    }
}

/// Oja's rule `Δw = y·(x − y·w)`: converges to the principal eigenvector
/// of `Cov(x)` with `‖w‖ → 1` (Oja 1982).
#[derive(Clone, Copy, Debug, Default)]
pub struct OjaPrincipal;

impl PlasticityRule for OjaPrincipal {
    fn update(&self, w: &mut [f64], x: &[f64], eta: f64) -> f64 {
        let y = vector::dot(w, x);
        // w += η (y x − y² w)
        let y2 = y * y;
        for (wi, &xi) in w.iter_mut().zip(x) {
            *wi += eta * (y * xi - y2 * *wi);
        }
        y
    }
}

/// Oja's anti-Hebbian minor-component rule
/// `Δw = −y·x + (y² + 1 − wᵀw)·w` (Oja 1992): converges to the minimum
/// eigenvector of `Cov(x)` with `‖w‖ → 1`. This is the learning rule of the
/// LIF-Trevisan circuit.
#[derive(Clone, Copy, Debug, Default)]
pub struct OjaMinor;

impl PlasticityRule for OjaMinor {
    fn update(&self, w: &mut [f64], x: &[f64], eta: f64) -> f64 {
        let y = vector::dot(w, x);
        let norm2 = vector::norm_sq(w);
        let stabilizer = y * y + 1.0 - norm2;
        for (wi, &xi) in w.iter_mut().zip(x) {
            *wi += eta * (-y * xi + stabilizer * *wi);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snc_linalg::eigen::jacobi::symmetric_eigen;
    use snc_linalg::{Cholesky, DMatrix, GaussianSampler};

    /// Draws zero-mean Gaussian samples with covariance C and trains a rule.
    fn train(
        rule: &impl PlasticityRule,
        c: &DMatrix,
        updates: u64,
        lr: LearningRate,
        seed: u64,
    ) -> Vec<f64> {
        let n = c.rows();
        let ch = Cholesky::with_jitter(c, 1e-12).unwrap();
        let mut gauss = GaussianSampler::new(seed);
        let mut g = vec![0.0; n];
        let mut x = vec![0.0; n];
        // Deterministic, slightly off-axis start.
        let mut w: Vec<f64> = (0..n).map(|i| 0.5 + 0.1 * i as f64).collect();
        vector::normalize(&mut w);
        for t in 0..updates {
            gauss.fill(&mut g);
            ch.correlate_into(&g, &mut x);
            rule.update(&mut w, &x, lr.at(t));
        }
        w
    }

    fn test_cov() -> DMatrix {
        // Eigenvalues 3, 1, 0.2 with known eigenvectors.
        DMatrix::from_rows(&[
            &[2.0, 1.0, 0.0],
            &[1.0, 2.0, 0.0],
            &[0.0, 0.0, 0.2],
        ])
    }

    #[test]
    fn learning_rate_schedules() {
        assert_eq!(LearningRate::Constant(0.1).at(1000), 0.1);
        let d = LearningRate::Decay { eta0: 0.1, t0: 100.0 };
        assert_eq!(d.at(0), 0.1);
        assert!((d.at(100) - 0.05).abs() < 1e-12);
        assert!(d.at(10_000) < 0.002);
    }

    #[test]
    fn oja_principal_finds_top_eigenvector() {
        let c = test_cov();
        let (vals, vecs) = symmetric_eigen(&c).unwrap();
        let top: Vec<f64> = (0..3).map(|i| vecs[(i, 2)]).collect();
        assert!((vals[2] - 3.0).abs() < 1e-9);
        let w = train(
            &OjaPrincipal,
            &c,
            60_000,
            LearningRate::Decay { eta0: 0.02, t0: 5_000.0 },
            7,
        );
        let align = vector::alignment(&w, &top);
        assert!(align > 0.99, "alignment={align}, w={w:?}");
        assert!((vector::norm(&w) - 1.0).abs() < 0.05);
    }

    #[test]
    fn oja_minor_finds_bottom_eigenvector() {
        let c = test_cov();
        let (vals, vecs) = symmetric_eigen(&c).unwrap();
        let bottom: Vec<f64> = (0..3).map(|i| vecs[(i, 0)]).collect();
        assert!((vals[0] - 0.2).abs() < 1e-9);
        let w = train(
            &OjaMinor,
            &c,
            60_000,
            LearningRate::Decay { eta0: 0.02, t0: 5_000.0 },
            8,
        );
        let align = vector::alignment(&w, &bottom);
        assert!(align > 0.99, "alignment={align}, w={w:?}");
        assert!((vector::norm(&w) - 1.0).abs() < 0.05);
    }

    #[test]
    fn oja_minor_unit_norm_fixed_point() {
        // At w = unit eigenvector, E[Δw] = 0 (μ ≠ 1 case uses ‖w‖ = 1).
        let c = test_cov();
        let (_, vecs) = symmetric_eigen(&c).unwrap();
        let w0: Vec<f64> = (0..3).map(|i| vecs[(i, 0)]).collect();
        // Expected update direction: −C w + (wᵀCw + 1 − ‖w‖²) w.
        let cw = c.matvec(&w0);
        let wtcw = vector::dot(&w0, &cw);
        let mut expected: Vec<f64> = cw.iter().map(|&v| -v).collect();
        vector::axpy(wtcw + 1.0 - 1.0, &w0, &mut expected);
        assert!(vector::max_abs(&expected) < 1e-9);
    }

    #[test]
    fn hebbian_grows_without_bound() {
        let c = DMatrix::identity(2);
        let w = train(&Hebbian, &c, 5_000, LearningRate::Constant(0.05), 9);
        assert!(vector::norm(&w) > 10.0, "norm={}", vector::norm(&w));
    }

    #[test]
    fn update_returns_projection() {
        let mut w = vec![1.0, 0.0];
        let y = OjaPrincipal.update(&mut w, &[2.0, 5.0], 0.0);
        assert_eq!(y, 2.0);
        assert_eq!(w, vec![1.0, 0.0]); // η = 0 leaves w unchanged
    }

    /// The SoA pass must equal per-replica scalar updates bit-for-bit,
    /// for every rule, across several chained updates.
    #[test]
    fn batched_update_is_bit_exact() {
        fn check(rule: &impl PlasticityRule) {
            let n = 5;
            let replicas = 4;
            // Deterministic, replica-distinct starting weights and inputs.
            let mut w_batch: Vec<f64> = (0..n * replicas)
                .map(|k| ((k * 37 % 11) as f64 - 5.0) * 0.13)
                .collect();
            let mut w_seq = w_batch.clone();
            let mut ys = vec![0.0; replicas];
            for t in 0..20u64 {
                let x: Vec<f64> = (0..n * replicas)
                    .map(|k| ((k as u64 * 101 + t * 7) % 13) as f64 * 0.21 - 1.2)
                    .collect();
                let eta = 0.05 / (1.0 + t as f64);
                rule.update_replicas(&mut w_batch, &x, eta, &mut ys);
                for r in 0..replicas {
                    let y = rule.update(&mut w_seq[r * n..(r + 1) * n], &x[r * n..(r + 1) * n], eta);
                    assert_eq!(y.to_bits(), ys[r].to_bits(), "y at t={t} r={r}");
                }
                for (k, (a, b)) in w_batch.iter().zip(&w_seq).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "w at t={t} k={k}");
                }
            }
        }
        check(&Hebbian);
        check(&OjaPrincipal);
        check(&OjaMinor);
    }

    #[test]
    #[should_panic(expected = "replica-major")]
    fn batched_update_rejects_ragged_layout() {
        let mut w = vec![0.0; 7];
        let x = vec![0.0; 7];
        let mut ys = vec![0.0; 2];
        OjaMinor.update_replicas(&mut w, &x, 0.1, &mut ys);
    }
}
