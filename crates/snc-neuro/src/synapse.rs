//! Device→neuron synaptic weight matrices.
//!
//! The circuits' hot loop is: read the binary device state vector
//! `s ∈ {0,1}^r`, form the synaptic current `I = W s`, step the membranes.
//! Because `s` is binary, `W s` is a sum of the *active columns* of `W` —
//! so weights are stored column-major (dense) or CSC (sparse), making the
//! kernel a sequence of contiguous column accumulations. The state vector
//! arrives bit-packed ([`ActivityWords`], one bit per device), so the
//! column walk is a `trailing_zeros` word scan — no per-device branch.
//!
//! * [`DenseWeights`] — for the LIF-GW circuit, whose weight matrix is the
//!   dense `n × r` SDP factor matrix (r = 4 in the paper).
//! * [`CscWeights`] — for the LIF-Trevisan circuit, whose weight matrix is
//!   the sparse `n × n` Trevisan matrix `I + D^{-1/2} A D^{-1/2}`.
//!
//! Both kernels also come in a *multi-replica* structure-of-arrays form
//! ([`BatchWeights`]): `R` replicas of the same circuit are advanced with
//! a single traversal of the weight matrix, each weight load amortized
//! across replicas (see `crate::parallel::ReplicaBatch`).

use snc_devices::ActivityWords;
use snc_graph::Graph;
use snc_linalg::DMatrix;

/// A device→neuron weight matrix supporting the binary-input kernel.
pub trait InputWeights {
    /// Number of neurons (rows).
    fn neurons(&self) -> usize;
    /// Number of devices (columns).
    fn devices(&self) -> usize;
    /// Computes `out = W · s` for a bit-packed binary state vector `s`,
    /// accumulating active columns in ascending column order (the order is
    /// part of the contract: it makes packed, unpacked, and batched
    /// kernels bit-for-bit identical in floating point).
    ///
    /// # Panics
    ///
    /// Panics if `active.len() != devices()` or `out.len() != neurons()`.
    fn accumulate_words(&self, active: &ActivityWords, out: &mut [f64]);
    /// Computes `out = W · s` for a binary state vector given as bools.
    ///
    /// Convenience wrapper that packs and delegates to
    /// [`InputWeights::accumulate_words`]; it allocates, so hot paths
    /// should hold an [`ActivityWords`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `active.len() != devices()` or `out.len() != neurons()`.
    fn accumulate_active(&self, active: &[bool], out: &mut [f64]) {
        self.accumulate_words(&ActivityWords::from_bools(active), out);
    }
    /// Computes `out = W · x` for a real-valued vector `x` (used with the
    /// per-device stationary probabilities to place thresholds).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != devices()` or `out.len() != neurons()`.
    fn apply(&self, x: &[f64], out: &mut [f64]);
    /// Row sums `Σ_α W_iα` (needed for the analytic membrane means).
    fn row_sums(&self) -> Vec<f64>;
    /// The Gram matrix `W Wᵀ` (the covariance shape of the membranes).
    fn gram(&self) -> DMatrix;
}

/// Multi-replica (structure-of-arrays) extension of [`InputWeights`].
///
/// Computes the synaptic currents of `R` replicas of the same circuit in
/// one traversal of the weight matrix, so the matrix structure — column
/// masks, sparse indices, values — is read once per step instead of once
/// per replica.
///
/// The output layout is chosen by the weight type via
/// [`BatchWeights::INTERLEAVED`]:
///
/// * **Replica-major** (`INTERLEAVED == false`, the dense default):
///   `out[r * neurons + i]` is neuron `i`'s current in replica `r`. Each
///   replica's current vector is one contiguous slice — memcpy-able
///   pattern rows, branch-free membrane fusion.
/// * **Neuron-major / interleaved** (`INTERLEAVED == true`, the CSC
///   choice): `out[i * replicas + r]`. Each scattered sparse update lands
///   in one contiguous `R`-lane group (a cache line at R = 8), which is
///   what makes the shared sparse traversal profitable — the replica-major
///   scatter jumps `neurons`-strided lanes and loses its amortization win
///   to cache traffic.
///
/// Per `(neuron, replica)` pair the additions happen in ascending column
/// order — exactly the order [`InputWeights::accumulate_words`] uses — so
/// batched currents are bit-for-bit equal to stepping each replica alone
/// in either layout.
pub trait BatchWeights: InputWeights {
    /// Reusable precomputed state and scratch for the batched kernel.
    type Plan: Clone + std::fmt::Debug;
    /// Whether [`BatchWeights::accumulate_replicas`] writes neuron-major
    /// interleaved output (`out[i * replicas + r]`) instead of
    /// replica-major (`out[r * neurons + i]`). Steppers must keep their
    /// per-replica state in the same layout.
    const INTERLEAVED: bool = false;
    /// Builds the kernel plan (pattern tables, scratch buffers).
    fn batch_plan(&self) -> Self::Plan;
    /// Computes the batched currents `(W · s_r)_i` for replica states
    /// `s_r`, stored per [`BatchWeights::INTERLEAVED`].
    ///
    /// # Panics
    ///
    /// Panics if any `states[r].len() != devices()` or
    /// `out.len() != neurons() * states.len()`.
    fn accumulate_replicas(
        &self,
        plan: &mut Self::Plan,
        states: &[ActivityWords],
        out: &mut [f64],
    );
    /// The memoized current vector `W · s` for one packed state, if the
    /// plan precomputes per-pattern rows — lets steppers read currents in
    /// place instead of materializing them. Availability must not depend
    /// on the state's *value* (only on the plan), so callers may probe
    /// once and then rely on it for every replica. The default plan has no
    /// memoization.
    fn memoized_row<'p>(&self, plan: &'p Self::Plan, state: &ActivityWords) -> Option<&'p [f64]> {
        let _ = (plan, state);
        None
    }
}

/// Dense column-major weights.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseWeights {
    rows: usize,
    cols: usize,
    /// Column-major storage: column `α` occupies `data[α·rows .. (α+1)·rows]`.
    data: Vec<f64>,
}

impl DenseWeights {
    /// Builds from a row-major matrix (`n × r`, one row per neuron), e.g.
    /// the SDP factor matrix, with an overall scale applied.
    ///
    /// "The precise magnitudes of these weights are not critical; what
    /// matter are their relative values" (§IV.A) — `scale` models the
    /// hardware weight-range constraint.
    pub fn from_matrix_scaled(m: &DMatrix, scale: f64) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let mut data = vec![0.0; rows * cols];
        for i in 0..rows {
            let r = m.row(i);
            for (alpha, &w) in r.iter().enumerate() {
                data[alpha * rows + i] = w * scale;
            }
        }
        Self { rows, cols, data }
    }

    /// Builds from a closure over `(neuron, device)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = vec![0.0; rows * cols];
        for alpha in 0..cols {
            for i in 0..rows {
                data[alpha * rows + i] = f(i, alpha);
            }
        }
        Self { rows, cols, data }
    }

    /// The weight from device `alpha` to neuron `i`.
    pub fn get(&self, i: usize, alpha: usize) -> f64 {
        self.data[alpha * self.rows + i]
    }

    /// Column `alpha` as a slice (all neurons' weights from one device).
    pub fn column(&self, alpha: usize) -> &[f64] {
        &self.data[alpha * self.rows..(alpha + 1) * self.rows]
    }
}

impl InputWeights for DenseWeights {
    fn neurons(&self) -> usize {
        self.rows
    }

    fn devices(&self) -> usize {
        self.cols
    }

    #[inline]
    fn accumulate_words(&self, active: &ActivityWords, out: &mut [f64]) {
        assert_eq!(active.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        out.fill(0.0);
        for alpha in active.iter_active() {
            let col = self.column(alpha);
            for (o, &w) in out.iter_mut().zip(col) {
                *o += w;
            }
        }
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        out.fill(0.0);
        for (alpha, &xa) in x.iter().enumerate() {
            if xa != 0.0 {
                let col = self.column(alpha);
                for (o, &w) in out.iter_mut().zip(col) {
                    *o += w * xa;
                }
            }
        }
    }

    fn row_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.rows];
        for alpha in 0..self.cols {
            for (s, &w) in sums.iter_mut().zip(self.column(alpha)) {
                *s += w;
            }
        }
        sums
    }

    fn gram(&self) -> DMatrix {
        // W Wᵀ from column-major storage: accumulate outer products of
        // columns' entries — equivalently convert to row-major and reuse.
        let row_major = DMatrix::from_fn(self.rows, self.cols, |i, a| self.get(i, a));
        row_major.gram_rows()
    }
}

/// Device counts up to this many columns get a precomputed pattern table
/// in [`DensePlan`]: one current row per possible activity pattern
/// (`2^cols × rows` doubles). The LIF-GW circuit runs at the paper's SDP
/// rank 4, well under the cap.
pub const DENSE_PATTERN_COLS: usize = 6;

/// Plan/scratch state for the batched dense kernel.
///
/// With at most [`DENSE_PATTERN_COLS`] devices there are at most 64
/// possible activity patterns, so the plan memoizes `W · s` for every
/// pattern once (each entry computed with the exact ascending-column
/// addition order of the live kernel) and the per-step kernel degenerates
/// to a table row copy per replica. Above the cap the kernel falls back to
/// a column scan with the weight load amortized across replicas.
#[derive(Clone, Debug)]
pub struct DensePlan {
    /// `table[p * rows + i]` = current of neuron `i` under pattern `p`;
    /// empty when `cols > DENSE_PATTERN_COLS`.
    table: Vec<f64>,
    /// Scratch: indices of replicas with the current column active
    /// (scan mode).
    active: Vec<u32>,
}

impl BatchWeights for DenseWeights {
    type Plan = DensePlan;

    fn batch_plan(&self) -> DensePlan {
        let table = if self.cols <= DENSE_PATTERN_COLS {
            let patterns = 1usize << self.cols;
            let mut table = vec![0.0; patterns * self.rows];
            let mut states = ActivityWords::zeros(self.cols);
            for p in 0..patterns {
                for alpha in 0..self.cols {
                    states.set(alpha, (p >> alpha) & 1 == 1);
                }
                let row = &mut table[p * self.rows..(p + 1) * self.rows];
                self.accumulate_words(&states, row);
            }
            table
        } else {
            Vec::new()
        };
        DensePlan {
            table,
            active: Vec::new(),
        }
    }

    fn accumulate_replicas(
        &self,
        plan: &mut DensePlan,
        states: &[ActivityWords],
        out: &mut [f64],
    ) {
        let replicas = states.len();
        assert_eq!(out.len(), self.rows * replicas);
        for s in states {
            assert_eq!(s.len(), self.cols);
        }
        if !plan.table.is_empty() {
            // Pattern mode: each replica's current vector is a straight
            // copy of its pattern's memoized row.
            for (r, s) in states.iter().enumerate() {
                let p = s.words().first().copied().unwrap_or(0) as usize;
                let row = &plan.table[p * self.rows..(p + 1) * self.rows];
                out[r * self.rows..(r + 1) * self.rows].copy_from_slice(row);
            }
        } else {
            // Scan mode: walk each column once; for every replica with the
            // column active, add it as one contiguous vectorizable pass.
            out.fill(0.0);
            for alpha in 0..self.cols {
                plan.active.clear();
                for (r, s) in states.iter().enumerate() {
                    if s.get(alpha) {
                        plan.active.push(r as u32);
                    }
                }
                if plan.active.is_empty() {
                    continue;
                }
                let col = self.column(alpha);
                for &r in &plan.active {
                    let lane = &mut out[r as usize * self.rows..(r as usize + 1) * self.rows];
                    for (o, &w) in lane.iter_mut().zip(col) {
                        *o += w;
                    }
                }
            }
        }
    }

    fn memoized_row<'p>(&self, plan: &'p DensePlan, state: &ActivityWords) -> Option<&'p [f64]> {
        if plan.table.is_empty() {
            return None;
        }
        let p = state.words().first().copied().unwrap_or(0) as usize;
        Some(&plan.table[p * self.rows..(p + 1) * self.rows])
    }
}

/// Sparse column-compressed weights.
#[derive(Clone, Debug, PartialEq)]
pub struct CscWeights {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscWeights {
    /// Builds the LIF-Trevisan weight matrix for a graph: the `n × n`
    /// Trevisan matrix `I + D^{-1/2} A D^{-1/2}`, scaled by `scale`
    /// (§IV.B: "connection weights between the random devices and the LIF
    /// population … set proportional to the Trevisan matrix").
    ///
    /// Isolated vertices get only their diagonal entry.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is non-finite (every stored value has magnitude
    /// ≤ `|scale|`, so a finite scale makes the whole matrix finite —
    /// the `CscWeights` invariant the batched kernel relies on).
    pub fn trevisan(graph: &Graph, scale: f64) -> Self {
        assert!(scale.is_finite(), "weight scale must be finite, got {scale}");
        let n = graph.n();
        let inv_sqrt: Vec<f64> = (0..n)
            .map(|i| {
                let d = graph.degree(i);
                if d == 0 {
                    0.0
                } else {
                    1.0 / (d as f64).sqrt()
                }
            })
            .collect();
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx: Vec<u32> = Vec::with_capacity(2 * graph.m() + n);
        let mut values: Vec<f64> = Vec::with_capacity(2 * graph.m() + n);
        col_ptr.push(0);
        for j in 0..n {
            // Column j of the symmetric matrix: diagonal + neighbors.
            // Entries must be in increasing row order; neighbors are sorted
            // so merge the diagonal in place.
            let mut placed_diag = false;
            for &i in graph.neighbors(j) {
                let i = i as usize;
                if !placed_diag && i > j {
                    row_idx.push(j as u32);
                    values.push(scale);
                    placed_diag = true;
                }
                row_idx.push(i as u32);
                values.push(scale * inv_sqrt[i] * inv_sqrt[j]);
            }
            if !placed_diag {
                row_idx.push(j as u32);
                values.push(scale);
            }
            col_ptr.push(row_idx.len());
        }
        Self {
            rows: n,
            cols: n,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Builds the weighted LIF-Trevisan weight matrix
    /// `I + D_w^{-1/2} A_w D_w^{-1/2}` for a weighted graph, scaled.
    ///
    /// # Panics
    ///
    /// Panics if the graph has negative weights (the weighted Trevisan
    /// matrix is only defined for non-negative weights).
    pub fn trevisan_weighted(graph: &snc_graph::WeightedGraph, scale: f64) -> Self {
        assert!(
            graph.is_nonnegative(),
            "weighted Trevisan matrix requires non-negative weights"
        );
        let n = graph.n();
        let inv_sqrt: Vec<f64> = (0..n)
            .map(|i| {
                let d = graph.weighted_degree(i);
                if d <= 0.0 {
                    0.0
                } else {
                    1.0 / d.sqrt()
                }
            })
            .collect();
        let mut triplets: Vec<(u32, u32, f64)> = Vec::with_capacity(2 * graph.m() + n);
        for j in 0..n {
            triplets.push((j as u32, j as u32, scale));
            for (&i, &w) in graph.neighbors(j).iter().zip(graph.neighbor_weights(j)) {
                triplets.push((i, j as u32, scale * w * inv_sqrt[i as usize] * inv_sqrt[j]));
            }
        }
        Self::from_triplets(n, n, &triplets)
    }

    /// Builds from explicit triplets `(row, col, value)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or a value is non-finite.
    /// Finiteness is a `CscWeights` invariant: the batched masked-FMA
    /// kernel relies on `v · 0.0` being a true no-op for silent
    /// replicas, which `±inf`/`NaN` values would break (`inf · 0.0 =
    /// NaN`) — and non-finite synaptic weights are meaningless for the
    /// circuits anyway.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        let mut sorted: Vec<(u32, u32, f64)> = triplets
            .iter()
            .map(|&(i, j, v)| {
                assert!((i as usize) < rows && (j as usize) < cols, "triplet out of range");
                assert!(v.is_finite(), "synaptic weights must be finite, got {v}");
                (j, i, v)
            })
            .collect();
        sorted.sort_by_key(|&(j, i, _)| (j, i));
        let mut col_ptr = vec![0usize; cols + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        for &(j, i, v) in &sorted {
            col_ptr[j as usize + 1] += 1;
            row_idx.push(i);
            values.push(v);
        }
        for j in 0..cols {
            col_ptr[j + 1] += col_ptr[j];
        }
        Self {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Densifies (tests and small systems only).
    pub fn to_dense(&self) -> DMatrix {
        let mut m = DMatrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                m[(self.row_idx[k] as usize, j)] += self.values[k];
            }
        }
        m
    }
}

impl InputWeights for CscWeights {
    fn neurons(&self) -> usize {
        self.rows
    }

    fn devices(&self) -> usize {
        self.cols
    }

    #[inline]
    fn accumulate_words(&self, active: &ActivityWords, out: &mut [f64]) {
        assert_eq!(active.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        out.fill(0.0);
        for alpha in active.iter_active() {
            for k in self.col_ptr[alpha]..self.col_ptr[alpha + 1] {
                out[self.row_idx[k] as usize] += self.values[k];
            }
        }
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        out.fill(0.0);
        for (alpha, &xa) in x.iter().enumerate() {
            if xa != 0.0 {
                for k in self.col_ptr[alpha]..self.col_ptr[alpha + 1] {
                    out[self.row_idx[k] as usize] += self.values[k] * xa;
                }
            }
        }
    }

    fn row_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.rows];
        for k in 0..self.values.len() {
            sums[self.row_idx[k] as usize] += self.values[k];
        }
        sums
    }

    fn gram(&self) -> DMatrix {
        self.to_dense().gram_rows()
    }
}

/// Plan/scratch state for the batched CSC kernel.
#[derive(Clone, Debug, Default)]
pub struct CscPlan {
    /// Scratch: per-replica column-activity selectors (1.0 = active,
    /// 0.0 = silent) for the branch-free masked accumulate.
    sel: Vec<f64>,
    /// Scratch: the replicas' state words for the current 64-column block.
    words: Vec<u64>,
}

impl BatchWeights for CscWeights {
    type Plan = CscPlan;

    /// Interleaved so each sparse row update touches one contiguous
    /// `R`-lane group (see the trait docs).
    const INTERLEAVED: bool = true;

    fn batch_plan(&self) -> CscPlan {
        CscPlan::default()
    }

    fn accumulate_replicas(
        &self,
        plan: &mut CscPlan,
        states: &[ActivityWords],
        out: &mut [f64],
    ) {
        let replicas = states.len();
        assert_eq!(out.len(), self.rows * replicas);
        for s in states {
            assert_eq!(s.len(), self.cols);
        }
        plan.sel.resize(replicas, 0.0);
        plan.words.clear();
        out.fill(0.0);
        // One pass over the sparse structure: each (row index, value) pair
        // is loaded once per step and applied to every replica, instead of
        // being re-read once per replica. The output is neuron-major
        // interleaved, so the `R` per-row updates are one contiguous,
        // vectorizable lane group; replica activity enters as a 0/1
        // multiplier rather than a branch or an index list.
        //
        // Bit-exactness of the masked add: `v * 1.0 == v` exactly, and
        // `o += v * 0.0` adds ±0.0, which cannot change `o` — the
        // accumulator never holds −0.0 (it starts at +0.0, and IEEE-754
        // round-to-nearest addition only produces −0.0 from two negative
        // zeros), and `x + ±0.0 == x` for every other x. So silent
        // replicas' lanes are bit-identical to never being touched, which
        // keeps the batched kernel bit-for-bit equal to per-replica
        // `accumulate_words` in ascending column order. This needs every
        // `v` finite (`inf · 0.0 = NaN` would poison silent lanes) —
        // a `CscWeights` construction invariant, asserted there.
        //
        // Columns are visited in 64-wide word blocks: the replicas'
        // current state words are staged once per block, then each
        // column's activity is a shift-and-mask — no per-(column, replica)
        // bounds-checked bit lookups.
        for (block, base) in (0..self.cols).step_by(64).enumerate() {
            plan.words.clear();
            plan.words.extend(states.iter().map(|s| s.words()[block]));
            let cols_in_block = 64.min(self.cols - base);
            for bit in 0..cols_in_block {
                let mut any = 0u64;
                for (sel, &w) in plan.sel.iter_mut().zip(plan.words.iter()) {
                    let on = (w >> bit) & 1;
                    *sel = on as f64;
                    any |= on;
                }
                if any == 0 {
                    continue;
                }
                let alpha = base + bit;
                for k in self.col_ptr[alpha]..self.col_ptr[alpha + 1] {
                    let row = self.row_idx[k] as usize;
                    let v = self.values[k];
                    let lane = &mut out[row * replicas..(row + 1) * replicas];
                    for (o, &sel) in lane.iter_mut().zip(plan.sel.iter()) {
                        *o += v * sel;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snc_graph::generators::structured::{complete, cycle};

    #[test]
    fn dense_accumulate_matches_matvec() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let w = DenseWeights::from_matrix_scaled(&m, 1.0);
        assert_eq!(w.neurons(), 2);
        assert_eq!(w.devices(), 3);
        let mut out = vec![0.0; 2];
        w.accumulate_active(&[true, false, true], &mut out);
        assert_eq!(out, vec![4.0, 10.0]);
        w.accumulate_active(&[false, false, false], &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn dense_scaling_and_access() {
        let m = DMatrix::from_rows(&[&[1.0, -1.0]]);
        let w = DenseWeights::from_matrix_scaled(&m, 2.5);
        assert_eq!(w.get(0, 0), 2.5);
        assert_eq!(w.get(0, 1), -2.5);
        assert_eq!(w.row_sums(), vec![0.0]);
    }

    #[test]
    fn dense_gram_matches_dmatrix_gram() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0], &[0.0, 3.0]]);
        let w = DenseWeights::from_matrix_scaled(&m, 1.0);
        assert!(w.gram().max_abs_diff(&m.gram_rows()) < 1e-14);
    }

    #[test]
    fn trevisan_matches_dense_reference() {
        for g in [cycle(7), complete(5)] {
            let w = CscWeights::trevisan(&g, 1.0);
            let dense = g.trevisan_dense();
            assert!(
                w.to_dense().max_abs_diff(&dense) < 1e-14,
                "trevisan CSC mismatch"
            );
            assert_eq!(w.nnz(), 2 * g.m() + g.n());
        }
    }

    #[test]
    fn trevisan_scaled() {
        let g = cycle(5);
        let w = CscWeights::trevisan(&g, 0.5);
        let mut dense = g.trevisan_dense();
        dense.scale(0.5);
        assert!(w.to_dense().max_abs_diff(&dense) < 1e-14);
    }

    #[test]
    fn trevisan_isolated_vertex() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let w = CscWeights::trevisan(&g, 1.0);
        let d = w.to_dense();
        assert_eq!(d[(2, 2)], 1.0);
        assert_eq!(d[(2, 0)], 0.0);
    }

    #[test]
    fn csc_accumulate_matches_dense() {
        let g = cycle(6);
        let w = CscWeights::trevisan(&g, 1.0);
        let dense = w.to_dense();
        let active = [true, false, true, true, false, true];
        let x: Vec<f64> = active.iter().map(|&b| b as u8 as f64).collect();
        let mut out = vec![0.0; 6];
        w.accumulate_active(&active, &mut out);
        let reference = dense.matvec(&x);
        for (a, b) in out.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn csc_rejects_non_finite_values() {
        let _ = CscWeights::from_triplets(2, 2, &[(0, 0, f64::INFINITY)]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn trevisan_rejects_non_finite_scale() {
        let _ = CscWeights::trevisan(&cycle(4), f64::NAN);
    }

    #[test]
    fn csc_from_triplets() {
        let w = CscWeights::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 5.0), (1, 0, -2.0)]);
        let d = w.to_dense();
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 0)], -2.0);
        assert_eq!(d[(1, 2)], 5.0);
        assert_eq!(w.row_sums(), vec![1.0, 3.0]);
    }

    #[test]
    fn packed_kernel_matches_bool_kernel() {
        // Packed word-scan accumulation is bit-for-bit equal to the
        // boolean path, dense and CSC, across activity patterns.
        let g = cycle(9);
        let csc = CscWeights::trevisan(&g, 0.7);
        let m = DMatrix::from_fn(9, 5, |i, a| (i as f64 - 3.0) * 0.31 + a as f64 * 0.17);
        let dense = DenseWeights::from_matrix_scaled(&m, 1.0);
        let mut out_bool = vec![0.0; 9];
        let mut out_packed = vec![0.0; 9];
        for pattern in 0u32..32 {
            let active9: Vec<bool> = (0..9).map(|i| (pattern >> (i % 5)) & 1 == 1).collect();
            csc.accumulate_active(&active9, &mut out_bool);
            csc.accumulate_words(&ActivityWords::from_bools(&active9), &mut out_packed);
            assert_eq!(out_bool, out_packed, "csc pattern {pattern}");
            let active5: Vec<bool> = (0..5).map(|a| (pattern >> a) & 1 == 1).collect();
            dense.accumulate_active(&active5, &mut out_bool);
            dense.accumulate_words(&ActivityWords::from_bools(&active5), &mut out_packed);
            assert_eq!(out_bool, out_packed, "dense pattern {pattern}");
        }
    }

    fn batch_matches_sequential<W: BatchWeights>(w: &W, states: &[ActivityWords]) {
        let n = w.neurons();
        let replicas = states.len();
        let mut plan = w.batch_plan();
        let mut batched = vec![0.0; n * replicas];
        w.accumulate_replicas(&mut plan, states, &mut batched);
        let mut single = vec![0.0; n];
        for (r, s) in states.iter().enumerate() {
            w.accumulate_words(s, &mut single);
            for i in 0..n {
                let k = if W::INTERLEAVED { i * replicas + r } else { r * n + i };
                assert_eq!(
                    single[i].to_bits(),
                    batched[k].to_bits(),
                    "replica {r} neuron {i}"
                );
            }
        }
    }

    fn replica_states(devices: usize, replicas: usize, salt: u64) -> Vec<ActivityWords> {
        (0..replicas)
            .map(|r| {
                let bits: Vec<bool> = (0..devices)
                    .map(|a| (a as u64 * 7 + r as u64 * 13 + salt).is_multiple_of(3))
                    .collect();
                ActivityWords::from_bools(&bits)
            })
            .collect()
    }

    #[test]
    fn dense_batch_pattern_mode_is_bit_exact() {
        // cols = 4 ≤ DENSE_PATTERN_COLS → memoized pattern-table path.
        let m = DMatrix::from_fn(11, 4, |i, a| (i * 4 + a) as f64 * 0.01 - 0.2);
        let w = DenseWeights::from_matrix_scaled(&m, 1.3);
        for salt in 0..4 {
            batch_matches_sequential(&w, &replica_states(4, 9, salt));
        }
    }

    #[test]
    fn dense_batch_scan_mode_is_bit_exact() {
        // cols = 9 > DENSE_PATTERN_COLS → amortized column-scan path.
        let m = DMatrix::from_fn(7, 9, |i, a| ((i + 2) * (a + 1)) as f64 * 0.003);
        let w = DenseWeights::from_matrix_scaled(&m, 1.0);
        assert!(w.batch_plan().table.is_empty());
        for salt in 0..4 {
            batch_matches_sequential(&w, &replica_states(9, 5, salt));
        }
    }

    #[test]
    fn csc_batch_is_bit_exact() {
        for g in [cycle(12), complete(6)] {
            let w = CscWeights::trevisan(&g, 0.9);
            for salt in 0..4 {
                batch_matches_sequential(&w, &replica_states(g.n(), 8, salt));
            }
        }
    }

    #[test]
    fn row_sums_agree_between_layouts() {
        let g = cycle(8);
        let csc = CscWeights::trevisan(&g, 1.0);
        let dense_m = g.trevisan_dense();
        let dense = DenseWeights::from_matrix_scaled(&dense_m, 1.0);
        let a = csc.row_sums();
        let b = dense.row_sums();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
