//! Device-driven network assemblies: the circuit motifs of Figs. 1 and 2.
//!
//! [`DeviceDrivenNetwork`] is the shared motif — a pool of stochastic
//! devices feeding a LIF population through a weight matrix. Thresholds are
//! placed at the analytic stationary means, so the spike/silent readout of
//! a neuron is the sign of its centered (Gaussian) membrane potential.
//!
//! [`TwoStageNetwork`] adds the LIF-Trevisan second stage: a single readout
//! neuron whose incoming weight vector is trained online with Oja's
//! anti-Hebbian rule. "The output of this Stage-2 neuron is discarded; what
//! matters is the weight vector w" (§IV.B) — the neuron is still simulated,
//! faithfully, and its output is indeed ignored.

use crate::lif::{LifParams, Reset};
use crate::parallel::ReplicaBatch;
use crate::plasticity::{LearningRate, OjaMinor, PlasticityRule};
use crate::population::LifPopulation;
use crate::synapse::{CscWeights, InputWeights};
use crate::theory;
use snc_devices::{CommonCause, DeviceModel, DevicePool, PoolSpec};
use snc_graph::Graph;
use snc_linalg::vector;

/// A pool of stochastic devices driving a LIF population through a weight
/// matrix — the core circuit motif.
#[derive(Clone, Debug)]
pub struct DeviceDrivenNetwork<W: InputWeights> {
    pool: DevicePool,
    weights: W,
    population: LifPopulation,
    current: Vec<f64>,
    means: Vec<f64>,
}

impl<W: InputWeights> DeviceDrivenNetwork<W> {
    /// Assembles the motif: thresholds are set to the analytic stationary
    /// means and membranes start at those means (the circuit begins at
    /// statistical equilibrium).
    ///
    /// # Panics
    ///
    /// Panics if the pool size differs from the weight matrix's device
    /// count.
    pub fn new(pool: DevicePool, weights: W, params: LifParams, reset: Reset) -> Self {
        assert_eq!(
            pool.len(),
            weights.devices(),
            "pool size must match weight columns"
        );
        let n = weights.neurons();
        let mut population = LifPopulation::new(n, params, reset);
        // Heterogeneous-device-aware means: ⟨V⟩ = mean_factor · W p.
        let ps = pool.stationary_ps();
        let mut means = vec![0.0; n];
        weights.apply(&ps, &mut means);
        let mf = theory::mean_factor(&params);
        for m in &mut means {
            *m *= mf;
        }
        population.set_thresholds(&means);
        population.set_potentials(&means);
        Self {
            pool,
            weights,
            population,
            current: vec![0.0; n],
            means,
        }
    }

    /// Number of neurons.
    pub fn neurons(&self) -> usize {
        self.weights.neurons()
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.weights.devices()
    }

    /// The analytic stationary means (also the spike thresholds).
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The weight matrix.
    pub fn weights(&self) -> &W {
        &self.weights
    }

    /// Membrane potentials after the most recent step.
    pub fn potentials(&self) -> &[f64] {
        self.population.potentials()
    }

    /// Spike flags after the most recent step (V above its mean).
    pub fn spiked(&self) -> &[bool] {
        self.population.spiked()
    }

    /// Advances devices and membranes one time step; returns spike flags.
    #[inline]
    pub fn step(&mut self) -> &[bool] {
        let states = self.pool.step();
        self.weights.accumulate_words(states, &mut self.current);
        self.population.step(&self.current)
    }

    /// Advances `k` steps (e.g. a decorrelation interval between samples).
    pub fn step_many(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Writes the mean-centered membrane potentials into `out`.
    pub fn centered_into(&self, out: &mut [f64]) {
        self.population.centered_into(&self.means, out);
    }
}

/// What stage-1 activity drives the plasticity rule.
///
/// The paper (Fig. 2 caption) says "the activity of the LIF neurons
/// drives synaptic plasticity" — readable either as the analog membrane
/// potentials or as the binary spike pattern. Both interpretations find
/// the Trevisan cut; the spike reading is coarser (the covariance of sign
/// variables is the arcsine-compressed Gaussian correlation, which
/// preserves the bipartition structure but perturbs interior eigenvector
/// values), and is exactly what a purely digital plasticity processor
/// would see.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlasticitySignal {
    /// Mean-centered membrane potentials (analog dendrites; default).
    #[default]
    CenteredPotential,
    /// Spike pattern as ±1 (digital readout; `spiked ⇒ +1`).
    SpikeSign,
}

/// Configuration for the LIF-Trevisan two-stage network.
#[derive(Clone, Copy, Debug)]
pub struct TwoStageConfig {
    /// Stage-1 membrane parameters.
    pub lif: LifParams,
    /// Stage-1 readout reset policy.
    pub reset: Reset,
    /// Learning-rate schedule for the anti-Hebbian rule.
    pub learning_rate: LearningRate,
    /// Apply a plasticity update every this many time steps (≥ 1).
    /// Spacing updates by about a membrane time constant decorrelates the
    /// plasticity samples.
    pub plasticity_interval: u64,
    /// Gain on the plasticity signal; `None` auto-normalizes so the signal
    /// covariance has O(1) scale (an amplifier between the stages).
    pub signal_gain: Option<f64>,
    /// Scale of the device→neuron weights (the paper: only ratios matter).
    pub weight_scale: f64,
    /// Which stage-1 activity feeds the plasticity rule.
    pub plasticity_signal: PlasticitySignal,
}

impl Default for TwoStageConfig {
    fn default() -> Self {
        Self {
            lif: LifParams::default(),
            reset: Reset::None,
            learning_rate: LearningRate::Decay { eta0: 0.05, t0: 20_000.0 },
            plasticity_interval: 10,
            signal_gain: None,
            weight_scale: 1.0,
            plasticity_signal: PlasticitySignal::CenteredPotential,
        }
    }
}

/// The plasticity-signal attenuation for a two-stage configuration.
///
/// Auto-gain: Oja's minor-component rule is stable only when the
/// input covariance spectrum lies strictly below 1 (the radial
/// direction of the flow is stable iff λ < 1, and components in
/// eigendirections with λ > 1 self-amplify). The centered membranes
/// have Cov = κ·scale²·M², and the Trevisan matrix obeys the
/// deterministic bound ‖M‖₂ ≤ 2, so a gain of √0.9 / (2·scale·√κ)
/// pins λ_max(Cov of the plasticity signal) ≤ 0.9 — stable with no
/// spectrum estimation, exactly the kind of fixed analog
/// attenuation a hardware implementation would bake in.
fn plasticity_gain(config: &TwoStageConfig) -> f64 {
    config.signal_gain.unwrap_or_else(|| match config.plasticity_signal {
        PlasticitySignal::CenteredPotential => {
            let kappa = theory::kappa(&config.lif, 0.5).max(1e-300);
            0.9f64.sqrt() / (2.0 * config.weight_scale.abs().max(1e-300) * kappa.sqrt())
        }
        // Sign variables have unit variance; their correlation matrix
        // is the arcsine compression of the Gaussian one, whose
        // spectral norm stays below ‖M‖²/min diag(M²) ≤ 4, so the same
        // factor-2 attenuation keeps Oja's rule stable.
        PlasticitySignal::SpikeSign => 0.9f64.sqrt() / 2.0,
    })
}

/// Deterministic random unit start for the plastic vector; a pure function
/// of `(n, seed)` shared by the sequential and batched networks.
fn initial_readout_weights(n: usize, seed: u64) -> Vec<f64> {
    use snc_devices::{Rng64, Xoshiro256pp};
    let mut rng = Xoshiro256pp::new(seed ^ 0x0DA2);
    let mut w: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
    if vector::normalize(&mut w) == 0.0 {
        w[0] = 1.0;
    }
    w
}

/// Synaptic saturation guard: physical weights cannot grow without
/// bound, so clamp a (rare, transient) runaway back to unit norm,
/// and restart from a fixed direction on numerical wipe-out.
fn saturation_guard(w: &mut [f64]) {
    let norm2 = vector::norm_sq(w);
    if !norm2.is_finite() {
        for (i, wi) in w.iter_mut().enumerate() {
            *wi = if i == 0 { 1.0 } else { 0.0 };
        }
    } else if norm2 > 4.0 {
        vector::scale(w, 1.0 / norm2.sqrt());
    }
}

/// The LIF-Trevisan circuit (Fig. 2): n devices → n LIF neurons (weights ∝
/// the Trevisan matrix) → one plastic readout neuron trained with Oja's
/// anti-Hebbian rule. The solution is read from the *weight vector*, not
/// the output neuron.
#[derive(Clone, Debug)]
pub struct TwoStageNetwork {
    stage1: DeviceDrivenNetwork<CscWeights>,
    readout_weights: Vec<f64>,
    rule: OjaMinor,
    learning_rate: LearningRate,
    plasticity_interval: u64,
    stage2: LifPopulation,
    centered: Vec<f64>,
    gain: f64,
    signal: PlasticitySignal,
    steps: u64,
    updates: u64,
}

impl TwoStageNetwork {
    /// Builds the circuit for a graph with fair-coin devices.
    pub fn new(graph: &Graph, seed: u64, config: TwoStageConfig) -> Self {
        Self::with_devices(graph, DeviceModel::fair(), None, seed, config)
    }

    /// Builds the circuit for a *weighted* graph (weighted Trevisan matrix
    /// as the synaptic program, fair-coin devices).
    pub fn new_weighted(
        graph: &snc_graph::WeightedGraph,
        seed: u64,
        config: TwoStageConfig,
    ) -> Self {
        let weights = CscWeights::trevisan_weighted(graph, config.weight_scale);
        Self::from_weights(weights, DeviceModel::fair(), None, seed, config)
    }

    /// Builds the circuit with a custom device model and optional
    /// common-cause correlation (for the robustness experiments).
    pub fn with_devices(
        graph: &Graph,
        model: DeviceModel,
        common_cause: Option<CommonCause>,
        seed: u64,
        config: TwoStageConfig,
    ) -> Self {
        let weights = CscWeights::trevisan(graph, config.weight_scale);
        Self::from_weights(weights, model, common_cause, seed, config)
    }

    /// Builds the circuit from an explicit (square) synaptic weight matrix
    /// whose spectral norm is at most `2·weight_scale` — the contract the
    /// plasticity auto-gain relies on. Both Trevisan constructors satisfy
    /// it by construction.
    ///
    /// # Panics
    ///
    /// Panics if the weight matrix is not square.
    pub fn from_weights(
        weights: CscWeights,
        model: DeviceModel,
        common_cause: Option<CommonCause>,
        seed: u64,
        config: TwoStageConfig,
    ) -> Self {
        assert_eq!(
            weights.neurons(),
            weights.devices(),
            "two-stage circuit needs one device per neuron"
        );
        let n = weights.neurons();
        let mut spec = PoolSpec::uniform(model, n);
        if let Some(cc) = common_cause {
            spec = spec.with_common_cause(cc);
        }
        let pool = DevicePool::new(spec, seed);
        let stage1 = DeviceDrivenNetwork::new(pool, weights, config.lif, config.reset);

        let gain = plasticity_gain(&config);
        let readout_weights = initial_readout_weights(n, seed);

        Self {
            stage1,
            readout_weights,
            rule: OjaMinor,
            learning_rate: config.learning_rate,
            plasticity_interval: config.plasticity_interval.max(1),
            stage2: LifPopulation::new(1, config.lif, Reset::None),
            centered: vec![0.0; n],
            gain,
            signal: config.plasticity_signal,
            steps: 0,
            updates: 0,
        }
    }

    /// Number of graph vertices / stage-1 neurons.
    pub fn n(&self) -> usize {
        self.stage1.neurons()
    }

    /// Total time steps simulated.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Plasticity updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The plastic readout weight vector `w` — sign-thresholding it gives
    /// the circuit's current cut hypothesis.
    pub fn readout_weights(&self) -> &[f64] {
        &self.readout_weights
    }

    /// The stage-1 network (for inspection).
    pub fn stage1(&self) -> &DeviceDrivenNetwork<CscWeights> {
        &self.stage1
    }

    /// Advances one time step; applies plasticity on schedule. Returns the
    /// stage-2 activation `y` when an update happened.
    pub fn step(&mut self) -> Option<f64> {
        self.stage1.step();
        self.steps += 1;
        if !self.steps.is_multiple_of(self.plasticity_interval) {
            return None;
        }
        match self.signal {
            PlasticitySignal::CenteredPotential => {
                self.stage1.centered_into(&mut self.centered);
            }
            PlasticitySignal::SpikeSign => {
                for (c, &spiked) in self.centered.iter_mut().zip(self.stage1.spiked()) {
                    *c = if spiked { 1.0 } else { -1.0 };
                }
            }
        }
        if self.gain != 1.0 {
            vector::scale(&mut self.centered, self.gain);
        }
        let eta = self.learning_rate.at(self.updates);
        let y = self.rule.update(&mut self.readout_weights, &self.centered, eta);
        self.updates += 1;
        saturation_guard(&mut self.readout_weights);
        // Stage-2 neuron: receives the readout current; its spikes are
        // deliberately ignored (§IV.B).
        self.stage2.step(&[y]);
        Some(y)
    }

    /// Runs until `updates` plasticity updates have been applied.
    pub fn run_updates(&mut self, updates: u64) {
        let target = self.updates + updates;
        while self.updates < target {
            self.step();
        }
    }
}

/// `R` replicas of the LIF-Trevisan two-stage circuit advanced in
/// lock-step, structure-of-arrays.
///
/// Stage 1 (devices → Trevisan weights → LIF membranes) runs on a
/// [`ReplicaBatch`], so the sparse weight matrix is traversed once per time
/// step for all replicas. Stage 2 keeps the plastic readout vectors
/// replica-major (`w[r·n ..][..n]`) and applies the Oja anti-Hebbian update
/// to every replica in one SoA pass
/// ([`PlasticityRule::update_replicas`]); the `R` output neurons are one
/// shared [`LifPopulation`].
///
/// Replica `r`'s trajectory — membranes, plasticity signal, readout weight
/// vector, stage-2 activations — is bit-for-bit identical to
/// `TwoStageNetwork` built from the same spec with seed `seeds[r]`:
/// batching changes the schedule, never the numbers. The equivalence tests
/// in this module pin that for both reset modes and both plasticity
/// signals.
///
/// # Examples
///
/// ```
/// use snc_graph::generators::structured::cycle;
/// use snc_neuro::{BatchedTwoStageNetwork, TwoStageConfig};
///
/// let g = cycle(8);
/// let mut batch = BatchedTwoStageNetwork::new(&g, &[1, 2, 3], TwoStageConfig::default());
/// batch.run_updates(10);
/// assert_eq!((batch.replicas(), batch.n(), batch.updates()), (3, 8, 10));
/// // Replica 2's plastic readout vector; its signs are the cut hypothesis.
/// assert_eq!(batch.readout_weights(2).len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct BatchedTwoStageNetwork {
    stage1: ReplicaBatch<CscWeights>,
    /// Plastic readout vectors, replica-major: `w[r * n + i]`.
    readout_weights: Vec<f64>,
    rule: OjaMinor,
    learning_rate: LearningRate,
    plasticity_interval: u64,
    /// The `R` stage-2 output neurons as one population (their spikes are
    /// simulated faithfully and ignored, as in the sequential circuit).
    stage2: LifPopulation,
    /// Plasticity-signal scratch, same layout as `readout_weights`.
    centered: Vec<f64>,
    /// Stage-2 activation scratch, one per replica.
    ys: Vec<f64>,
    /// Spike-readout scratch for the `SpikeSign` signal, one replica lane.
    spikes: Vec<bool>,
    gain: f64,
    signal: PlasticitySignal,
    steps: u64,
    updates: u64,
}

impl BatchedTwoStageNetwork {
    /// Builds one replica per seed for a graph with fair-coin devices —
    /// the batched [`TwoStageNetwork::new`].
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn new(graph: &Graph, seeds: &[u64], config: TwoStageConfig) -> Self {
        Self::with_devices(graph, DeviceModel::fair(), None, seeds, config)
    }

    /// Builds the replicas with a custom device model and optional
    /// common-cause correlation — the batched
    /// [`TwoStageNetwork::with_devices`].
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn with_devices(
        graph: &Graph,
        model: DeviceModel,
        common_cause: Option<CommonCause>,
        seeds: &[u64],
        config: TwoStageConfig,
    ) -> Self {
        let weights = CscWeights::trevisan(graph, config.weight_scale);
        Self::from_weights(weights, model, common_cause, seeds, config)
    }

    /// Builds the replicas from an explicit square synaptic weight matrix —
    /// the batched [`TwoStageNetwork::from_weights`], with the same
    /// spectral-norm contract on `weights`.
    ///
    /// # Panics
    ///
    /// Panics if the weight matrix is not square or `seeds` is empty.
    pub fn from_weights(
        weights: CscWeights,
        model: DeviceModel,
        common_cause: Option<CommonCause>,
        seeds: &[u64],
        config: TwoStageConfig,
    ) -> Self {
        assert_eq!(
            weights.neurons(),
            weights.devices(),
            "two-stage circuit needs one device per neuron"
        );
        let n = weights.neurons();
        let replicas = seeds.len();
        let mut spec = PoolSpec::uniform(model, n);
        if let Some(cc) = common_cause {
            spec = spec.with_common_cause(cc);
        }
        let stage1 = ReplicaBatch::new(spec, seeds, weights, config.lif, config.reset);
        let gain = plasticity_gain(&config);
        let mut readout_weights = Vec::with_capacity(n * replicas);
        for &seed in seeds {
            readout_weights.extend(initial_readout_weights(n, seed));
        }
        Self {
            stage1,
            readout_weights,
            rule: OjaMinor,
            learning_rate: config.learning_rate,
            plasticity_interval: config.plasticity_interval.max(1),
            stage2: LifPopulation::new(replicas, config.lif, Reset::None),
            centered: vec![0.0; n * replicas],
            ys: vec![0.0; replicas],
            spikes: vec![false; n],
            gain,
            signal: config.plasticity_signal,
            steps: 0,
            updates: 0,
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.ys.len()
    }

    /// Number of graph vertices / stage-1 neurons per replica.
    pub fn n(&self) -> usize {
        self.stage1.neurons()
    }

    /// Lock-steps simulated so far (shared by all replicas).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Plasticity updates applied so far (shared by all replicas).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Replica `r`'s plastic readout weight vector — sign-thresholding it
    /// gives that replica's current cut hypothesis.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn readout_weights(&self, r: usize) -> &[f64] {
        let n = self.n();
        assert!(r < self.replicas(), "replica index out of range");
        &self.readout_weights[r * n..(r + 1) * n]
    }

    /// The stage-1 replica batch (for inspection).
    pub fn stage1(&self) -> &ReplicaBatch<CscWeights> {
        &self.stage1
    }

    /// Advances every replica one time step; applies plasticity on
    /// schedule. Returns the stage-2 activations (one per replica) when an
    /// update happened.
    pub fn step(&mut self) -> Option<&[f64]> {
        self.stage1.step();
        self.steps += 1;
        if !self.steps.is_multiple_of(self.plasticity_interval) {
            return None;
        }
        let n = self.n();
        match self.signal {
            PlasticitySignal::CenteredPotential => {
                // Layout-neutral bulk readout; each element is the exact
                // `LifPopulation::centered_into` expression.
                self.stage1.centered_into(&mut self.centered);
            }
            PlasticitySignal::SpikeSign => {
                for (r, lane) in self.centered.chunks_exact_mut(n).enumerate() {
                    self.stage1.spiked_into(r, &mut self.spikes);
                    for (c, &spiked) in lane.iter_mut().zip(&self.spikes) {
                        *c = if spiked { 1.0 } else { -1.0 };
                    }
                }
            }
        }
        if self.gain != 1.0 {
            vector::scale(&mut self.centered, self.gain);
        }
        // Lock-stepped replicas share the update index, hence the rate.
        let eta = self.learning_rate.at(self.updates);
        self.rule
            .update_replicas(&mut self.readout_weights, &self.centered, eta, &mut self.ys);
        self.updates += 1;
        for lane in self.readout_weights.chunks_exact_mut(n) {
            saturation_guard(lane);
        }
        // Stage-2 neurons: receive the readout currents; their spikes are
        // deliberately ignored (§IV.B).
        self.stage2.step(&self.ys);
        Some(&self.ys)
    }

    /// Runs until `updates` plasticity updates have been applied to every
    /// replica.
    pub fn run_updates(&mut self, updates: u64) {
        let target = self.updates + updates;
        while self.updates < target {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synapse::DenseWeights;
    use snc_graph::generators::structured::{complete_bipartite, cycle};
    use snc_linalg::DMatrix;

    fn fair_pool(r: usize, seed: u64) -> DevicePool {
        DevicePool::new(PoolSpec::uniform(DeviceModel::fair(), r), seed)
    }

    #[test]
    fn network_dimensions_and_means() {
        let w = DenseWeights::from_matrix_scaled(
            &DMatrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5]]),
            1.0,
        );
        let net = DeviceDrivenNetwork::new(fair_pool(2, 1), w, LifParams::default(), Reset::None);
        assert_eq!(net.neurons(), 2);
        assert_eq!(net.devices(), 2);
        // mean = R · p · row_sum = 1 · 0.5 · rowsum.
        assert!((net.means()[0] - 0.5).abs() < 1e-12);
        assert!((net.means()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spike_rate_is_half_at_mean_threshold() {
        // Threshold at the stationary mean ⇒ spike probability ≈ 1/2.
        let w = DenseWeights::from_matrix_scaled(
            &DMatrix::from_rows(&[&[1.0, 0.3, -0.4], &[-0.2, 0.8, 0.1]]),
            1.0,
        );
        let mut net =
            DeviceDrivenNetwork::new(fair_pool(3, 2), w, LifParams::default(), Reset::None);
        net.step_many(500); // warmup
        let mut counts = [0u32; 2];
        let steps = 20_000;
        for _ in 0..steps {
            // Space samples a decorrelation interval apart.
            net.step_many(10);
            let s = net.step();
            counts[0] += s[0] as u32;
            counts[1] += s[1] as u32;
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / steps as f64;
            assert!((rate - 0.5).abs() < 0.05, "neuron {i} rate {rate}");
        }
    }

    #[test]
    #[should_panic(expected = "pool size")]
    fn mismatched_pool_panics() {
        let w = DenseWeights::from_matrix_scaled(&DMatrix::from_rows(&[&[1.0, 0.0]]), 1.0);
        let _ = DeviceDrivenNetwork::new(fair_pool(3, 1), w, LifParams::default(), Reset::None);
    }

    #[test]
    fn two_stage_learns_bipartite_cut() {
        // On K_{3,3} the Trevisan minimum eigenvector separates the parts;
        // the learned weight vector's signs must match the bipartition.
        let g = complete_bipartite(3, 3);
        let mut net = TwoStageNetwork::new(&g, 7, TwoStageConfig::default());
        net.run_updates(30_000);
        let w = net.readout_weights();
        let side0: Vec<bool> = w.iter().map(|&x| x > 0.0).collect();
        // All of part A on one side, part B on the other.
        assert_eq!(side0[0], side0[1]);
        assert_eq!(side0[0], side0[2]);
        assert_eq!(side0[3], side0[4]);
        assert_eq!(side0[3], side0[5]);
        assert_ne!(side0[0], side0[3], "w = {w:?}");
        // Norm stabilized near 1.
        assert!((vector::norm(w) - 1.0).abs() < 0.2, "norm={}", vector::norm(w));
    }

    #[test]
    fn two_stage_bookkeeping() {
        let g = cycle(6);
        let mut net = TwoStageNetwork::new(&g, 3, TwoStageConfig::default());
        assert_eq!(net.n(), 6);
        net.run_updates(5);
        assert_eq!(net.updates(), 5);
        assert_eq!(net.steps(), 5 * 10); // default plasticity_interval = 10
    }

    #[test]
    fn spike_sign_plasticity_learns_bipartite_cut() {
        // The digital reading of "LIF activity drives plasticity": the
        // Oja rule sees only ±1 spike patterns, whose arcsine-compressed
        // covariance preserves the bipartition eigenstructure exactly on
        // bipartite graphs.
        let g = complete_bipartite(3, 3);
        let cfg = TwoStageConfig {
            plasticity_signal: PlasticitySignal::SpikeSign,
            ..TwoStageConfig::default()
        };
        let mut net = TwoStageNetwork::new(&g, 17, cfg);
        net.run_updates(30_000);
        let w = net.readout_weights();
        let side0: Vec<bool> = w.iter().map(|&x| x > 0.0).collect();
        assert_eq!(side0[0], side0[1]);
        assert_eq!(side0[0], side0[2]);
        assert_eq!(side0[3], side0[4]);
        assert_eq!(side0[3], side0[5]);
        assert_ne!(side0[0], side0[3], "w = {w:?}");
    }

    #[test]
    fn two_stage_deterministic() {
        let g = cycle(8);
        let mut a = TwoStageNetwork::new(&g, 11, TwoStageConfig::default());
        let mut b = TwoStageNetwork::new(&g, 11, TwoStageConfig::default());
        a.run_updates(100);
        b.run_updates(100);
        assert_eq!(a.readout_weights(), b.readout_weights());
    }

    /// The tentpole contract: every batched replica's full trajectory —
    /// stage-2 activations and readout weight vectors at every plasticity
    /// update — is bit-for-bit the sequential `TwoStageNetwork`'s with the
    /// same seed.
    fn assert_batched_two_stage_equals_sequential(cfg: TwoStageConfig, seeds: &[u64], steps: u64) {
        let g = gnp_like_graph();
        let mut batch = BatchedTwoStageNetwork::new(&g, seeds, cfg);
        let mut nets: Vec<TwoStageNetwork> = seeds
            .iter()
            .map(|&s| TwoStageNetwork::new(&g, s, cfg))
            .collect();
        for t in 0..steps {
            let ys = batch.step().map(<[f64]>::to_vec);
            for (r, net) in nets.iter_mut().enumerate() {
                let y = net.step();
                match (&ys, y) {
                    (Some(ys), Some(y)) => {
                        assert_eq!(y.to_bits(), ys[r].to_bits(), "y at t={t} r={r}")
                    }
                    (None, None) => {}
                    _ => panic!("plasticity schedule diverged at t={t} r={r}"),
                }
                for (i, (a, b)) in batch
                    .readout_weights(r)
                    .iter()
                    .zip(net.readout_weights())
                    .enumerate()
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "w at t={t} r={r} i={i}");
                }
            }
        }
        assert_eq!(batch.steps(), steps);
        assert_eq!(batch.updates(), nets[0].updates());
    }

    /// A small irregular graph (cycle + chords) so degrees differ.
    fn gnp_like_graph() -> Graph {
        let mut edges: Vec<(u32, u32)> = (0..9u32).map(|i| (i, (i + 1) % 9)).collect();
        edges.extend([(0, 4), (2, 7), (3, 8)]);
        Graph::from_edges(9, &edges).unwrap()
    }

    #[test]
    fn batched_two_stage_matches_sequential_no_reset() {
        let seeds: Vec<u64> = (0..5u64).map(|i| 0x2757 + 41 * i).collect();
        assert_batched_two_stage_equals_sequential(TwoStageConfig::default(), &seeds, 120);
    }

    #[test]
    fn batched_two_stage_matches_sequential_with_reset() {
        let cfg = TwoStageConfig {
            reset: Reset::ToValue(0.0),
            ..TwoStageConfig::default()
        };
        let seeds: Vec<u64> = (0..4u64).map(|i| 0xB0B + 7 * i).collect();
        assert_batched_two_stage_equals_sequential(cfg, &seeds, 150);
    }

    #[test]
    fn batched_two_stage_matches_sequential_spike_sign() {
        for reset in [Reset::None, Reset::ToValue(0.0)] {
            let cfg = TwoStageConfig {
                plasticity_signal: PlasticitySignal::SpikeSign,
                reset,
                ..TwoStageConfig::default()
            };
            assert_batched_two_stage_equals_sequential(cfg, &[3, 17, 99], 100);
        }
    }

    #[test]
    fn batched_two_stage_single_replica_degenerates() {
        // R = 1 must be exactly the sequential network.
        assert_batched_two_stage_equals_sequential(TwoStageConfig::default(), &[42], 80);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn batched_two_stage_empty_seeds_panics() {
        let g = cycle(4);
        let _ = BatchedTwoStageNetwork::new(&g, &[], TwoStageConfig::default());
    }
}
