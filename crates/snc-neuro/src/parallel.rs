//! Parallel replica execution.
//!
//! Sampling from a stochastic circuit is embarrassingly parallel: replicas
//! of the same network with different device seeds explore independent
//! sample streams (the hardware analogy is simply more circuits). This
//! module runs `count` replicas across `threads` OS threads with
//! deterministic results: replica `i` always computes `f(i)`, so the output
//! is invariant to the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0), …, f(count−1)` across at most `threads` worker threads and
/// returns the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven replica
/// costs balance automatically. `threads == 1` degenerates to a plain loop.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_replicas<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(count);
    if threads == 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed index")
        })
        .collect()
}

/// A sensible default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let out = run_replicas(16, 4, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let a = run_replicas(9, 1, |i| i as u64 + 100);
        let b = run_replicas(9, 3, |i| i as u64 + 100);
        let c = run_replicas(9, 32, |i| i as u64 + 100);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn empty_and_single() {
        assert!(run_replicas(0, 4, |i| i).is_empty());
        assert_eq!(run_replicas(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn uneven_work_balances() {
        // Replica 0 is heavy; others light. All must complete.
        let out = run_replicas(8, 4, |i| {
            if i == 0 {
                (0..200_000u64).sum::<u64>()
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[3], 3);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
