//! Parallel and batched replica execution.
//!
//! Sampling from a stochastic circuit is embarrassingly parallel: replicas
//! of the same network with different device seeds explore independent
//! sample streams (the hardware analogy is simply more circuits). This
//! module provides two complementary ways to exploit that:
//!
//! * [`run_replicas`] — run `count` independent jobs across `threads` OS
//!   threads with deterministic results: replica `i` always computes
//!   `f(i)`, so the output is invariant to the thread count.
//! * [`ReplicaBatch`] — advance `R` replicas of the *same* circuit in
//!   lock-step on one core, structure-of-arrays, so each traversal of the
//!   weight matrix serves every replica at once. Replica trajectories are
//!   bit-for-bit identical to stepping `R` independent
//!   [`DeviceDrivenNetwork`](crate::DeviceDrivenNetwork)s with the same
//!   seeds — batching changes the schedule, never the numbers.
//!
//! The two compose: a thread pool of `ReplicaBatch`es is the full
//! replicas = threads × batch-width layout.

use crate::lif::{LifParams, Reset};
use crate::synapse::BatchWeights;
use crate::theory;
use snc_devices::{ActivityWords, DevicePool, PoolSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0), …, f(count−1)` across at most `threads` worker threads and
/// returns the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven replica
/// costs balance automatically. `threads == 1` degenerates to a plain loop.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_replicas<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(count);
    if threads == 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed index")
        })
        .collect()
}

/// A sensible default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// `R` replicas of one device-driven circuit advanced in lock-step,
/// structure-of-arrays.
///
/// Every replica shares the same weight matrix, membrane parameters, and
/// thresholds; only the device seeds differ. Membranes are stored in the
/// weight type's batched layout ([`BatchWeights::INTERLEAVED`]):
/// replica-major (`v[r * n + i]`, dense weights) or neuron-major
/// interleaved (`v[i * R + r]`, CSC weights). Either way, one pass over
/// the weight matrix per time step feeds all replicas
/// ([`BatchWeights::accumulate_replicas`]) and the fused decay–accumulate
/// membrane update runs over one contiguous buffer.
///
/// Trajectories are bit-for-bit identical to `R` independent
/// [`DeviceDrivenNetwork`](crate::DeviceDrivenNetwork)s constructed from
/// the same pool spec and seeds: the per-replica RNG streams, the
/// ascending-column accumulation order, and the membrane update expression
/// are all preserved exactly.
///
/// # Examples
///
/// ```
/// use snc_devices::{DeviceModel, PoolSpec};
/// use snc_linalg::DMatrix;
/// use snc_neuro::parallel::ReplicaBatch;
/// use snc_neuro::{DenseWeights, LifParams, Reset};
///
/// // 3 neurons driven by 2 devices, 4 replicas with seeds 0..4.
/// let m = DMatrix::from_rows(&[&[1.0, 0.2], &[-0.4, 0.9], &[0.3, 0.3]]);
/// let weights = DenseWeights::from_matrix_scaled(&m, 1.0);
/// let spec = PoolSpec::uniform(DeviceModel::fair(), 2);
/// let mut batch = ReplicaBatch::new(spec, &[0, 1, 2, 3], weights,
///                                   LifParams::default(), Reset::None);
/// batch.step_many(100);
/// assert_eq!((batch.replicas(), batch.neurons()), (4, 3));
/// // Read replica 2's spike pattern.
/// let mut spikes = vec![false; 3];
/// batch.spiked_into(2, &mut spikes);
/// ```
#[derive(Clone, Debug)]
pub struct ReplicaBatch<W: BatchWeights> {
    pools: Vec<DevicePool>,
    weights: W,
    plan: W::Plan,
    params: LifParams,
    reset: Reset,
    /// Per-neuron thresholds (= analytic stationary means), shared by all
    /// replicas.
    means: Vec<f64>,
    /// Membranes, in the weight type's batched layout
    /// ([`BatchWeights::INTERLEAVED`]): `v[r * neurons + i]`
    /// (replica-major) or `v[i * replicas + r]` (interleaved).
    v: Vec<f64>,
    /// Synaptic currents, same layout as `v`.
    current: Vec<f64>,
    /// Spike flags recorded during the step (reset modes only, where the
    /// pre-reset membrane is not recoverable afterwards); same layout.
    spiked: Vec<bool>,
    /// Per-replica packed device states for the current step.
    states: Vec<ActivityWords>,
    steps: u64,
}

impl<W: BatchWeights> ReplicaBatch<W> {
    /// Builds `seeds.len()` replicas of the circuit motif: pools from the
    /// shared `spec` (one per seed), thresholds at the analytic stationary
    /// means, membranes starting at those means — exactly the
    /// [`DeviceDrivenNetwork`](crate::DeviceDrivenNetwork) initial state,
    /// replicated.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or the spec size differs from the weight
    /// matrix's device count.
    pub fn new(spec: PoolSpec, seeds: &[u64], weights: W, params: LifParams, reset: Reset) -> Self {
        assert!(!seeds.is_empty(), "at least one replica seed required");
        assert_eq!(
            spec.len(),
            weights.devices(),
            "pool size must match weight columns"
        );
        let pools: Vec<DevicePool> = seeds
            .iter()
            .map(|&s| DevicePool::new(spec.clone(), s))
            .collect();
        let n = weights.neurons();
        let replicas = pools.len();
        // All pools share one spec, so their stationary probabilities (and
        // hence the analytic means) are identical; compute once.
        let ps = pools[0].stationary_ps();
        let mut means = vec![0.0; n];
        weights.apply(&ps, &mut means);
        let mf = theory::mean_factor(&params);
        for m in &mut means {
            *m *= mf;
        }
        let mut v = vec![0.0; n * replicas];
        if W::INTERLEAVED {
            for (group, &m) in v.chunks_exact_mut(replicas).zip(&means) {
                group.fill(m);
            }
        } else {
            for lane in v.chunks_exact_mut(n) {
                lane.copy_from_slice(&means);
            }
        }
        let states = vec![ActivityWords::zeros(spec.len()); replicas];
        let plan = weights.batch_plan();
        Self {
            pools,
            weights,
            plan,
            params,
            reset,
            means,
            v,
            current: vec![0.0; n * replicas],
            spiked: vec![false; n * replicas],
            states,
            steps: 0,
        }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.pools.len()
    }

    /// Number of neurons per replica.
    pub fn neurons(&self) -> usize {
        self.means.len()
    }

    /// Number of devices per replica.
    pub fn devices(&self) -> usize {
        self.weights.devices()
    }

    /// Lock-steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The analytic stationary means (= spike thresholds), shared by all
    /// replicas.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The shared weight matrix.
    pub fn weights(&self) -> &W {
        &self.weights
    }

    /// Raw membrane storage in the weight type's batched layout:
    /// `potentials()[r * neurons() + i]` when
    /// [`BatchWeights::INTERLEAVED`] is false, `potentials()[i *
    /// replicas() + r]` when it is true. Prefer
    /// [`ReplicaBatch::potential`] / [`ReplicaBatch::centered_into`],
    /// which hide the layout.
    pub fn potentials(&self) -> &[f64] {
        &self.v
    }

    /// The membrane potential of neuron `i` in replica `r`.
    pub fn potential(&self, i: usize, r: usize) -> f64 {
        assert!(r < self.replicas(), "replica index out of range");
        assert!(i < self.neurons(), "neuron index out of range");
        self.v[self.index(i, r)]
    }

    /// The storage index of neuron `i` in replica `r` for the active
    /// layout.
    #[inline]
    fn index(&self, i: usize, r: usize) -> usize {
        if W::INTERLEAVED {
            i * self.replicas() + r
        } else {
            r * self.neurons() + i
        }
    }

    /// Writes every replica's mean-centered membrane potentials into
    /// `out`, **replica-major** (`out[r * neurons() + i] = V_{i,r} −
    /// means[i]`) regardless of the internal layout — the layout-neutral
    /// bulk readout (each element is the exact
    /// `LifPopulation::centered_into` expression).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != neurons() * replicas()`.
    pub fn centered_into(&self, out: &mut [f64]) {
        let n = self.neurons();
        let replicas = self.replicas();
        assert_eq!(out.len(), n * replicas, "centered buffer length");
        if W::INTERLEAVED {
            for (i, (group, &m)) in self.v.chunks_exact(replicas).zip(&self.means).enumerate() {
                for (r, &vv) in group.iter().enumerate() {
                    out[r * n + i] = vv - m;
                }
            }
        } else {
            for (o_lane, v_lane) in out.chunks_exact_mut(n).zip(self.v.chunks_exact(n)) {
                for ((o, &vv), &m) in o_lane.iter_mut().zip(v_lane).zip(&self.means) {
                    *o = vv - m;
                }
            }
        }
    }

    /// Writes replica `r`'s spike flags from the most recent step into
    /// `out`.
    ///
    /// With [`Reset::None`] spikes are a pure readout (`V > threshold`)
    /// of the membranes, so they are computed on demand here instead of
    /// on every step — one of the batched stepper's savings over the
    /// sequential network, with identical readouts at every step. With
    /// [`Reset::ToValue`] the pre-reset membrane is gone after the step,
    /// so the flags recorded during the step are returned — again exactly
    /// the sequential `LifPopulation::step` readout.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != neurons()` or `r` is out of range.
    pub fn spiked_into(&self, r: usize, out: &mut [bool]) {
        let n = self.neurons();
        let replicas = self.replicas();
        assert!(r < replicas, "replica index out of range");
        assert_eq!(out.len(), n, "spike buffer length");
        match self.reset {
            Reset::None if W::INTERLEAVED => {
                for ((o, group), &thr) in out
                    .iter_mut()
                    .zip(self.v.chunks_exact(replicas))
                    .zip(&self.means)
                {
                    *o = group[r] > thr;
                }
            }
            Reset::None => {
                let lane = &self.v[r * n..(r + 1) * n];
                for ((o, &v), &thr) in out.iter_mut().zip(lane).zip(&self.means) {
                    *o = v > thr;
                }
            }
            Reset::ToValue(_) if W::INTERLEAVED => {
                for (o, group) in out.iter_mut().zip(self.spiked.chunks_exact(replicas)) {
                    *o = group[r];
                }
            }
            Reset::ToValue(_) => {
                out.copy_from_slice(&self.spiked[r * n..(r + 1) * n]);
            }
        }
    }

    /// Advances every replica one time step.
    #[inline]
    pub fn step(&mut self) {
        for (pool, state) in self.pools.iter_mut().zip(self.states.iter_mut()) {
            state.copy_from(pool.step());
        }
        let decay = self.params.decay();
        let gain = self.params.input_gain();
        // Fused fast path: when the kernel memoizes per-pattern current
        // rows (dense weights at SDP rank), read the currents in place —
        // no intermediate buffer is written at all. Availability is
        // plan-wide (state-independent), so probing one replica decides
        // for all. Only valid without reset feedback, and only in the
        // replica-major layout memoized rows are stored in.
        if !W::INTERLEAVED
            && matches!(self.reset, Reset::None)
            && self
                .weights
                .memoized_row(&self.plan, &self.states[0])
                .is_some()
        {
            let n = self.means.len();
            for (r, state) in self.states.iter().enumerate() {
                let row = self
                    .weights
                    .memoized_row(&self.plan, state)
                    .expect("memoized_row availability is state-independent");
                let lane = &mut self.v[r * n..(r + 1) * n];
                for (v, &i_in) in lane.iter_mut().zip(row) {
                    *v = decay * *v + gain * i_in;
                }
            }
            self.steps += 1;
            return;
        }
        self.weights
            .accumulate_replicas(&mut self.plan, &self.states, &mut self.current);
        match self.reset {
            Reset::None => {
                // Same update expression as `LifPopulation::step`; the
                // threshold readout is deferred to `spiked_into` because
                // without reset it cannot feed back into the dynamics.
                for (v, &i_in) in self.v.iter_mut().zip(&self.current) {
                    *v = decay * *v + gain * i_in;
                }
            }
            Reset::ToValue(rv) if W::INTERLEAVED => {
                // Interleaved: one R-lane group per neuron, all sharing
                // that neuron's threshold.
                let replicas = self.pools.len();
                for ((group, cur), (spk_group, &thr)) in self
                    .v
                    .chunks_exact_mut(replicas)
                    .zip(self.current.chunks_exact(replicas))
                    .zip(self.spiked.chunks_exact_mut(replicas).zip(&self.means))
                {
                    for ((v, &i_in), spk) in group.iter_mut().zip(cur).zip(spk_group) {
                        let mut vv = decay * *v + gain * i_in;
                        *spk = vv > thr;
                        if *spk {
                            vv = rv;
                        }
                        *v = vv;
                    }
                }
            }
            Reset::ToValue(rv) => {
                let n = self.means.len();
                for ((lane, cur), spk_lane) in self
                    .v
                    .chunks_exact_mut(n)
                    .zip(self.current.chunks_exact(n))
                    .zip(self.spiked.chunks_exact_mut(n))
                {
                    for (((v, &i_in), &thr), spk) in
                        lane.iter_mut().zip(cur).zip(&self.means).zip(spk_lane)
                    {
                        let mut vv = decay * *v + gain * i_in;
                        // Record the pre-reset threshold crossing: this is
                        // the spike flag the sequential population reports.
                        *spk = vv > thr;
                        if *spk {
                            vv = rv;
                        }
                        *v = vv;
                    }
                }
            }
        }
        self.steps += 1;
    }

    /// Advances every replica `k` time steps.
    pub fn step_many(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DeviceDrivenNetwork;
    use crate::synapse::{CscWeights, DenseWeights, InputWeights};
    use snc_devices::DeviceModel;
    use snc_graph::generators::structured::cycle;
    use snc_linalg::DMatrix;

    /// Batched trajectories must be bit-for-bit equal to independent
    /// sequential networks with the same seeds: membranes and spikes.
    fn assert_batch_equals_sequential<W>(spec: PoolSpec, weights: W, reset: Reset, steps: u64)
    where
        W: BatchWeights + Clone,
    {
        let seeds: Vec<u64> = (0..7u64).map(|i| 0xA5A5 + i * 31).collect();
        let params = LifParams::default();
        let mut batch = ReplicaBatch::new(spec.clone(), &seeds, weights.clone(), params, reset);
        let mut nets: Vec<DeviceDrivenNetwork<W>> = seeds
            .iter()
            .map(|&s| {
                DeviceDrivenNetwork::new(
                    DevicePool::new(spec.clone(), s),
                    weights.clone(),
                    params,
                    reset,
                )
            })
            .collect();
        let n = batch.neurons();
        let mut spikes = vec![false; n];
        for t in 0..steps {
            batch.step();
            for (r, net) in nets.iter_mut().enumerate() {
                let seq_spikes = net.step().to_vec();
                for i in 0..n {
                    assert_eq!(
                        net.potentials()[i].to_bits(),
                        batch.potential(i, r).to_bits(),
                        "t={t} replica={r} neuron={i}"
                    );
                }
                batch.spiked_into(r, &mut spikes);
                assert_eq!(seq_spikes, spikes, "t={t} replica={r}");
            }
        }
        assert_eq!(batch.steps(), steps);
    }

    #[test]
    fn dense_batch_matches_sequential_networks() {
        // SDP-rank-style dense weights (pattern-table kernel path).
        let m = DMatrix::from_fn(9, 4, |i, a| (i as f64 + 1.0) * 0.1 - a as f64 * 0.07);
        let w = DenseWeights::from_matrix_scaled(&m, 1.0);
        let spec = PoolSpec::uniform(DeviceModel::fair(), 4);
        assert_batch_equals_sequential(spec, w, Reset::None, 120);
    }

    #[test]
    fn wide_dense_batch_matches_sequential_networks() {
        // More devices than the pattern-table cap (column-scan path).
        let m = DMatrix::from_fn(5, 9, |i, a| ((i * 9 + a) as f64).sin());
        let w = DenseWeights::from_matrix_scaled(&m, 0.5);
        let spec = PoolSpec::uniform(DeviceModel::biased(0.3).unwrap(), 9);
        assert_batch_equals_sequential(spec, w, Reset::None, 80);
    }

    #[test]
    fn csc_batch_matches_sequential_networks() {
        let g = cycle(11);
        let w = CscWeights::trevisan(&g, 1.0);
        let spec = PoolSpec::uniform(DeviceModel::fair(), 11);
        assert_batch_equals_sequential(spec, w, Reset::None, 100);
    }

    #[test]
    fn reset_to_value_batch_matches_sequential_networks() {
        // With reset, spikes feed back into the dynamics; the batched
        // stepper must threshold every step, like the sequential one.
        let m = DMatrix::from_fn(6, 3, |i, a| 0.4 + (i + a) as f64 * 0.05);
        let w = DenseWeights::from_matrix_scaled(&m, 1.0);
        let spec = PoolSpec::uniform(DeviceModel::fair(), 3);
        assert_batch_equals_sequential(spec, w, Reset::ToValue(0.0), 150);
    }

    #[test]
    fn batch_accessors() {
        let m = DMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let w = DenseWeights::from_matrix_scaled(&m, 1.0);
        let spec = PoolSpec::uniform(DeviceModel::fair(), 2);
        let batch = ReplicaBatch::new(spec, &[1, 2, 3], w, LifParams::default(), Reset::None);
        assert_eq!(batch.replicas(), 3);
        assert_eq!(batch.neurons(), 2);
        assert_eq!(batch.devices(), 2);
        assert_eq!(batch.potentials().len(), 6);
        assert_eq!(batch.means().len(), 2);
        assert_eq!(batch.weights().neurons(), 2);
        assert_eq!(batch.steps(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_seed_list_panics() {
        let m = DMatrix::from_rows(&[&[1.0]]);
        let w = DenseWeights::from_matrix_scaled(&m, 1.0);
        let spec = PoolSpec::uniform(DeviceModel::fair(), 1);
        let _ = ReplicaBatch::new(spec, &[], w, LifParams::default(), Reset::None);
    }

    #[test]
    fn results_in_index_order() {
        let out = run_replicas(16, 4, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let a = run_replicas(9, 1, |i| i as u64 + 100);
        let b = run_replicas(9, 3, |i| i as u64 + 100);
        let c = run_replicas(9, 32, |i| i as u64 + 100);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn empty_and_single() {
        assert!(run_replicas(0, 4, |i| i).is_empty());
        assert_eq!(run_replicas(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn uneven_work_balances() {
        // Replica 0 is heavy; others light. All must complete.
        let out = run_replicas(8, 4, |i| {
            if i == 0 {
                (0..200_000u64).sum::<u64>()
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[3], 3);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
