//! Spike rasters: bit-packed recordings of population spiking activity.

/// A bit-packed spike raster for a fixed-size population.
#[derive(Clone, Debug, Default)]
pub struct SpikeRaster {
    n: usize,
    words_per_step: usize,
    data: Vec<u64>,
    steps: usize,
}

impl SpikeRaster {
    /// Creates an empty raster for `n` neurons.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            words_per_step: n.div_ceil(64),
            data: Vec::new(),
            steps: 0,
        }
    }

    /// Number of neurons.
    pub fn neurons(&self) -> usize {
        self.n
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Appends one step of spike flags.
    ///
    /// # Panics
    ///
    /// Panics if `spiked.len() != neurons()`.
    pub fn push(&mut self, spiked: &[bool]) {
        assert_eq!(spiked.len(), self.n);
        let base = self.data.len();
        self.data.resize(base + self.words_per_step, 0);
        for (i, &s) in spiked.iter().enumerate() {
            if s {
                self.data[base + i / 64] |= 1u64 << (i % 64);
            }
        }
        self.steps += 1;
    }

    /// Whether neuron `i` spiked at step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `i` is out of range.
    pub fn get(&self, t: usize, i: usize) -> bool {
        assert!(t < self.steps && i < self.n);
        (self.data[t * self.words_per_step + i / 64] >> (i % 64)) & 1 == 1
    }

    /// Extracts step `t` as a bool vector.
    pub fn step_vec(&self, t: usize) -> Vec<bool> {
        (0..self.n).map(|i| self.get(t, i)).collect()
    }

    /// Total spikes of neuron `i`.
    pub fn count(&self, i: usize) -> usize {
        (0..self.steps).filter(|&t| self.get(t, i)).count()
    }

    /// Firing rate of neuron `i` (spikes per step).
    pub fn rate(&self, i: usize) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.count(i) as f64 / self.steps as f64
        }
    }

    /// Population spike count at step `t`.
    pub fn population_count(&self, t: usize) -> usize {
        let base = t * self.words_per_step;
        self.data[base..base + self.words_per_step]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut r = SpikeRaster::new(70); // crosses a word boundary
        let mut step0 = vec![false; 70];
        step0[0] = true;
        step0[65] = true;
        r.push(&step0);
        r.push(&[true; 70]);
        assert_eq!(r.steps(), 2);
        assert!(r.get(0, 0));
        assert!(!r.get(0, 1));
        assert!(r.get(0, 65));
        assert!(r.get(1, 69));
        assert_eq!(r.population_count(0), 2);
        assert_eq!(r.population_count(1), 70);
    }

    #[test]
    fn counts_and_rates() {
        let mut r = SpikeRaster::new(2);
        r.push(&[true, false]);
        r.push(&[true, false]);
        r.push(&[false, false]);
        assert_eq!(r.count(0), 2);
        assert_eq!(r.count(1), 0);
        assert!((r.rate(0) - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(SpikeRaster::new(3).rate(0), 0.0);
    }

    #[test]
    fn step_vec_roundtrip() {
        let mut r = SpikeRaster::new(5);
        let pattern = vec![true, false, true, true, false];
        r.push(&pattern);
        assert_eq!(r.step_vec(0), pattern);
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut r = SpikeRaster::new(3);
        r.push(&[true]);
    }
}
