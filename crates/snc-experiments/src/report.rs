//! CSV, Markdown, and JSON emission for experiment artifacts.
//!
//! Deliberately dependency-free (no serde): experiment outputs are simple
//! rectangular tables and per-panel curve files. JSON rendering goes
//! through the shared [`crate::json`] module — the same escaper the
//! `snc-server` wire format uses, so report artifacts and service
//! responses cannot drift apart on string escaping.

use crate::json::Json;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A rectangular table of strings with a header row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as CSV (RFC-4180-style quoting for fields containing
    /// commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            let mut first = true;
            for field in row {
                if !first {
                    out.push(',');
                }
                first = false;
                if field.contains(',') || field.contains('"') || field.contains('\n') {
                    out.push('"');
                    out.push_str(&field.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(field);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavored Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as a JSON array of objects, one per row, keyed by the
    /// column headers (shared escaper with the server wire format).
    pub fn to_json(&self) -> String {
        Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    Json::Obj(
                        self.headers
                            .iter()
                            .zip(row)
                            .map(|(h, v)| (h.clone(), Json::str(v.clone())))
                            .collect(),
                    )
                })
                .collect(),
        )
        .render()
    }

    /// Writes the CSV form to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates IO errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.to_csv().as_bytes())?;
        f.flush()
    }
}

/// Formats a float with 4 significant decimals (curve values).
pub fn fmt_f(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["1".into(), "plain".into()]);
        t.push_row(vec!["2".into(), "with,comma".into()]);
        t.push_row(vec!["3".into(), "with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n1,plain\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(&["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn file_roundtrip() {
        let mut t = Table::new(&["k", "v"]);
        t.push_row(vec!["q".into(), "7".into()]);
        let path = std::env::temp_dir().join("snc_report_test/table.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "k,v\nq,7\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_rendering_shares_the_wire_escaper() {
        let mut t = Table::new(&["name", "value"]);
        t.push_row(vec!["plain".into(), "1".into()]);
        t.push_row(vec!["with\"quote\\and\nnewline".into(), "héllo".into()]);
        let json = t.to_json();
        assert_eq!(
            json,
            "[{\"name\":\"plain\",\"value\":\"1\"},\
             {\"name\":\"with\\\"quote\\\\and\\nnewline\",\"value\":\"héllo\"}]"
        );
        // The output must parse back with the shared parser.
        let parsed = crate::json::parse(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 2);
        assert_eq!(
            parsed.as_array().unwrap()[1].get("name").unwrap().as_str(),
            Some("with\"quote\\and\nnewline")
        );
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.87654321), "0.8765");
        assert_eq!(fmt_f(1.0), "1.0000");
    }
}
