//! Runs the device-imperfection study (unfair, correlated, drifting
//! devices) from the paper's Discussion.
//!
//! ```text
//! cargo run --release -p snc-experiments --bin robustness -- [--quick] \
//!     [--samples N] [--threads N] [--seed N] [--out DIR]
//! ```

use snc_experiments::config::CliArgs;
use snc_experiments::robustness::{run_robustness, RobustnessGrid};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match CliArgs::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let (n, p) = match cli.scale {
        snc_experiments::ExperimentScale::Quick => (50, 0.25),
        _ => (100, 0.25),
    };
    eprintln!(
        "robustness: G({n}, {p}), {} samples/circuit, {} threads",
        cli.suite.sample_budget, cli.suite.threads
    );
    let result = run_robustness(n, p, &RobustnessGrid::default(), &cli.suite, true);
    let table = result.to_table();
    let path = cli.out_dir.join("robustness.csv");
    if let Err(e) = table.write_csv(&path) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "\nDevice robustness on G({}, {}) — LIF-GW best cut relative to ideal software sampler",
        result.n, result.p
    );
    println!("{}", table.to_markdown());
    println!("table written to {}", path.display());
}
