//! Regenerates Figure 3 (the Erdős–Rényi sweep).
//!
//! ```text
//! cargo run --release -p snc-experiments --bin fig3 -- [--quick|--paper] \
//!     [--samples N] [--threads N] [--replicas N] [--seed N] [--out DIR]
//! ```
//!
//! Writes `fig3_curves.csv` (long format, one row per solver × panel ×
//! checkpoint) to the output directory and prints a per-panel summary of
//! the final relative values.

use snc_experiments::config::CliArgs;
use snc_experiments::fig3::run_fig3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match CliArgs::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let scale = cli.scale;
    eprintln!(
        "fig3: n in {:?}, p in {:?}, {} graphs/cell, {} samples/circuit, {} threads × {} replicas/batch",
        scale.fig3_ns(),
        scale.fig3_ps(),
        scale.graphs_per_cell(),
        cli.suite.sample_budget,
        cli.suite.threads,
        cli.suite.replicas
    );
    let result = run_fig3(
        &scale.fig3_ns(),
        &scale.fig3_ps(),
        scale.graphs_per_cell(),
        &cli.suite,
        true,
    );
    let curves = result.to_table();
    let path = cli.out_dir.join("fig3_curves.csv");
    if let Err(e) = curves.write_csv(&path) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nFigure 3 — final best cut relative to software solver");
    println!("{}", result.summary_table().to_markdown());
    println!("curves written to {}", path.display());
}
