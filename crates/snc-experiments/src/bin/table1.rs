//! Regenerates Table I (maximum cut values on the empirical graphs),
//! printing measured values beside the paper's reference columns.
//!
//! ```text
//! cargo run --release -p snc-experiments --bin table1 -- [--quick|--paper] \
//!     [--samples N] [--threads N] [--replicas N] [--seed N] [--out DIR]
//! ```

use snc_experiments::config::CliArgs;
use snc_experiments::table1::run_table1;
use snc_graph::EmpiricalDataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match CliArgs::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let datasets: Vec<EmpiricalDataset> = match cli.scale {
        snc_experiments::ExperimentScale::Quick => EmpiricalDataset::all()
            .into_iter()
            .filter(|d| d.size().0 <= 500)
            .collect(),
        _ => EmpiricalDataset::all().to_vec(),
    };
    eprintln!(
        "table1: {} graphs, {} samples/circuit, {} threads × {} replicas/batch",
        datasets.len(),
        cli.suite.sample_budget,
        cli.suite.threads,
        cli.suite.replicas
    );
    let result = run_table1(&datasets, &cli.suite, true);
    let table = result.to_table();
    let path = cli.out_dir.join("table1.csv");
    if let Err(e) = table.write_csv(&path) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nTable I — measured vs. paper (stand-ins reproduce ordering, not magnitude)");
    println!("{}", table.to_markdown());
    let violations = result.ordering_violations(0.05);
    if violations.is_empty() {
        println!("ordering check: OK (LIF-GW ≈ Solver > Random on every graph)");
    } else {
        println!("ordering check: {} violations", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
    }
    println!("table written to {}", path.display());
}
