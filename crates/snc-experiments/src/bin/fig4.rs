//! Regenerates Figure 4 (per-graph curves on the 16 empirical graphs).
//!
//! ```text
//! cargo run --release -p snc-experiments --bin fig4 -- [--quick|--paper] \
//!     [--samples N] [--threads N] [--replicas N] [--seed N] [--out DIR]
//! ```

use snc_experiments::config::CliArgs;
use snc_experiments::fig4::run_fig4;
use snc_experiments::report::{fmt_f, Table};
use snc_graph::EmpiricalDataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match CliArgs::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // Quick scale: drop the two largest graphs (p-hat700-1, DD687).
    let datasets: Vec<EmpiricalDataset> = match cli.scale {
        snc_experiments::ExperimentScale::Quick => EmpiricalDataset::all()
            .into_iter()
            .filter(|d| d.size().0 <= 500)
            .collect(),
        _ => EmpiricalDataset::all().to_vec(),
    };
    eprintln!(
        "fig4: {} graphs, {} samples/circuit, {} threads × {} replicas/batch",
        datasets.len(),
        cli.suite.sample_budget,
        cli.suite.threads,
        cli.suite.replicas
    );
    let result = run_fig4(&datasets, &cli.suite, true);
    let path = cli.out_dir.join("fig4_curves.csv");
    if let Err(e) = result.to_table().write_csv(&path) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    // Console summary: final relative value per solver per graph.
    let mut summary = Table::new(&["graph", "lif_gw", "lif_tr", "solver", "random"]);
    for panel in &result.panels {
        let reference = panel.traces.solver.final_best() as f64;
        let rel = |b: u64| fmt_f(b as f64 / reference.max(1.0));
        summary.push_row(vec![
            panel.dataset.name().to_string(),
            rel(panel.traces.lif_gw.final_best()),
            rel(panel.traces.lif_tr.final_best()),
            rel(panel.traces.solver.final_best()),
            rel(panel.traces.random.final_best()),
        ]);
    }
    println!("\nFigure 4 — final best cut relative to software solver");
    println!("{}", summary.to_markdown());
    println!("curves written to {}", path.display());
}
