//! Table I: maximum cut values per circuit on the empirical graphs,
//! printed alongside the paper's reference values.
//!
//! On the two exact reconstructions (`hamming6-2`, `johnson16-2-4`)
//! absolute values are comparable with the paper; on the 14 stand-ins only
//! the *ordering* (Solver ≈ LIF-GW ≥ LIF-TR > Random) is expected to
//! transfer. Two of the originals are weighted graphs, flagged in the
//! output (see `snc-graph::datasets`).

use crate::config::SuiteConfig;
use crate::fig4::{run_fig4, Fig4Result};
use crate::report::Table;
use snc_devices::SplitMix64;
use snc_graph::{datasets::Provenance, EmpiricalDataset};
use snc_maxcut::{solve, CircuitFamily, SolveSpec};

/// One row of the reproduced Table I.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// The dataset.
    pub dataset: EmpiricalDataset,
    /// Measured best cut of the LIF-GW circuit.
    pub lif_gw: u64,
    /// Measured best cut of the LIF-TR circuit.
    pub lif_tr: u64,
    /// Measured best cut of the LIF-annealed companion family (LIF-GW
    /// substrate under the default σ cooling schedule).
    pub lif_annealed: u64,
    /// Measured best cut of the deterministic Hopfield baseline.
    pub hopfield: u64,
    /// Measured best cut of the software solver.
    pub solver: u64,
    /// Measured best cut of the random baseline.
    pub random: u64,
    /// The SDP upper bound.
    pub sdp_bound: f64,
}

/// The reproduced Table I.
#[derive(Clone, Debug)]
pub struct Table1Result {
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
}

/// Runs the Table-I experiment (shares all computation with Figure 4).
pub fn run_table1(
    datasets: &[EmpiricalDataset],
    cfg: &SuiteConfig,
    verbose: bool,
) -> Table1Result {
    let fig4 = run_fig4(datasets, cfg, verbose);
    Table1Result::from_fig4(&fig4, cfg)
}

impl Table1Result {
    /// Extracts final best values from Figure-4 traces, then runs the
    /// two companion families (LIF-annealed, Hopfield) on the same
    /// per-graph seed ladder to fill their columns — Figure 4 only
    /// sweeps the paper's four solvers.
    pub fn from_fig4(fig4: &Fig4Result, cfg: &SuiteConfig) -> Self {
        let rows = fig4
            .panels
            .iter()
            .enumerate()
            .map(|(idx, panel)| {
                let graph = panel.dataset.load().expect("dataset construction");
                // The same per-graph seed Figure 4 derives, so every
                // column of one row hangs off one master seed.
                let graph_seed = SplitMix64::derive(cfg.seed, 0xF164 ^ idx as u64);
                let family_best = |family: CircuitFamily| {
                    let spec = SolveSpec {
                        replicas: cfg.replicas,
                        sdp_rank: cfg.sdp_rank,
                        lif: cfg.lif,
                        ..SolveSpec::new(family, cfg.sample_budget, graph_seed)
                    };
                    solve(&graph, &spec).expect("companion family solve").best_value
                };
                Table1Row {
                    dataset: panel.dataset,
                    lif_gw: panel.traces.lif_gw.final_best(),
                    lif_tr: panel.traces.lif_tr.final_best(),
                    lif_annealed: family_best(CircuitFamily::LifAnnealed),
                    hopfield: family_best(CircuitFamily::Hopfield),
                    solver: panel.traces.solver.final_best(),
                    random: panel.traces.random.final_best(),
                    sdp_bound: panel.traces.sdp_bound,
                }
            })
            .collect();
        Self { rows }
    }

    /// Renders the measured-vs-paper table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(&[
            "graph",
            "provenance",
            "LIF-GW",
            "LIF-TR",
            "LIF-ANN",
            "Hopfield",
            "Solver",
            "Random",
            "paper LIF-GW",
            "paper LIF-TR",
            "paper Solver",
            "paper Random",
        ]);
        for row in &self.rows {
            let paper = row.dataset.paper_row();
            let provenance = match row.dataset.provenance() {
                Provenance::Exact => "exact".to_string(),
                Provenance::StandIn { family } => format!("stand-in:{family}"),
            };
            t.push_row(vec![
                row.dataset.name().to_string(),
                provenance,
                row.lif_gw.to_string(),
                row.lif_tr.to_string(),
                row.lif_annealed.to_string(),
                row.hopfield.to_string(),
                row.solver.to_string(),
                row.random.to_string(),
                paper.lif_gw.to_string(),
                paper.lif_tr.to_string(),
                paper.solver.to_string(),
                paper.random.to_string(),
            ]);
        }
        t
    }

    /// Checks the paper's qualitative ordering on every row:
    /// `LIF-GW` within `tolerance` of `Solver`, and `Solver > Random`.
    /// Returns the list of violations (empty = shape reproduced).
    pub fn ordering_violations(&self, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        for row in &self.rows {
            let name = row.dataset.name();
            let s = row.solver as f64;
            if (row.lif_gw as f64) < s * (1.0 - tolerance) {
                violations.push(format!(
                    "{name}: LIF-GW {} below solver {} tolerance",
                    row.lif_gw, row.solver
                ));
            }
            if row.solver <= row.random && row.solver > 0 {
                violations.push(format!(
                    "{name}: solver {} not above random {}",
                    row.solver, row.random
                ));
            }
            if (row.solver as f64) > row.sdp_bound + 1e-6 {
                violations.push(format!(
                    "{name}: solver {} exceeds SDP bound {}",
                    row.solver, row.sdp_bound
                ));
            }
            // Every companion-family value is a real cut, so the SDP
            // bound caps it like everything else.
            for (label, value) in [("lif-annealed", row.lif_annealed), ("hopfield", row.hopfield)] {
                if (value as f64) > row.sdp_bound + 1e-6 {
                    violations.push(format!(
                        "{name}: {label} {value} exceeds SDP bound {}",
                        row.sdp_bound
                    ));
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentScale, SuiteConfig};

    #[test]
    fn table1_small_subset_has_paper_ordering() {
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 256;
        cfg.threads = 1;
        let datasets = [EmpiricalDataset::SocDolphins, EmpiricalDataset::Enzymes8];
        let result = run_table1(&datasets, &cfg, false);
        assert_eq!(result.rows.len(), 2);
        let violations = result.ordering_violations(0.1);
        assert!(violations.is_empty(), "{violations:?}");
        let t = result.to_table();
        assert_eq!(t.rows.len(), 2);
        assert!(t.to_markdown().contains("soc-dolphins"));
    }

    #[test]
    fn table1_emits_the_companion_family_columns() {
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 64;
        cfg.threads = 1;
        let datasets = [EmpiricalDataset::RoadChesapeake];
        let result = run_table1(&datasets, &cfg, false);
        let row = &result.rows[0];
        // Both companions produce real cuts: positive and under the bound.
        assert!(row.lif_annealed > 0);
        assert!(row.hopfield > 0);
        assert!((row.lif_annealed as f64) <= row.sdp_bound + 1e-6);
        assert!((row.hopfield as f64) <= row.sdp_bound + 1e-6);
        let markdown = result.to_table().to_markdown();
        assert!(markdown.contains("LIF-ANN"));
        assert!(markdown.contains("Hopfield"));
    }

    #[test]
    fn table1_companion_columns_are_deterministic() {
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 64;
        cfg.threads = 1;
        let datasets = [EmpiricalDataset::SocDolphins];
        let a = run_table1(&datasets, &cfg, false);
        let b = run_table1(&datasets, &cfg, false);
        assert_eq!(a.rows[0].lif_annealed, b.rows[0].lif_annealed);
        assert_eq!(a.rows[0].hopfield, b.rows[0].hopfield);
    }
}
