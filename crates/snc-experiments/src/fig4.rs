//! Figure 4: best-cut-vs-samples curves on the 16 empirical graphs.
//!
//! "Maximum cut relative to solver as a function of the number of samples
//! for empirical graphs taken from the Network Repository. Each panel
//! represents a single graph, thus there are no error bars."

use crate::config::SuiteConfig;
use crate::report::{fmt_f, Table};
use crate::runner::JobRunner;
use crate::suite::{run_suite, SuiteTraces};
use snc_devices::SplitMix64;
use snc_graph::EmpiricalDataset;

/// One per-graph panel of Figure 4.
#[derive(Clone, Debug)]
pub struct GraphPanel {
    /// The dataset.
    pub dataset: EmpiricalDataset,
    /// The four solver traces.
    pub traces: SuiteTraces,
}

/// The complete Figure-4 result.
#[derive(Clone, Debug)]
pub struct Fig4Result {
    /// One panel per dataset, in Table-I order.
    pub panels: Vec<GraphPanel>,
}

/// Runs the Figure-4 experiment over the given datasets.
///
/// # Panics
///
/// Panics if a dataset fails to load or a solver fails.
pub fn run_fig4(
    datasets: &[EmpiricalDataset],
    cfg: &SuiteConfig,
    verbose: bool,
) -> Fig4Result {
    let mut runner = JobRunner::new(cfg.threads);
    if verbose {
        runner = runner.verbose();
    }
    let panels = runner.run(datasets.len(), "fig4", |idx| {
        let dataset = datasets[idx];
        let graph = dataset.load().expect("dataset construction");
        let graph_seed = SplitMix64::derive(cfg.seed, 0xF164 ^ idx as u64);
        let traces = run_suite(&graph, cfg, graph_seed).expect("suite solver failure");
        GraphPanel { dataset, traces }
    });
    Fig4Result { panels }
}

impl Fig4Result {
    /// Long-format table: `graph, solver, samples, relative_best`.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(&["graph", "solver", "samples", "relative_best"]);
        for panel in &self.panels {
            let reference = panel.traces.solver.final_best() as f64;
            for (name, trace) in panel.traces.named() {
                let rel = trace.relative_to(reference);
                for (cp, r) in trace.checkpoints.iter().zip(&rel) {
                    table.push_row(vec![
                        panel.dataset.name().to_string(),
                        name.to_string(),
                        cp.to_string(),
                        fmt_f(*r),
                    ]);
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentScale, SuiteConfig};

    #[test]
    fn fig4_on_two_small_datasets() {
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 64;
        cfg.threads = 1;
        let datasets = [EmpiricalDataset::SocDolphins, EmpiricalDataset::RoadChesapeake];
        let result = run_fig4(&datasets, &cfg, false);
        assert_eq!(result.panels.len(), 2);
        for panel in &result.panels {
            let s = panel.traces.solver.final_best();
            let r = panel.traces.random.final_best();
            assert!(s >= r, "{}: solver {s} < random {r}", panel.dataset.name());
            // LIF-GW within 15% of solver even at this tiny budget.
            let c = panel.traces.lif_gw.final_best() as f64;
            assert!(
                (c - s as f64).abs() / s.max(1) as f64 <= 0.15,
                "{}: lif_gw {c} vs solver {s}",
                panel.dataset.name()
            );
        }
        let table = result.to_table();
        assert!(!table.rows.is_empty());
    }
}
