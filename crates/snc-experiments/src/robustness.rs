//! The device-imperfection study (E5).
//!
//! The Discussion (§VI) hypothesizes: "we expect robustness to deviations
//! of individual devices from the idealized perfect coin as the number of
//! devices grows," while noting real devices "may display the statistics of
//! an unfair coin, show internal or external correlations, or display
//! statistics that drift over time." This experiment makes those three
//! deviations quantitative: sweep each imperfection knob and measure the
//! LIF-GW circuit's best cut (relative to the ideal software solver) on a
//! fixed Erdős–Rényi graph.

use crate::config::SuiteConfig;
use crate::report::{fmt_f, Table};
use crate::runner::JobRunner;
use snc_devices::{CommonCause, DeviceModel, SplitMix64};
use snc_graph::generators::erdos_renyi::gnp;
use snc_linalg::SdpConfig;
use snc_maxcut::{
    sampling::sample_stats, GwConfig, GwSampler, LifGwCircuit, LifGwConfig,
};

/// One measured configuration of the robustness sweep.
#[derive(Clone, Debug)]
pub struct RobustnessPoint {
    /// Human-readable imperfection description (e.g. `bias=0.7`).
    pub label: String,
    /// Best cut found by the imperfect-device LIF-GW circuit.
    pub circuit_best: u64,
    /// Best cut found by the ideal software sampler (same budget).
    pub software_best: u64,
    /// `circuit_best / software_best` — the saturating headline metric.
    pub relative: f64,
    /// Mean single-sample cut of the circuit relative to the software
    /// sampler's mean — the sensitive metric: covariance distortion shows
    /// up here long before it dents best-of-N.
    pub mean_relative: f64,
}

/// The full sweep result.
#[derive(Clone, Debug)]
pub struct RobustnessResult {
    /// Graph parameters used.
    pub n: usize,
    /// Connection probability used.
    pub p: f64,
    /// All measured points.
    pub points: Vec<RobustnessPoint>,
}

/// The sweep grid.
#[derive(Clone, Debug)]
pub struct RobustnessGrid {
    /// Device biases to test (0.5 = ideal).
    pub biases: Vec<f64>,
    /// Common-cause couplings to test (0 = ideal).
    pub couplings: Vec<f64>,
    /// Drift step sizes to test (0 = ideal), clamped to `[0.2, 0.8]`.
    pub drift_sigmas: Vec<f64>,
}

impl Default for RobustnessGrid {
    fn default() -> Self {
        Self {
            biases: vec![0.5, 0.6, 0.7, 0.8, 0.9],
            couplings: vec![0.0, 0.25, 0.5, 0.75],
            drift_sigmas: vec![0.0, 0.01, 0.05],
        }
    }
}

/// Runs the robustness sweep on `G(n, p)`.
///
/// # Panics
///
/// Panics on SDP failure or invalid device parameters (the grid is
/// validated by construction).
pub fn run_robustness(
    n: usize,
    p: f64,
    grid: &RobustnessGrid,
    cfg: &SuiteConfig,
    verbose: bool,
) -> RobustnessResult {
    let graph = gnp(n, p, SplitMix64::derive(cfg.seed, 0x40B)).expect("valid parameters");
    let sdp_cfg = SdpConfig {
        rank: cfg.sdp_rank,
        seed: SplitMix64::derive(cfg.seed, 1),
        ..SdpConfig::default()
    };
    let gw = snc_maxcut::gw::solve_gw(&graph, &GwConfig { sdp: sdp_cfg }).expect("sdp solve");
    // Ideal software reference at the same budget.
    let mut software = GwSampler::new(gw.factors.clone(), SplitMix64::derive(cfg.seed, 2));
    let software_stats = sample_stats(&mut software, &graph, cfg.sample_budget);

    // Build the sweep jobs.
    enum Knob {
        Bias(f64),
        Coupling(f64),
        Drift(f64),
    }
    let mut jobs: Vec<(String, Knob)> = Vec::new();
    for &b in &grid.biases {
        jobs.push((format!("bias={b}"), Knob::Bias(b)));
    }
    for &c in &grid.couplings {
        jobs.push((format!("coupling={c}"), Knob::Coupling(c)));
    }
    for &s in &grid.drift_sigmas {
        jobs.push((format!("drift={s}"), Knob::Drift(s)));
    }

    let mut runner = JobRunner::new(cfg.threads);
    if verbose {
        runner = runner.verbose();
    }
    let points = runner.run(jobs.len(), "robustness", |idx| {
        let (label, knob) = &jobs[idx];
        let mut circuit_cfg = LifGwConfig {
            lif: cfg.lif,
            ..LifGwConfig::default()
        };
        match knob {
            Knob::Bias(b) => {
                circuit_cfg.device = DeviceModel::biased(*b).expect("valid bias");
            }
            Knob::Coupling(c) => {
                circuit_cfg.common_cause = if *c > 0.0 {
                    Some(CommonCause::new(*c).expect("valid coupling"))
                } else {
                    None
                };
            }
            Knob::Drift(s) => {
                circuit_cfg.device = if *s > 0.0 {
                    DeviceModel::drifting(0.5, *s, 0.2, 0.8).expect("valid drift")
                } else {
                    DeviceModel::fair()
                };
            }
        }
        let seed = SplitMix64::derive(cfg.seed, 100 + idx as u64);
        let mut circuit = LifGwCircuit::new(&gw.factors, seed, &circuit_cfg);
        let stats = sample_stats(&mut circuit, &graph, cfg.sample_budget);
        RobustnessPoint {
            label: label.clone(),
            circuit_best: stats.best,
            software_best: software_stats.best,
            relative: stats.best as f64 / software_stats.best.max(1) as f64,
            mean_relative: stats.mean / software_stats.mean.max(1e-12),
        }
    });

    RobustnessResult {
        n: graph.n(),
        p,
        points,
    }
}

impl RobustnessResult {
    /// Renders the sweep as a table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(&[
            "imperfection",
            "circuit_best",
            "software_best",
            "best_relative",
            "mean_relative",
        ]);
        for pt in &self.points {
            t.push_row(vec![
                pt.label.clone(),
                pt.circuit_best.to_string(),
                pt.software_best.to_string(),
                fmt_f(pt.relative),
                fmt_f(pt.mean_relative),
            ]);
        }
        t
    }

    /// The point measured for a given label, if present.
    pub fn point(&self, label: &str) -> Option<&RobustnessPoint> {
        self.points.iter().find(|p| p.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentScale, SuiteConfig};

    #[test]
    fn ideal_devices_match_software_and_labels_present() {
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 128;
        cfg.threads = 1;
        let grid = RobustnessGrid {
            biases: vec![0.5, 0.8],
            couplings: vec![0.0, 0.75],
            drift_sigmas: vec![],
        };
        let result = run_robustness(24, 0.3, &grid, &cfg, false);
        assert_eq!(result.points.len(), 4);
        let ideal = result.point("bias=0.5").unwrap();
        assert!(
            ideal.relative > 0.9,
            "ideal devices degraded: {}",
            ideal.relative
        );
        // The paper's robustness hypothesis: imperfections perturb the
        // realized covariance only mildly (threshold re-centering absorbs
        // bias exactly; the common-cause term is a weak rank-1 addition),
        // so the mean sample stays within a narrow band of the ideal.
        for pt in &result.points {
            assert!(
                (0.85..=1.15).contains(&pt.mean_relative),
                "{}: mean_relative {} outside the robustness band",
                pt.label,
                pt.mean_relative
            );
        }
        let t = result.to_table();
        assert_eq!(t.rows.len(), 4);
    }
}
