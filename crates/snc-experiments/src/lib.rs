//! Experiment harness regenerating the paper's evaluation (§V).
//!
//! One module per paper artifact:
//!
//! * [`fig3`] — Erdős–Rényi sweep (Figure 3): best cut relative to the
//!   software solver vs. number of samples, mean ± SEM over graphs, for
//!   every (n, p) panel.
//! * [`fig4`] — the same curves on the 16 empirical graphs (Figure 4).
//! * [`table1`] — maximum cut values per circuit per empirical graph
//!   (Table I), printed next to the paper's reference values.
//! * [`robustness`] — the device-imperfection study the Discussion (§VI)
//!   sketches: biased, cross-correlated, and drifting devices.
//!
//! Shared machinery: [`suite`] (runs all four solvers on one graph,
//! scheduling the neuromorphic circuits as batched `ReplicaBatch` units —
//! threads × batch width), [`runner`] (the `WorkerPool` submit/await
//! scheduling core, also the substrate the `snc-server` serving layer
//! runs on, plus the index-ordered `JobRunner` façade), [`report`]
//! (CSV/Markdown/JSON emission), [`json`] (the dependency-free JSON
//! writer/parser shared with the server wire format), [`config`]
//! (paper-exact and quick presets).
//!
//! Binaries: `fig3`, `fig4`, `table1`, `robustness` — each accepts
//! `--quick`, `--paper`, `--samples N`, `--threads N`, `--seed N`,
//! `--out DIR`; the figure/table binaries also honor `--replicas N`
//! (`robustness` parses but ignores it — its mean statistic is defined
//! over one circuit's sample stream).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod fig3;
pub mod fig4;
pub mod json;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod suite;
pub mod table1;

pub use config::{ExperimentScale, SuiteConfig};
pub use runner::JobRunner;
pub use suite::{run_suite, SuiteTraces};
