//! Experiment configurations with paper-exact and quick presets.

use snc_neuro::{Integrator, LifParams};

/// Scale presets for the experiment binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Minutes-scale smoke run (reduced grids and budgets).
    Quick,
    /// The default: full grids, moderate sample budgets.
    Standard,
    /// The paper's exact parameters (2^20 samples — hours of compute).
    Paper,
}

impl ExperimentScale {
    /// Sample budget per circuit per graph.
    pub fn sample_budget(&self) -> u64 {
        match self {
            ExperimentScale::Quick => 1 << 9,
            ExperimentScale::Standard => 1 << 12,
            ExperimentScale::Paper => 1 << 20, // §V: 2^20 cuts per circuit per graph
        }
    }

    /// Figure-3 vertex counts.
    pub fn fig3_ns(&self) -> Vec<usize> {
        match self {
            ExperimentScale::Quick => vec![50, 100],
            _ => vec![50, 100, 200, 350, 500],
        }
    }

    /// Figure-3 connection probabilities.
    pub fn fig3_ps(&self) -> Vec<f64> {
        match self {
            ExperimentScale::Quick => vec![0.25, 0.5],
            _ => vec![0.1, 0.25, 0.5, 0.75],
        }
    }

    /// Graphs per (n, p) cell (10 in the paper).
    pub fn graphs_per_cell(&self) -> usize {
        match self {
            ExperimentScale::Quick => 3,
            _ => 10,
        }
    }
}

/// Configuration shared by every experiment: solver settings and budgets.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Per-circuit sample budget (total across replicas).
    pub sample_budget: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for graph-level parallelism.
    pub threads: usize,
    /// Lock-stepped circuit replicas per neuromorphic solver (the
    /// `ReplicaBatch` width each worker schedules). `1` reproduces the
    /// paper's single-circuit traces bit-for-bit on the batched stepper;
    /// `R > 1` models R hardware circuits sampling concurrently: the
    /// sample budget is split across replicas and the per-replica
    /// best-so-far traces are merged into one total-samples trace.
    ///
    /// The width is capped at the sample budget, and when the budget is
    /// not divisible by the (effective) width the merged circuit traces
    /// end at `⌊budget/R⌋·R ≤ budget` total samples — never more than
    /// the software baselines' budget. Divisible budgets (the power-of-2
    /// presets with power-of-2 widths) are exact. The robustness study
    /// ignores this knob: its sensitive statistic is the per-sample mean
    /// of one circuit's stream.
    pub replicas: usize,
    /// SDP rank (4 in the paper, §IV.A).
    pub sdp_rank: usize,
    /// LIF parameters used by both circuits in the experiments.
    ///
    /// `Δt = τ/2` keeps the decorrelation interval at 10 steps, trading a
    /// little sample independence for a 5× faster circuit (the paper's
    /// hardware argument makes per-sample cost irrelevant there; in
    /// simulation we pay it).
    pub lif: LifParams,
}

impl SuiteConfig {
    /// Builds the default configuration for a scale preset.
    pub fn for_scale(scale: ExperimentScale) -> Self {
        Self {
            sample_budget: scale.sample_budget(),
            seed: 0x5AC5,
            threads: snc_neuro::parallel::default_threads(),
            replicas: 1,
            sdp_rank: 4,
            lif: LifParams {
                r: 1.0,
                c: 1.0,
                dt: 0.5,
                integrator: Integrator::ExponentialEuler,
            },
        }
    }
}

/// Minimal CLI argument parsing shared by the experiment binaries.
///
/// Recognized flags: `--quick`, `--paper`, `--samples N`, `--threads N`,
/// `--replicas N`, `--seed N`, `--out DIR`. Unknown flags abort with a
/// usage message.
#[derive(Clone, Debug)]
pub struct CliArgs {
    /// Resolved suite configuration.
    pub suite: SuiteConfig,
    /// Scale preset chosen.
    pub scale: ExperimentScale,
    /// Output directory for CSV artifacts.
    pub out_dir: std::path::PathBuf,
}

impl CliArgs {
    /// Parses `std::env::args`-style arguments (excluding the program
    /// name).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown or malformed flags.
    pub fn parse(args: &[String]) -> Result<CliArgs, String> {
        let mut scale = ExperimentScale::Standard;
        let mut samples: Option<u64> = None;
        let mut threads: Option<usize> = None;
        let mut replicas: Option<usize> = None;
        let mut seed: Option<u64> = None;
        let mut out_dir = std::path::PathBuf::from("results");
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => scale = ExperimentScale::Quick,
                "--paper" => scale = ExperimentScale::Paper,
                "--samples" => {
                    samples = Some(
                        it.next()
                            .ok_or("--samples needs a value")?
                            .parse()
                            .map_err(|_| "--samples must be an integer")?,
                    );
                }
                "--threads" => {
                    threads = Some(parse_positive(it.next(), "--threads")?);
                }
                "--replicas" => {
                    replicas = Some(parse_positive(it.next(), "--replicas")?);
                }
                "--seed" => {
                    seed = Some(
                        it.next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|_| "--seed must be an integer")?,
                    );
                }
                "--out" => {
                    out_dir = it.next().ok_or("--out needs a directory")?.into();
                }
                other => {
                    return Err(format!(
                        "unknown flag `{other}`\nusage: [--quick|--paper] [--samples N] [--threads N] [--replicas N] [--seed N] [--out DIR]"
                    ));
                }
            }
        }
        let mut suite = SuiteConfig::for_scale(scale);
        if let Some(s) = samples {
            suite.sample_budget = s;
        }
        if let Some(t) = threads {
            suite.threads = t;
        }
        if let Some(r) = replicas {
            suite.replicas = r;
        }
        if let Some(s) = seed {
            suite.seed = s;
        }
        Ok(CliArgs {
            suite,
            scale,
            out_dir,
        })
    }
}

/// Parses a flag value that must be a strictly positive integer.
///
/// Zero workers or zero replicas has no meaningful semantics — silently
/// clamping to 1 (the old behavior) made `--replicas 0` look like a
/// request that was honored. Every binary taking these flags (fig3,
/// fig4, table1, robustness, snc-server) now rejects 0 with this error.
///
/// # Errors
///
/// Returns a usage string when the value is missing, non-integer, or 0.
pub fn parse_positive(value: Option<&String>, flag: &str) -> Result<usize, String> {
    let raw = value.ok_or(format!("{flag} needs a value"))?;
    let parsed: usize = raw
        .parse()
        .map_err(|_| format!("{flag} must be an integer"))?;
    if parsed == 0 {
        return Err(format!("{flag} must be ≥ 1 (got 0)"));
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_scale_matches_section_v() {
        let s = ExperimentScale::Paper;
        assert_eq!(s.sample_budget(), 1 << 20);
        assert_eq!(s.fig3_ns(), vec![50, 100, 200, 350, 500]);
        assert_eq!(s.fig3_ps(), vec![0.1, 0.25, 0.5, 0.75]);
        assert_eq!(s.graphs_per_cell(), 10);
    }

    #[test]
    fn cli_defaults_and_overrides() {
        let a = CliArgs::parse(&strs(&[])).unwrap();
        assert_eq!(a.scale, ExperimentScale::Standard);
        assert_eq!(a.suite.replicas, 1);
        let a = CliArgs::parse(&strs(&["--quick", "--samples", "64", "--threads", "2"])).unwrap();
        assert_eq!(a.scale, ExperimentScale::Quick);
        assert_eq!(a.suite.sample_budget, 64);
        assert_eq!(a.suite.threads, 2);
        let a = CliArgs::parse(&strs(&["--out", "/tmp/x", "--seed", "9"])).unwrap();
        assert_eq!(a.out_dir, std::path::PathBuf::from("/tmp/x"));
        assert_eq!(a.suite.seed, 9);
        let a = CliArgs::parse(&strs(&["--replicas", "8"])).unwrap();
        assert_eq!(a.suite.replicas, 8);
    }

    #[test]
    fn cli_rejects_bad_flags() {
        assert!(CliArgs::parse(&strs(&["--bogus"])).is_err());
        assert!(CliArgs::parse(&strs(&["--samples"])).is_err());
        assert!(CliArgs::parse(&strs(&["--samples", "abc"])).is_err());
    }

    #[test]
    fn cli_rejects_zero_threads_and_replicas() {
        let err = CliArgs::parse(&strs(&["--replicas", "0"])).unwrap_err();
        assert!(err.contains("--replicas must be ≥ 1"), "got: {err}");
        let err = CliArgs::parse(&strs(&["--threads", "0"])).unwrap_err();
        assert!(err.contains("--threads must be ≥ 1"), "got: {err}");
        // Positive values still parse.
        assert_eq!(parse_positive(Some(&"3".to_string()), "--x"), Ok(3));
        assert!(parse_positive(None, "--x").is_err());
        assert!(parse_positive(Some(&"-1".to_string()), "--x").is_err());
    }

    #[test]
    fn experiment_lif_params_decorrelate_quickly() {
        let cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        assert_eq!(cfg.lif.decorrelation_steps(), 10);
        assert_eq!(cfg.sdp_rank, 4);
    }
}
