//! A progress-reporting parallel job queue.
//!
//! Experiments decompose into independent graph-level jobs (one per graph
//! in Figure 3, one per dataset in Figure 4 / Table I). Workers pull jobs
//! from an atomic cursor; completion events stream back over a crossbeam
//! channel so the main thread can print progress while work continues.
//! Results are deterministic: job `i` always computes `f(i)` and results
//! are returned in index order regardless of thread count.

use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Parallel job runner with optional progress reporting to stderr.
#[derive(Clone, Copy, Debug)]
pub struct JobRunner {
    /// Worker threads (≥ 1).
    pub threads: usize,
    /// Whether to print per-job progress lines to stderr.
    pub verbose: bool,
}

impl JobRunner {
    /// Creates a runner with the given thread count.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            verbose: false,
        }
    }

    /// Enables progress reporting.
    pub fn verbose(mut self) -> Self {
        self.verbose = true;
        self
    }

    /// Runs `f(0), …, f(count−1)` and returns results in index order.
    ///
    /// # Panics
    ///
    /// Propagates worker panics.
    pub fn run<T, F>(&self, count: usize, label: &str, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let started = Instant::now();
        let threads = self.threads.min(count);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let (tx, rx) = channel::unbounded::<usize>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let slots = &slots;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = f(i);
                    *slots[i].lock() = Some(result);
                    let _ = tx.send(i);
                });
            }
            drop(tx);
            let mut done = 0usize;
            while rx.recv().is_ok() {
                done += 1;
                if self.verbose {
                    eprintln!(
                        "[{label}] {done}/{count} done ({:.1}s elapsed)",
                        started.elapsed().as_secs_f64()
                    );
                }
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("every job index was claimed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_determinism() {
        let r = JobRunner::new(3);
        let out = r.run(10, "t", |i| i * 2);
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let single = JobRunner::new(1).run(10, "t", |i| i * 2);
        assert_eq!(out, single);
    }

    #[test]
    fn empty_job_list() {
        let r = JobRunner::new(4);
        let out: Vec<u32> = r.run(0, "t", |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_jobs() {
        let r = JobRunner::new(64);
        let out = r.run(3, "t", |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
