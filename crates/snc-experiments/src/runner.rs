//! Worker pools: a long-lived submit/await pool and the experiment
//! harness's index-ordered job runner built on top of it.
//!
//! [`WorkerPool`] is the scheduling substrate: a fixed set of worker
//! threads pulling boxed jobs off a (optionally bounded) channel.
//! Submission returns a [`JobTicket`] that the caller awaits; a panic
//! inside a job is caught on the worker (which survives and keeps
//! serving) and re-raised at the await site. This is the pool the
//! `snc-server` crate schedules solve requests onto — one long-lived
//! pool per server, bounded injection queue, jobs submitted as requests
//! arrive.
//!
//! [`JobRunner`] keeps the harness-facing shape it always had — run
//! `f(0), …, f(count−1)` across threads and return results in index
//! order — but is now a thin façade: it opens a [`std::thread::scope`],
//! builds a scoped `WorkerPool` inside it (so `f` may borrow from the
//! caller), submits every index, and awaits the tickets in order.
//! Results are deterministic: job `i` always computes `f(i)` and results
//! are returned in index order regardless of thread count or completion
//! order.

use crossbeam::channel::{self, TrySendError};
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A boxed unit of work. The lifetime lets scoped pools run jobs that
/// borrow from the enclosing scope; long-lived pools use `'static`.
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Error returned by [`WorkerPool::try_submit`] when the bounded
/// injection queue is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("worker pool queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// The await side of a submitted job.
///
/// Dropping a ticket detaches the job (it still runs; its result is
/// discarded).
#[derive(Debug)]
pub struct JobTicket<T> {
    rx: channel::Receiver<std::thread::Result<T>>,
}

impl<T> JobTicket<T> {
    /// Blocks until the job completes and returns its result.
    ///
    /// # Panics
    ///
    /// Re-raises the job's panic if it panicked, and panics if the pool
    /// was torn down without ever running the job (not possible through
    /// the public API: shutdown drains the queue first).
    pub fn wait(self) -> T {
        match self.rx.recv() {
            Ok(Ok(value)) => value,
            Ok(Err(payload)) => resume_unwind(payload),
            Err(_) => panic!("worker pool dropped the job before completion"),
        }
    }

    /// Returns the result if the job has already completed, or the
    /// ticket back if it is still pending.
    ///
    /// # Panics
    ///
    /// Re-raises the job's panic if it panicked.
    pub fn try_wait(self) -> Result<T, JobTicket<T>> {
        match self.rx.try_recv() {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(payload)) => resume_unwind(payload),
            Err(channel::TryRecvError::Empty) => Err(self),
            Err(channel::TryRecvError::Disconnected) => {
                panic!("worker pool dropped the job before completion")
            }
        }
    }
}

/// A fixed-width pool of worker threads with submit/await semantics.
///
/// Two constructions:
///
/// * [`WorkerPool::new`] / [`WorkerPool::bounded`] — long-lived
///   (`'static`) pools whose threads are owned and joined on drop or
///   [`WorkerPool::shutdown`]. The bounded form adds backpressure:
///   [`WorkerPool::try_submit`] refuses jobs once `queue_depth` are
///   waiting, which is how the server sheds load instead of buffering
///   unboundedly.
/// * [`WorkerPool::scoped`] — workers spawned inside a
///   [`std::thread::scope`], so jobs may borrow from the enclosing
///   environment. The scope joins the workers; dropping the pool closes
///   the queue.
///
/// A panicking job never kills its worker: the panic is caught, carried
/// through the ticket, and re-raised at [`JobTicket::wait`].
pub struct WorkerPool<'env> {
    tx: Option<channel::Sender<Job<'env>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    in_flight: Arc<AtomicUsize>,
}

impl std::fmt::Debug for WorkerPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("in_flight", &self.in_flight.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

/// The worker main loop: pull jobs until the queue closes and drains.
///
/// The receiver sits behind a mutex because the shimmed channel is
/// single-consumer; pickup is serialized, execution is not.
fn worker_loop(rx: &Mutex<channel::Receiver<Job<'_>>>) {
    loop {
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        job();
    }
}

impl WorkerPool<'static> {
    /// Spawns a long-lived pool with an unbounded injection queue.
    /// `threads` is clamped to ≥ 1.
    pub fn new(threads: usize) -> Self {
        let (tx, rx) = channel::unbounded();
        Self::spawn_static(threads, tx, rx)
    }

    /// Spawns a long-lived pool whose injection queue holds at most
    /// `queue_depth` not-yet-started jobs; [`WorkerPool::try_submit`]
    /// returns [`QueueFull`] beyond that. `threads` and `queue_depth`
    /// are clamped to ≥ 1.
    pub fn bounded(threads: usize, queue_depth: usize) -> Self {
        let (tx, rx) = channel::bounded(queue_depth.max(1));
        Self::spawn_static(threads, tx, rx)
    }

    fn spawn_static(
        threads: usize,
        tx: channel::Sender<Job<'static>>,
        rx: channel::Receiver<Job<'static>>,
    ) -> Self {
        let threads = threads.max(1);
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&rx))
            })
            .collect();
        Self {
            tx: Some(tx),
            handles,
            threads,
            in_flight: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl<'env> WorkerPool<'env> {
    /// Spawns a pool whose workers live inside `scope`, so submitted
    /// jobs may borrow from the scope's environment. The scope joins
    /// the workers after the pool is dropped. `threads` is clamped
    /// to ≥ 1.
    pub fn scoped<'scope>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        threads: usize,
    ) -> WorkerPool<'env> {
        let threads = threads.max(1);
        let (tx, rx) = channel::unbounded();
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..threads {
            let rx = Arc::clone(&rx);
            scope.spawn(move || worker_loop(&rx));
        }
        WorkerPool {
            tx: Some(tx),
            handles: Vec::new(),
            threads,
            in_flight: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Jobs submitted but not yet completed (queued + running).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    fn package<T, F>(&self, f: F) -> (Job<'env>, JobTicket<T>)
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let (tx, rx) = channel::unbounded();
        let counter = Arc::clone(&self.in_flight);
        counter.fetch_add(1, Ordering::SeqCst);
        let job: Job<'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            counter.fetch_sub(1, Ordering::SeqCst);
            let _ = tx.send(result);
        });
        (job, JobTicket { rx })
    }

    /// Submits a job, blocking while a bounded queue is at capacity,
    /// and returns the ticket to await it on.
    ///
    /// # Panics
    ///
    /// Panics if the pool has been shut down.
    pub fn submit<T, F>(&self, f: F) -> JobTicket<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let (job, ticket) = self.package(f);
        let tx = self.tx.as_ref().expect("worker pool is shut down");
        if tx.send(job).is_err() {
            unreachable!("workers hold the receiver while the pool owns a sender");
        }
        ticket
    }

    /// Submits a job without blocking; returns [`QueueFull`] when a
    /// bounded injection queue is at capacity.
    ///
    /// # Panics
    ///
    /// Panics if the pool has been shut down.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] if the job was not accepted.
    pub fn try_submit<T, F>(&self, f: F) -> Result<JobTicket<T>, QueueFull>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let (job, ticket) = self.package(f);
        let tx = self.tx.as_ref().expect("worker pool is shut down");
        match tx.try_send(job) {
            Ok(()) => Ok(ticket),
            Err(TrySendError::Full(_)) => {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                Err(QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                unreachable!("workers hold the receiver while the pool owns a sender")
            }
        }
    }

    /// Closes the injection queue, lets the workers drain every queued
    /// job, and joins them (graceful shutdown). Equivalent to dropping
    /// the pool, but explicit at call sites that care about the drain.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.tx = None;
        let current = std::thread::current().id();
        for handle in self.handles.drain(..) {
            // Never join the current thread: if the last owner of a pool
            // is dropped *from one of its own workers* (e.g. the final
            // Arc to pool-owning state was captured by a job), joining
            // that worker would deadlock — std aborts it with a
            // "Resource deadlock avoided" panic inside Drop. Detach the
            // own-thread handle instead; every other worker is still
            // joined after the drain.
            if handle.thread().id() == current {
                continue;
            }
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool<'_> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Parallel job runner with optional progress reporting to stderr.
#[derive(Clone, Copy, Debug)]
pub struct JobRunner {
    /// Worker threads (≥ 1).
    pub threads: usize,
    /// Whether to print per-job progress lines to stderr.
    pub verbose: bool,
}

impl JobRunner {
    /// Creates a runner with the given thread count (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            verbose: false,
        }
    }

    /// Enables progress reporting.
    pub fn verbose(mut self) -> Self {
        self.verbose = true;
        self
    }

    /// Runs `f(0), …, f(count−1)` on a scoped [`WorkerPool`] and returns
    /// results in index order, independent of thread count and
    /// completion order.
    ///
    /// # Panics
    ///
    /// Propagates worker panics (every job still runs; the first
    /// panicking index in order is re-raised).
    pub fn run<T, F>(&self, count: usize, label: &str, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let started = Instant::now();
        let threads = self.threads.min(count);
        let verbose = self.verbose;
        // Progress is printed by the *workers* at job completion, so it
        // streams in completion order while work continues (awaiting the
        // tickets in index order below would stall reporting behind the
        // slowest low-index job).
        let completed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let pool = WorkerPool::scoped(scope, threads);
            let (f, completed) = (&f, &completed);
            let tickets: Vec<JobTicket<T>> = (0..count)
                .map(|i| {
                    pool.submit(move || {
                        let result = f(i);
                        if verbose {
                            let done = completed.fetch_add(1, Ordering::SeqCst) + 1;
                            eprintln!(
                                "[{label}] {done}/{count} done ({:.1}s elapsed)",
                                started.elapsed().as_secs_f64()
                            );
                        }
                        result
                    })
                })
                .collect();
            tickets.into_iter().map(JobTicket::wait).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn order_and_determinism() {
        let r = JobRunner::new(3);
        let out = r.run(10, "t", |i| i * 2);
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let single = JobRunner::new(1).run(10, "t", |i| i * 2);
        assert_eq!(out, single);
    }

    #[test]
    fn empty_job_list() {
        let r = JobRunner::new(4);
        let out: Vec<u32> = r.run(0, "t", |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_jobs() {
        let r = JobRunner::new(64);
        let out = r.run(3, "t", |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn results_stay_in_index_order_under_contention() {
        // Early indices sleep longest, so completion order is roughly the
        // reverse of index order; the returned vector must not care.
        let r = JobRunner::new(8);
        let count = 24;
        let out = r.run(count, "t", |i| {
            std::thread::sleep(Duration::from_millis((count - i) as u64));
            i
        });
        assert_eq!(out, (0..count).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            JobRunner::new(2).run(4, "t", |i| {
                if i == 2 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic payload");
        assert!(message.contains("boom at 2"), "got {message:?}");
    }

    #[test]
    fn borrowed_environment_jobs() {
        // `f` may borrow: the scoped pool keeps the old JobRunner
        // contract that jobs need not be 'static.
        let data: Vec<u64> = (0..100).collect();
        let r = JobRunner::new(4);
        let out = r.run(10, "t", |i| data[i * 10]);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn pool_submit_await_roundtrip() {
        let pool = WorkerPool::new(4);
        let tickets: Vec<JobTicket<usize>> =
            (0..32).map(|i| pool.submit(move || i * i)).collect();
        let results: Vec<usize> = tickets.into_iter().map(JobTicket::wait).collect();
        assert_eq!(results, (0..32).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(pool.in_flight(), 0);
        pool.shutdown();
    }

    #[test]
    fn pool_worker_survives_a_panicking_job() {
        let pool = WorkerPool::new(1);
        let bad: JobTicket<()> = pool.submit(|| panic!("job panic"));
        // The single worker must still be alive to run this:
        let good = pool.submit(|| 7u32);
        assert!(catch_unwind(AssertUnwindSafe(|| bad.wait())).is_err());
        assert_eq!(good.wait(), 7);
    }

    #[test]
    fn bounded_pool_sheds_load_when_full() {
        let pool = WorkerPool::bounded(1, 2);
        // Park the single worker so queued jobs stay queued.
        let gate = Arc::new(AtomicUsize::new(0));
        let started = Arc::new(AtomicUsize::new(0));
        let (g, s) = (Arc::clone(&gate), Arc::clone(&started));
        let parked = pool.submit(move || {
            s.store(1, Ordering::SeqCst);
            while g.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        // Wait until the worker has picked the parked job up, then fill
        // the two queue slots.
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let q1 = pool.try_submit(|| 1u8).expect("slot 1");
        let q2 = pool.try_submit(|| 2u8).expect("slot 2");
        let overflow = pool.try_submit(|| 3u8);
        assert_eq!(overflow.unwrap_err(), QueueFull);
        gate.store(1, Ordering::SeqCst);
        parked.wait();
        assert_eq!(q1.wait(), 1);
        assert_eq!(q2.wait(), 2);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(1);
        let tickets: Vec<JobTicket<usize>> = (0..8)
            .map(|i| {
                pool.submit(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    i
                })
            })
            .collect();
        pool.shutdown();
        // Every queued job ran before the workers exited.
        let results: Vec<usize> = tickets.into_iter().map(JobTicket::wait).collect();
        assert_eq!(results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn dropping_the_pool_from_inside_a_worker_does_not_panic() {
        // If a job captures the last owner of its own pool, the pool is
        // torn down on a worker thread; close_and_join must detach that
        // thread instead of self-joining (which panics in Drop with
        // "Resource deadlock avoided").
        let pool = Arc::new(Mutex::new(Some(WorkerPool::new(2))));
        let ticket = {
            let guard = pool.lock();
            let pool_ref = Arc::clone(&pool);
            guard.as_ref().unwrap().submit(move || {
                // Take the pool out of the shared slot and drop it here,
                // on the worker.
                let taken = pool_ref.lock().take();
                drop(taken);
                11u8
            })
        };
        assert_eq!(ticket.wait(), 11);
        assert!(pool.lock().is_none(), "worker consumed the pool");
    }

    #[test]
    fn try_wait_reports_pending_then_done() {
        let pool = WorkerPool::new(1);
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        let ticket = pool.submit(move || {
            while g.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            42u32
        });
        let ticket = match ticket.try_wait() {
            Err(t) => t,
            Ok(v) => panic!("job finished early with {v}"),
        };
        gate.store(1, Ordering::SeqCst);
        assert_eq!(ticket.wait(), 42);
    }
}
