//! Figure 3: the Erdős–Rényi sweep.
//!
//! "Maximum cut weight relative to software Goemans-Williamson solver …
//! as a function of the number of samples for Erdős–Rényi random graphs.
//! Rows correspond to fixed numbers of vertices n and columns correspond to
//! fixed connection probabilities p. … Error bars correspond to standard
//! error of the mean over 10 independently generated graphs from each graph
//! class."

use crate::config::SuiteConfig;
use crate::report::{fmt_f, Table};
use crate::runner::JobRunner;
use crate::suite::run_suite;
use snc_devices::SplitMix64;
use snc_graph::generators::erdos_renyi::gnp;
use snc_maxcut::stats::{aggregate_curves, AggregateCurve};

/// One (n, p) panel of Figure 3.
#[derive(Clone, Debug)]
pub struct Panel {
    /// Number of vertices.
    pub n: usize,
    /// Connection probability.
    pub p: f64,
    /// Aggregated relative curves per solver, keyed by display name, in
    /// legend order (lif_gw, lif_tr, solver, random).
    pub curves: Vec<(&'static str, AggregateCurve)>,
}

/// The complete Figure-3 result grid.
#[derive(Clone, Debug)]
pub struct Fig3Result {
    /// All panels in row-major (n-major) order.
    pub panels: Vec<Panel>,
}

/// Runs the Figure-3 experiment.
///
/// # Panics
///
/// Panics if any graph-level job fails (SDP non-convergence would indicate
/// a solver bug on these instances).
pub fn run_fig3(
    ns: &[usize],
    ps: &[f64],
    graphs_per_cell: usize,
    cfg: &SuiteConfig,
    verbose: bool,
) -> Fig3Result {
    let mut jobs: Vec<(usize, f64, usize)> = Vec::new();
    for &n in ns {
        for &p in ps {
            for g in 0..graphs_per_cell {
                jobs.push((n, p, g));
            }
        }
    }
    let mut runner = JobRunner::new(cfg.threads);
    if verbose {
        runner = runner.verbose();
    }
    let results = runner.run(jobs.len(), "fig3", |idx| {
        let (n, p, rep) = jobs[idx];
        // Graph seed: deterministic in (n, p-mills, replicate).
        let graph_seed = SplitMix64::derive(
            cfg.seed,
            (n as u64) << 32 | ((p * 1000.0) as u64) << 8 | rep as u64,
        );
        let graph = gnp(n, p, graph_seed).expect("valid G(n,p) parameters");
        let traces = run_suite(&graph, cfg, graph_seed ^ 0xF163).expect("suite solver failure");
        (n, p, traces)
    });

    // Group by panel and aggregate relative-to-solver curves.
    let mut panels = Vec::new();
    for &n in ns {
        for &p in ps {
            let cell: Vec<_> = results
                .iter()
                .filter(|(rn, rp, _)| *rn == n && *rp == p)
                .map(|(_, _, t)| t)
                .collect();
            assert!(!cell.is_empty());
            let mut curves = Vec::new();
            for key in ["lif_gw", "lif_tr", "solver", "random"] {
                // Each solver aggregates on its own checkpoint grid: with
                // `replicas > 1` the circuit traces sit on a merged
                // total-samples grid that differs from the software one.
                let checkpoints = cell[0]
                    .named()
                    .iter()
                    .find(|(name, _)| *name == key)
                    .expect("known key")
                    .1
                    .checkpoints
                    .clone();
                let per_graph: Vec<Vec<f64>> = cell
                    .iter()
                    .map(|t| {
                        let reference = t.solver.final_best() as f64;
                        let trace = t
                            .named()
                            .iter()
                            .find(|(name, _)| *name == key)
                            .expect("known key")
                            .1
                            .clone();
                        trace.relative_to(reference)
                    })
                    .collect();
                curves.push((key, aggregate_curves(&checkpoints, &per_graph)));
            }
            panels.push(Panel { n, p, curves });
        }
    }
    Fig3Result { panels }
}

impl Fig3Result {
    /// Serializes every panel into one long-format table:
    /// `n, p, solver, samples, mean_relative, sem`.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(&["n", "p", "solver", "samples", "mean_relative", "sem"]);
        for panel in &self.panels {
            for (name, curve) in &panel.curves {
                for k in 0..curve.checkpoints.len() {
                    table.push_row(vec![
                        panel.n.to_string(),
                        format!("{}", panel.p),
                        name.to_string(),
                        curve.checkpoints[k].to_string(),
                        fmt_f(curve.mean[k]),
                        fmt_f(curve.sem[k]),
                    ]);
                }
            }
        }
        table
    }

    /// A compact per-panel summary at the final checkpoint.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(&["panel", "lif_gw", "lif_tr", "solver", "random"]);
        for panel in &self.panels {
            let last = |key: &str| {
                let c = &panel
                    .curves
                    .iter()
                    .find(|(n, _)| *n == key)
                    .expect("known key")
                    .1;
                fmt_f(*c.mean.last().unwrap_or(&0.0))
            };
            table.push_row(vec![
                format!("G({}, {})", panel.n, panel.p),
                last("lif_gw"),
                last("lif_tr"),
                last("solver"),
                last("random"),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentScale, SuiteConfig};

    #[test]
    fn small_fig3_run_has_paper_shape() {
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 128;
        cfg.threads = 1;
        let result = run_fig3(&[20], &[0.3], 3, &cfg, false);
        assert_eq!(result.panels.len(), 1);
        let panel = &result.panels[0];
        let get = |key: &str| -> &AggregateCurve {
            &panel.curves.iter().find(|(n, _)| *n == key).unwrap().1
        };
        // Solver relative to itself ends at 1.0.
        let solver = get("solver");
        assert!((solver.mean.last().unwrap() - 1.0).abs() < 1e-12);
        // LIF-GW tracks the solver closely; random trails.
        let lif_gw = get("lif_gw");
        assert!(*lif_gw.mean.last().unwrap() > 0.9);
        let random = get("random");
        assert!(*random.mean.last().unwrap() <= 1.0 + 1e-12);
        // Curves are monotone nondecreasing (best-so-far).
        for (_, c) in &panel.curves {
            assert!(c.mean.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        }
    }

    #[test]
    fn replicated_run_uses_per_solver_grids() {
        // With replicas > 1 the circuit curves sit on the merged
        // total-samples grid while software curves keep the full grid;
        // both end at the same total budget.
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 64;
        cfg.threads = 1;
        cfg.replicas = 4;
        let result = run_fig3(&[12], &[0.5], 2, &cfg, false);
        let panel = &result.panels[0];
        let get = |key: &str| -> &AggregateCurve {
            &panel.curves.iter().find(|(n, _)| *n == key).unwrap().1
        };
        assert_eq!(get("solver").checkpoints.len(), 7); // 1..64
        assert_eq!(get("lif_gw").checkpoints.len(), 5); // 4·(1..16)
        assert_eq!(get("lif_gw").checkpoints.last(), Some(&64));
        assert_eq!(get("lif_tr").checkpoints.last(), Some(&64));
        // The long-format table still serializes every curve row.
        let t = result.to_table();
        assert_eq!(t.rows.len(), 7 + 5 + 7 + 5);
    }

    #[test]
    fn table_serialization_dimensions() {
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 32;
        cfg.threads = 2;
        let result = run_fig3(&[12], &[0.5], 2, &cfg, false);
        let t = result.to_table();
        // 4 solvers × checkpoints rows.
        let cps = result.panels[0].curves[0].1.checkpoints.len();
        assert_eq!(t.rows.len(), 4 * cps);
        let s = result.summary_table();
        assert_eq!(s.rows.len(), 1);
    }
}
