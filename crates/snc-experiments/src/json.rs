//! Dependency-free JSON: a small value tree, an RFC 8259 writer, and a
//! strict parser.
//!
//! One escaper serves every JSON producer in the workspace: the
//! experiment reports ([`crate::report::Table::to_json`]) and the
//! `snc-server` wire format both render through [`Json::render`], so the
//! two formats cannot drift apart on string escaping. The parser exists
//! for the server's request bodies; it is strict (no trailing garbage,
//! no unquoted keys, bounded nesting depth) because those bodies arrive
//! from the network.
//!
//! Rendering is fully deterministic: object members keep insertion
//! order, integers render exactly, and floats use Rust's shortest
//! round-trip formatting — a prerequisite for the server's byte-identical
//! response contract.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts (arrays + objects).
///
/// Request bodies come from the network; without a cap, a few KiB of
/// `[[[[…` would overflow the recursive-descent parser's stack.
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered exactly (no float round-trip).
    UInt(u64),
    /// A negative integer, rendered exactly.
    Int(i64),
    /// A float, rendered with shortest round-trip formatting. Non-finite
    /// values render as `null` (JSON has no NaN/Infinity).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order, so rendering is
    /// deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Appends the compact rendering to `out`.
    pub fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (k, (key, value)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, key);
                    out.push_str("\":");
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a member of an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Appends `s` to `out` with RFC 8259 string escaping: `"` and `\` are
/// backslash-escaped, control characters below U+0020 become `\n`, `\r`,
/// `\t`, `\b`, `\f`, or `\u00XX`; everything else (including non-ASCII)
/// passes through as UTF-8.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` with RFC 8259 string escaping applied (no surrounding
/// quotes).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// A parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value, no trailing garbage).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input, integer-overflowing
/// numbers that are not representable as `f64` tokens, or nesting deeper
/// than an internal cap.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (no escape, no quote, no raw
            // control character).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and we only
                // stopped on ASCII boundaries, so this slice is valid.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(
                    |_| self.err("invalid UTF-8 inside string"),
                )?);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape_sequence(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape_sequence(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require an immediately following
                    // `\uDC00`–`\uDFFF` low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.err("expected low surrogate"))?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?,
                );
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = token.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = token.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        token
            .parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .map(Json::Num)
            .ok_or_else(|| JsonError {
                offset: start,
                message: format!("invalid number `{token}`"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(escaped("plain"), "plain");
        assert_eq!(escaped("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escaped("back\\slash"), "back\\\\slash");
        assert_eq!(escaped("C:\\dir\\\"q\""), "C:\\\\dir\\\\\\\"q\\\"");
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escaped("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escaped("\u{0008}\u{000C}"), "\\b\\f");
        assert_eq!(escaped("\u{0000}\u{001f}"), "\\u0000\\u001f");
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(escaped("héllo ∀x 日本語"), "héllo ∀x 日本語");
        let rendered = Json::str("héllo\n\"∀\"").render();
        assert_eq!(rendered, "\"héllo\\n\\\"∀\\\"\"");
        assert_eq!(parse(&rendered).unwrap(), Json::str("héllo\n\"∀\""));
    }

    #[test]
    fn rendering_is_compact_and_ordered() {
        let v = Json::Obj(vec![
            ("b".into(), Json::UInt(2)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s".into(), Json::str("x")),
        ]);
        assert_eq!(v.render(), "{\"b\":2,\"a\":[null,true],\"s\":\"x\"}");
    }

    #[test]
    fn numbers_render_exactly() {
        assert_eq!(Json::UInt(u64::MAX).render(), u64::MAX.to_string());
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(1.0).render(), "1");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("123").unwrap(), Json::UInt(123));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.5e2").unwrap(), Json::Num(150.0));
        assert_eq!(parse("\"a b\"").unwrap(), Json::str("a b"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"edges\": [[0, 1], [1, 2]], \"n\": 3, \"ok\": true}").unwrap();
        let edges = v.get("edges").unwrap().as_array().unwrap();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[1].as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_string_escapes_and_surrogates() {
        assert_eq!(
            parse("\"a\\n\\t\\\\\\\"\\u0041\"").unwrap(),
            Json::str("a\n\t\\\"A")
        );
        // 𝄞 (U+1D11E) as a surrogate pair.
        assert_eq!(parse("\"\\uD834\\uDD1E\"").unwrap(), Json::str("𝄞"));
        assert!(parse("\"\\uD834\"").is_err(), "unpaired high surrogate");
        assert!(parse("\"\\uDD1E\"").is_err(), "unpaired low surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "1 2", "{'a':1}",
            "\"unterminated", "\"\u{0001}\"", "[1]]", "nulla",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn roundtrips_through_render_and_parse() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("road-\"chesapeake\"\n")),
            ("best".into(), Json::UInt(126)),
            ("bound".into(), Json::Num(128.25)),
            (
                "trace".into(),
                Json::Arr(vec![Json::UInt(1), Json::UInt(2), Json::UInt(4)]),
            ),
            ("none".into(), Json::Null),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
