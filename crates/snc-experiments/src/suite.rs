//! Runs the paper's four solvers on one graph: the atomic unit every
//! figure/table experiment is built from.
//!
//! For a graph `G` and a sample budget `B`, produce best-so-far traces at
//! log2 checkpoints for:
//!
//! * the software GW solver (SDP + Gaussian rounding) — the green curve and
//!   the normalization reference,
//! * the LIF-GW circuit seeded from the same SDP factors — blue,
//! * the LIF-Trevisan circuit (no offline work) — orange,
//! * uniform random cuts — red.

use crate::config::SuiteConfig;
use snc_devices::SplitMix64;
use snc_graph::Graph;
use snc_linalg::{LinalgError, SdpConfig};
use snc_maxcut::{
    log2_checkpoints, sample_best_trace, BestTrace, GwConfig, GwSampler, LifGwCircuit,
    LifGwConfig, LifTrevisanCircuit, LifTrevisanConfig, RandomCutSampler,
};

/// Best-so-far traces of all four solvers on one graph.
#[derive(Clone, Debug)]
pub struct SuiteTraces {
    /// Software GW (SDP + rounding).
    pub solver: BestTrace,
    /// LIF-GW circuit.
    pub lif_gw: BestTrace,
    /// LIF-Trevisan circuit.
    pub lif_tr: BestTrace,
    /// Uniform random baseline.
    pub random: BestTrace,
    /// The SDP upper bound (for reference).
    pub sdp_bound: f64,
}

impl SuiteTraces {
    /// The four traces with their display names, in the paper's legend
    /// order.
    pub fn named(&self) -> [(&'static str, &BestTrace); 4] {
        [
            ("lif_gw", &self.lif_gw),
            ("lif_tr", &self.lif_tr),
            ("solver", &self.solver),
            ("random", &self.random),
        ]
    }
}

/// Runs all four solvers on a graph with a deterministic seed ladder.
///
/// # Errors
///
/// Propagates SDP solver failures.
pub fn run_suite(graph: &Graph, cfg: &SuiteConfig, graph_seed: u64) -> Result<SuiteTraces, LinalgError> {
    let checkpoints = log2_checkpoints(cfg.sample_budget);
    let sdp_cfg = SdpConfig {
        rank: cfg.sdp_rank,
        seed: SplitMix64::derive(graph_seed, 1),
        ..SdpConfig::default()
    };
    let gw = snc_maxcut::gw::solve_gw(graph, &GwConfig { sdp: sdp_cfg })?;

    // Software GW rounding.
    let mut software = GwSampler::new(gw.factors.clone(), SplitMix64::derive(graph_seed, 2));
    let solver = sample_best_trace(&mut software, graph, &checkpoints);

    // LIF-GW circuit from the same factors.
    let lif_gw_cfg = LifGwConfig {
        lif: cfg.lif,
        ..LifGwConfig::default()
    };
    let mut lif_gw_circuit =
        LifGwCircuit::new(&gw.factors, SplitMix64::derive(graph_seed, 3), &lif_gw_cfg);
    let lif_gw = sample_best_trace(&mut lif_gw_circuit, graph, &checkpoints);

    // LIF-Trevisan circuit (entirely online).
    let lif_tr_cfg = LifTrevisanConfig {
        network: snc_neuro::TwoStageConfig {
            lif: cfg.lif,
            ..snc_neuro::TwoStageConfig::default()
        },
        ..LifTrevisanConfig::default()
    };
    let mut lif_tr_circuit =
        LifTrevisanCircuit::new(graph, SplitMix64::derive(graph_seed, 4), &lif_tr_cfg);
    let lif_tr = sample_best_trace(&mut lif_tr_circuit, graph, &checkpoints);

    // Random baseline.
    let mut random_sampler =
        RandomCutSampler::new(graph.n(), SplitMix64::derive(graph_seed, 5));
    let random = sample_best_trace(&mut random_sampler, graph, &checkpoints);

    Ok(SuiteTraces {
        solver,
        lif_gw,
        lif_tr,
        random,
        sdp_bound: gw.sdp_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentScale, SuiteConfig};
    use snc_graph::generators::erdos_renyi::gnp;

    #[test]
    fn suite_produces_consistent_traces() {
        let g = gnp(30, 0.3, 7).unwrap();
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 256;
        let traces = run_suite(&g, &cfg, 42).unwrap();
        let m = g.m() as u64;
        for (name, t) in traces.named() {
            assert!(!t.best.is_empty(), "{name} trace empty");
            assert!(t.final_best() <= m, "{name} exceeds m");
            assert!(t.best.windows(2).all(|w| w[0] <= w[1]), "{name} not monotone");
        }
        // The paper's qualitative ordering at the end of sampling:
        // solver ≈ lif_gw ≥ random; everything ≤ SDP bound.
        assert!(traces.sdp_bound >= traces.solver.final_best() as f64 - 1e-6);
        let s = traces.solver.final_best() as f64;
        let c = traces.lif_gw.final_best() as f64;
        assert!((c - s).abs() / s.max(1.0) < 0.15, "solver {s} vs circuit {c}");
        assert!(traces.solver.final_best() >= traces.random.final_best());
    }

    #[test]
    fn suite_is_deterministic() {
        let g = gnp(20, 0.4, 3).unwrap();
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 64;
        let a = run_suite(&g, &cfg, 9).unwrap();
        let b = run_suite(&g, &cfg, 9).unwrap();
        assert_eq!(a.solver, b.solver);
        assert_eq!(a.lif_gw, b.lif_gw);
        assert_eq!(a.lif_tr, b.lif_tr);
        assert_eq!(a.random, b.random);
    }
}
