//! Runs the paper's four solvers on one graph: the atomic unit every
//! figure/table experiment is built from.
//!
//! For a graph `G` and a sample budget `B`, produce best-so-far traces at
//! log2 checkpoints for:
//!
//! * the software GW solver (SDP + Gaussian rounding) — the green curve and
//!   the normalization reference,
//! * the LIF-GW circuit seeded from the same SDP factors — blue,
//! * the LIF-Trevisan circuit (no offline work) — orange,
//! * uniform random cuts — red.
//!
//! ## Batched replicas
//!
//! Both neuromorphic circuits run on the batched multi-replica steppers
//! ([`BatchedLifGwCircuit`], [`BatchedLifTrevisanCircuit`]): each
//! `JobRunner` worker thread advances one `ReplicaBatch` unit of
//! [`SuiteConfig::replicas`] lock-stepped circuit replicas, so the full
//! experiment layout is *threads × batch width*. With `replicas == 1` the
//! trace is bit-for-bit the sequential circuit's (the batched steppers'
//! equivalence contract); with `replicas = R > 1` the budget is split
//! across R replicas — the hardware reading: R physical circuits sampling
//! concurrently — and the per-replica traces are merged into one
//! total-samples trace with [`merge_traces`]. For the memoryless samplers
//! (LIF-GW) the merged curve is distributed exactly like a single
//! circuit's at the same total sample count; for LIF-Trevisan each replica
//! learns independently, so large R trades per-replica learning depth for
//! wall-clock.

use crate::config::SuiteConfig;
use snc_devices::SplitMix64;
use snc_graph::Graph;
use snc_linalg::{LinalgError, SdpConfig};
use snc_maxcut::solve::{effective_replicas, replica_checkpoints, replica_seeds};
use snc_maxcut::{
    log2_checkpoints, merge_traces, sample_best_trace, BatchedLifGwCircuit,
    BatchedLifTrevisanCircuit, BestTrace, GwConfig, GwSampler, LifGwConfig, LifTrevisanConfig,
    RandomCutSampler,
};

/// Best-so-far traces of all four solvers on one graph.
#[derive(Clone, Debug)]
pub struct SuiteTraces {
    /// Software GW (SDP + rounding).
    pub solver: BestTrace,
    /// LIF-GW circuit.
    pub lif_gw: BestTrace,
    /// LIF-Trevisan circuit.
    pub lif_tr: BestTrace,
    /// Uniform random baseline.
    pub random: BestTrace,
    /// The SDP upper bound (for reference).
    pub sdp_bound: f64,
}

impl SuiteTraces {
    /// The four traces with their display names, in the paper's legend
    /// order.
    ///
    /// With `replicas > 1` the circuit traces sit on a merged
    /// total-samples checkpoint grid, which can differ from the software
    /// traces' grid — consumers must read each trace's own `checkpoints`.
    pub fn named(&self) -> [(&'static str, &BestTrace); 4] {
        [
            ("lif_gw", &self.lif_gw),
            ("lif_tr", &self.lif_tr),
            ("solver", &self.solver),
            ("random", &self.random),
        ]
    }
}

/// Runs all four solvers on a graph with a deterministic seed ladder.
///
/// The budget/seed arithmetic — replica seed ladder, width capping,
/// per-replica checkpoint grid — lives in [`mod@snc_maxcut::solve`] and is
/// shared with the serving layer, so a server request carrying a
/// figure's per-graph seed reproduces that figure's circuit trace bit
/// for bit (pinned by a test below).
///
/// # Errors
///
/// Propagates SDP solver failures.
pub fn run_suite(graph: &Graph, cfg: &SuiteConfig, graph_seed: u64) -> Result<SuiteTraces, LinalgError> {
    let checkpoints = log2_checkpoints(cfg.sample_budget);
    let replicas = effective_replicas(cfg.sample_budget, cfg.replicas);
    let replica_cp = replica_checkpoints(cfg.sample_budget, cfg.replicas);
    let sdp_cfg = SdpConfig {
        rank: cfg.sdp_rank,
        seed: SplitMix64::derive(graph_seed, 1),
        ..SdpConfig::default()
    };
    let gw = snc_maxcut::gw::solve_gw(graph, &GwConfig { sdp: sdp_cfg })?;

    // Software GW rounding.
    let mut software = GwSampler::new(gw.factors.clone(), SplitMix64::derive(graph_seed, 2));
    let solver = sample_best_trace(&mut software, graph, &checkpoints);

    // LIF-GW circuit from the same factors, on the batched stepper.
    let lif_gw_cfg = LifGwConfig {
        lif: cfg.lif,
        ..LifGwConfig::default()
    };
    let gw_seeds = replica_seeds(SplitMix64::derive(graph_seed, 3), replicas);
    let mut lif_gw_batch = BatchedLifGwCircuit::new(&gw.factors, &gw_seeds, &lif_gw_cfg);
    let lif_gw = merge_traces(&lif_gw_batch.best_traces(graph, &replica_cp));

    // LIF-Trevisan circuit (entirely online), on the batched stepper.
    let lif_tr_cfg = LifTrevisanConfig {
        network: snc_neuro::TwoStageConfig {
            lif: cfg.lif,
            ..snc_neuro::TwoStageConfig::default()
        },
        ..LifTrevisanConfig::default()
    };
    let tr_seeds = replica_seeds(SplitMix64::derive(graph_seed, 4), replicas);
    let mut lif_tr_batch = BatchedLifTrevisanCircuit::new(graph, &tr_seeds, &lif_tr_cfg);
    let lif_tr = merge_traces(&lif_tr_batch.best_traces(graph, &replica_cp));

    // Random baseline.
    let mut random_sampler =
        RandomCutSampler::new(graph.n(), SplitMix64::derive(graph_seed, 5));
    let random = sample_best_trace(&mut random_sampler, graph, &checkpoints);

    Ok(SuiteTraces {
        solver,
        lif_gw,
        lif_tr,
        random,
        sdp_bound: gw.sdp_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentScale, SuiteConfig};
    use snc_graph::generators::erdos_renyi::gnp;
    use snc_maxcut::{LifGwCircuit, LifTrevisanCircuit};

    #[test]
    fn suite_produces_consistent_traces() {
        let g = gnp(30, 0.3, 7).unwrap();
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 256;
        let traces = run_suite(&g, &cfg, 42).unwrap();
        let m = g.m() as u64;
        for (name, t) in traces.named() {
            assert!(!t.best.is_empty(), "{name} trace empty");
            assert!(t.final_best() <= m, "{name} exceeds m");
            assert!(t.best.windows(2).all(|w| w[0] <= w[1]), "{name} not monotone");
        }
        // The paper's qualitative ordering at the end of sampling:
        // solver ≈ lif_gw ≥ random; everything ≤ SDP bound.
        assert!(traces.sdp_bound >= traces.solver.final_best() as f64 - 1e-6);
        let s = traces.solver.final_best() as f64;
        let c = traces.lif_gw.final_best() as f64;
        assert!((c - s).abs() / s.max(1.0) < 0.15, "solver {s} vs circuit {c}");
        assert!(traces.solver.final_best() >= traces.random.final_best());
    }

    #[test]
    fn suite_is_deterministic() {
        let g = gnp(20, 0.4, 3).unwrap();
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 64;
        let a = run_suite(&g, &cfg, 9).unwrap();
        let b = run_suite(&g, &cfg, 9).unwrap();
        assert_eq!(a.solver, b.solver);
        assert_eq!(a.lif_gw, b.lif_gw);
        assert_eq!(a.lif_tr, b.lif_tr);
        assert_eq!(a.random, b.random);
    }

    /// The batched harness at `replicas == 1` must reproduce the
    /// sequential circuits' traces bit-for-bit (same seed ladder, same
    /// checkpoint grid) — the batched steppers change the schedule, never
    /// the numbers.
    #[test]
    fn single_replica_suite_matches_sequential_circuits() {
        let g = gnp(18, 0.4, 11).unwrap();
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 64;
        assert_eq!(cfg.replicas, 1);
        let traces = run_suite(&g, &cfg, 33).unwrap();
        let checkpoints = log2_checkpoints(cfg.sample_budget);

        let sdp_cfg = SdpConfig {
            rank: cfg.sdp_rank,
            seed: SplitMix64::derive(33, 1),
            ..SdpConfig::default()
        };
        let gw = snc_maxcut::gw::solve_gw(&g, &GwConfig { sdp: sdp_cfg }).unwrap();
        let lif_gw_cfg = LifGwConfig { lif: cfg.lif, ..LifGwConfig::default() };
        let mut seq_gw = LifGwCircuit::new(&gw.factors, SplitMix64::derive(33, 3), &lif_gw_cfg);
        assert_eq!(traces.lif_gw, sample_best_trace(&mut seq_gw, &g, &checkpoints));

        let lif_tr_cfg = LifTrevisanConfig {
            network: snc_neuro::TwoStageConfig {
                lif: cfg.lif,
                ..snc_neuro::TwoStageConfig::default()
            },
            ..LifTrevisanConfig::default()
        };
        let mut seq_tr = LifTrevisanCircuit::new(&g, SplitMix64::derive(33, 4), &lif_tr_cfg);
        assert_eq!(traces.lif_tr, sample_best_trace(&mut seq_tr, &g, &checkpoints));
    }

    #[test]
    fn multi_replica_suite_merges_budget() {
        let g = gnp(24, 0.4, 5).unwrap();
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 256;
        cfg.replicas = 8;
        let traces = run_suite(&g, &cfg, 13).unwrap();
        // Circuit grids are merged total-sample counts ending at the
        // budget; software grids are untouched.
        assert_eq!(traces.lif_gw.checkpoints.last(), Some(&256));
        assert_eq!(traces.lif_tr.checkpoints.last(), Some(&256));
        assert_eq!(traces.lif_gw.checkpoints, log2_checkpoints(32).iter().map(|c| c * 8).collect::<Vec<_>>());
        assert_eq!(traces.solver.checkpoints, log2_checkpoints(256));
        for (name, t) in traces.named() {
            assert!(t.best.windows(2).all(|w| w[0] <= w[1]), "{name} not monotone");
            assert!(t.final_best() <= g.m() as u64, "{name} exceeds m");
        }
        // Determinism holds for the batched path too.
        let again = run_suite(&g, &cfg, 13).unwrap();
        assert_eq!(traces.lif_gw, again.lif_gw);
        assert_eq!(traces.lif_tr, again.lif_tr);
    }

    /// The serving layer's [`mod@snc_maxcut::solve`] entry point shares the
    /// suite's seed ladder and budget arithmetic, so a request carrying
    /// a figure's per-graph seed reproduces that figure's circuit trace
    /// bit for bit — the contract that makes server responses
    /// comparable to published harness numbers.
    #[test]
    fn server_solve_reproduces_suite_circuit_traces() {
        use snc_maxcut::{CircuitFamily, SolveSpec};
        let g = gnp(22, 0.4, 17).unwrap();
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 64;
        cfg.replicas = 4;
        let traces = run_suite(&g, &cfg, 21).unwrap();
        for (family, expected) in [
            (CircuitFamily::LifGw, &traces.lif_gw),
            (CircuitFamily::LifTrevisan, &traces.lif_tr),
        ] {
            let spec = SolveSpec {
                replicas: cfg.replicas,
                sdp_rank: cfg.sdp_rank,
                lif: cfg.lif,
                ..SolveSpec::new(family, cfg.sample_budget, 21)
            };
            let out = snc_maxcut::solve(&g, &spec).unwrap();
            assert_eq!(&out.trace, expected, "{family:?}");
            assert_eq!(out.best_cut.cut_value(&g), out.best_value);
        }
    }

    #[test]
    fn awkward_budget_replica_combinations_never_overshoot() {
        // Indivisible budget: merged trace ends at ⌊B/R⌋·R ≤ B.
        assert_eq!(replica_checkpoints(1000, 16).last(), Some(&62));
        assert_eq!(effective_replicas(1000, 16), 16); // 62·16 = 992 ≤ 1000
        // More replicas than samples: width capped at the budget.
        assert_eq!(effective_replicas(4, 8), 4);
        assert_eq!(replica_checkpoints(4, 8).last(), Some(&1)); // 1·4 = 4
        // Degenerate inputs stay sane: zero budget draws zero circuit
        // samples, exactly like the software baselines.
        assert_eq!(effective_replicas(0, 8), 1);
        assert_eq!(effective_replicas(64, 0), 1);
        assert!(replica_checkpoints(0, 8).is_empty());
        let g = gnp(12, 0.5, 2).unwrap();
        let mut cfg = SuiteConfig::for_scale(ExperimentScale::Quick);
        cfg.sample_budget = 10;
        cfg.replicas = 4;
        let traces = run_suite(&g, &cfg, 5).unwrap();
        // 4 replicas × ⌊10/4⌋ = 8 total circuit samples, ≤ budget.
        assert_eq!(traces.lif_gw.checkpoints.last(), Some(&8));
        assert_eq!(traces.lif_tr.checkpoints.last(), Some(&8));
        assert_eq!(traces.solver.checkpoints.last(), Some(&10));
    }
}
