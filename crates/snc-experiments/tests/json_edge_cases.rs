//! Edge-case pinning for `snc_experiments::json` — the parser behind
//! both the experiment reports and the `snc-server` wire format.
//!
//! With PR 5 the server can *replay* wire bodies from the response
//! cache, so every quirk of the parser is now load-bearing twice: once
//! when a request is parsed into a cache key, and again when a cached
//! body is parsed back into a job result. These tests lock the current
//! behavior explicitly — duplicate keys, the nesting-depth boundary,
//! lone surrogates, `-0.0`, and exponent round-trips — so any future
//! change to it is a deliberate, visible decision rather than silent
//! cache-key drift.

use snc_experiments::json::{parse, Json};

#[test]
fn duplicate_keys_are_preserved_in_order_and_get_returns_the_first() {
    let doc = parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap();
    // The parser is not a validator here: RFC 8259 leaves duplicate-key
    // handling to the implementation, and ours keeps every member.
    let members = doc.as_object().unwrap();
    assert_eq!(members.len(), 3);
    assert_eq!(members[0], ("a".to_string(), Json::UInt(1)));
    assert_eq!(members[2], ("a".to_string(), Json::UInt(3)));
    // Lookup semantics: first occurrence wins (what the wire layer sees).
    assert_eq!(doc.get("a"), Some(&Json::UInt(1)));
    // Rendering round-trips the duplicates verbatim.
    assert_eq!(doc.render(), r#"{"a":1,"b":2,"a":3}"#);
    assert_eq!(parse(&doc.render()).unwrap(), doc);
}

#[test]
fn nesting_depth_cap_sits_exactly_between_129_and_130() {
    // MAX_DEPTH is 128 and the root value parses at depth 0, so 129
    // nested arrays are legal (innermost parses at depth 128) and 130
    // are not. Lock the exact boundary: an off-by-one either way would
    // change which cached bodies replay.
    let ok = "[".repeat(129) + &"]".repeat(129);
    assert!(parse(&ok).is_ok(), "129 levels must parse");
    let too_deep = "[".repeat(130) + &"]".repeat(130);
    let err = parse(&too_deep).unwrap_err();
    assert!(err.message.contains("nesting too deep"), "{err}");
    // Objects count against the same budget as arrays, and a member
    // *value* costs one more level than the empty-array probe above:
    // 127 wrapping arrays put the object at depth 127 and its member
    // value at the cap, 128 push the member value over it.
    let mixed_ok = "[".repeat(127) + "{\"k\":0}" + &"]".repeat(127);
    assert!(parse(&mixed_ok).is_ok(), "member value exactly at the cap");
    let mixed_deep = "[".repeat(128) + "{\"k\":0}" + &"]".repeat(128);
    assert!(parse(&mixed_deep).is_err(), "member value one past the cap");
}

#[test]
fn lone_surrogates_are_rejected_in_every_position() {
    // High surrogate with nothing after it.
    assert!(parse("\"\\uD800\"").is_err());
    // High surrogate followed by a non-escape character.
    assert!(parse("\"\\uD800x\"").is_err());
    // High surrogate followed by a non-\u escape.
    assert!(parse("\"\\uD800\\n\"").is_err());
    // High surrogate followed by a \u escape that is not a low surrogate.
    assert!(parse("\"\\uD800\\u0041\"").is_err());
    // High surrogate followed by another high surrogate.
    assert!(parse("\"\\uD834\\uD834\"").is_err());
    // Low surrogate on its own, and leading a pair.
    assert!(parse("\"\\uDC00\"").is_err());
    assert!(parse("\"\\uDC00\\uD800\"").is_err());
    // A correct pair still decodes.
    assert_eq!(parse("\"\\uD834\\uDD1E\"").unwrap(), Json::str("𝄞"));
    // Surrogate halves cannot arrive as raw bytes in a &str at all, so
    // escape sequences are the only channel — and it is closed.
}

#[test]
fn negative_zero_is_a_float_but_bare_minus_zero_is_the_integer_zero() {
    // "-0.0" carries a float marker, parses as f64, and keeps its sign.
    let neg = parse("-0.0").unwrap();
    match neg {
        Json::Num(x) => {
            assert_eq!(x, 0.0);
            assert!(x.is_sign_negative(), "-0.0 keeps its sign bit");
        }
        other => panic!("expected Num, got {other:?}"),
    }
    // …and renders as Rust's shortest round-trip for -0.0, which is "-0".
    assert_eq!(neg.render(), "-0");
    // Bare "-0" has no float marker: it takes the integer path, where
    // i64 has no signed zero — the sign is lost. This asymmetry is the
    // current contract; byte-exact cache replay depends on it staying.
    let int = parse("-0").unwrap();
    assert_eq!(int, Json::Int(0));
    assert_eq!(int.render(), "0");
    // Round-trip stability from there on: "-0" → "0" → UInt(0) → "0".
    assert_eq!(parse(&int.render()).unwrap(), Json::UInt(0));
    // "-0e0" is a float again.
    assert_eq!(parse("-0e0").unwrap().render(), "-0");
}

#[test]
fn exponent_forms_normalize_through_shortest_roundtrip_rendering() {
    // Exponent input is legal; rendering uses Rust's shortest
    // round-trip `Display`, which never emits exponent notation — so
    // the *byte form* normalizes (sometimes to a long positional form)
    // while the value is preserved exactly.
    for (input, value, rendered) in [
        ("1e3", 1000.0, "1000"),
        ("1E3", 1000.0, "1000"),
        ("1.5e2", 150.0, "150"),
        ("2.5e-3", 0.0025, "0.0025"),
        ("1e-7", 1e-7, "0.0000001"),
        ("12e30", 1.2e31, "12000000000000000000000000000000"),
    ] {
        let v = parse(input).unwrap();
        assert_eq!(v.as_f64(), Some(value), "{input}");
        assert_eq!(v.render(), rendered, "{input}");
        // A second parse/render cycle is a fixed point — the property
        // cached-body replay relies on.
        assert_eq!(parse(&v.render()).unwrap().render(), rendered, "{input}");
    }
}

#[test]
fn integer_overflow_falls_back_to_f64_and_infinite_exponents_are_errors() {
    // u64::MAX parses exactly…
    assert_eq!(
        parse("18446744073709551615").unwrap(),
        Json::UInt(u64::MAX)
    );
    // …one more digit overflows into (lossy) f64 — locked, not lossless.
    let big = parse("184467440737095516150").unwrap();
    assert_eq!(big, Json::Num(u64::MAX as f64 * 10.0));
    // i64::MIN parses exactly; one less overflows to f64.
    assert_eq!(
        parse("-9223372036854775808").unwrap(),
        Json::Int(i64::MIN)
    );
    assert!(matches!(parse("-9223372036854775809").unwrap(), Json::Num(_)));
    // Values that overflow f64 itself are rejected (JSON has no Inf).
    for bad in ["1e999", "-1e999", "1e400"] {
        let err = parse(bad).unwrap_err();
        assert!(err.message.contains("invalid number"), "{bad}: {err}");
    }
}

#[test]
fn malformed_number_tokens_are_single_errors_not_splits() {
    // The number scanner consumes [-0-9.eE+] greedily, so these are
    // each ONE bad token (never "1" followed by trailing garbage).
    for bad in ["1.2.3", "1e", "1e+", "--1", "1-2", "0x10", ".5", "+1", "-"] {
        assert!(parse(bad).is_err(), "accepted {bad:?}");
    }
    // Leading zeros are tolerated by the current scanner (u64::parse
    // accepts them) — lock that too, it is part of the cache-key space.
    assert_eq!(parse("007").unwrap(), Json::UInt(7));
}
