//! Classic structured graphs with known maximum cuts.
//!
//! These are primarily test fixtures: bipartite families have `OPT = m`,
//! odd cycles have `OPT = m − 1`, complete graphs have
//! `OPT = ⌊n/2⌋·⌈n/2⌉` — exact values against which every solver in the
//! workspace is validated.

use crate::csr::Graph;

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as u32 {
        for v in u + 1..n as u32 {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("complete graph construction is infallible")
}

/// The complete bipartite graph `K_{a,b}` (parts `0..a` and `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            edges.push((u, a as u32 + v));
        }
    }
    Graph::from_edges(a + b, &edges).expect("bipartite construction is infallible")
}

/// The cycle `C_n` (empty for `n < 3`).
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return Graph::empty(n);
    }
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    Graph::from_edges(n, &edges).expect("cycle construction is infallible")
}

/// The path `P_n` with `n − 1` edges.
pub fn path(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
    Graph::from_edges(n, &edges).expect("path construction is infallible")
}

/// The star `S_n`: center vertex 0 connected to `n − 1` leaves.
pub fn star(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges).expect("star construction is infallible")
}

/// The `w × h` grid graph (vertices in row-major order).
pub fn grid2d(w: usize, h: usize) -> Graph {
    let mut edges = Vec::with_capacity(2 * w * h);
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    Graph::from_edges(w * h, &edges).expect("grid construction is infallible")
}

/// The Petersen graph (10 vertices, 15 edges, 3-regular; `OPT = 12`).
pub fn petersen() -> Graph {
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(15);
    // Outer 5-cycle, inner 5-cycle with step 2, and spokes.
    for i in 0..5u32 {
        edges.push((i, (i + 1) % 5));
        edges.push((5 + i, 5 + (i + 2) % 5));
        edges.push((i, 5 + i));
    }
    Graph::from_edges(10, &edges).expect("petersen construction is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!((g.n(), g.m()), (6, 15));
        assert_eq!(g.max_degree(), 5);
        assert_eq!(complete(1).m(), 0);
        assert_eq!(complete(0).n(), 0);
    }

    #[test]
    fn bipartite_counts_and_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!((g.n(), g.m()), (7, 12));
        // No edge within either part.
        for u in 0..3 {
            for v in 0..3 {
                assert!(!g.has_edge(u, v));
            }
        }
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn cycles_and_paths() {
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(cycle(2).m(), 0);
        assert_eq!(path(5).m(), 4);
        assert_eq!(path(1).m(), 0);
        assert_eq!(star(6).m(), 5);
        assert_eq!(star(6).degree(0), 5);
    }

    #[test]
    fn grid_counts() {
        // m = w(h−1) + h(w−1).
        let g = grid2d(3, 4);
        assert_eq!((g.n(), g.m()), (12, 3 * 3 + 4 * 2));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(2, 3)); // row wrap must not exist
    }

    #[test]
    fn petersen_is_3_regular() {
        let g = petersen();
        assert_eq!((g.n(), g.m()), (10, 15));
        for i in 0..10 {
            assert_eq!(g.degree(i), 3);
        }
        // Girth 5: no triangles.
        for (u, v) in g.edges() {
            for &w in g.neighbors(u as usize) {
                if w != v {
                    assert!(!g.has_edge(w as usize, v as usize));
                }
            }
        }
    }
}
