//! Banded mesh graphs.
//!
//! Stand-in generator for the `dwt-*` structural-engineering meshes of
//! Table I. Those matrices come from finite-element discretizations whose
//! adjacency is concentrated near the diagonal after bandwidth-reducing
//! (Cuthill–McKee) ordering — which is exactly a banded graph: vertex `i`
//! connects to `i ± 1, …, i ± b`.

use crate::csr::Graph;
use crate::error::GraphError;

/// The banded graph with bandwidth `b`: edges `{i, i+d}` for `1 ≤ d ≤ b`.
///
/// Edge count: `n·b − b(b+1)/2` (for `b < n`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `1 ≤ b < n`.
pub fn banded(n: usize, b: usize, seed_unused: u64) -> Result<Graph, GraphError> {
    let _ = seed_unused; // deterministic; parameter kept for generator-API uniformity
    if b == 0 || b >= n {
        return Err(GraphError::InvalidParameter {
            name: "b",
            constraint: format!("need 1 <= b < n = {n}, got {b}"),
        });
    }
    let mut edges = Vec::with_capacity(n * b);
    for i in 0..n {
        for d in 1..=b {
            if i + d < n {
                edges.push((i as u32, (i + d) as u32));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// The smallest bandwidth whose banded graph on `n` vertices has at least
/// `m` edges (useful for targeting an edge count before trimming).
pub fn bandwidth_for_edges(n: usize, m: usize) -> usize {
    let mut b = 1;
    while b + 1 < n && n * b - b * (b + 1) / 2 < m {
        b += 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_formula() {
        for &(n, b) in &[(10usize, 1usize), (10, 3), (209, 4), (503, 7)] {
            let g = banded(n, b, 0).unwrap();
            assert_eq!(g.m(), n * b - b * (b + 1) / 2, "n={n} b={b}");
        }
    }

    #[test]
    fn band_structure() {
        let g = banded(20, 3, 0).unwrap();
        assert!(g.has_edge(5, 6));
        assert!(g.has_edge(5, 8));
        assert!(!g.has_edge(5, 9));
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(10), 6); // interior: b on each side
    }

    #[test]
    fn bandwidth_targeting() {
        let b = bandwidth_for_edges(209, 767);
        let g = banded(209, b, 0).unwrap();
        assert!(g.m() >= 767);
        let g_smaller = banded(209, b - 1, 0).unwrap();
        assert!(g_smaller.m() < 767);
    }

    #[test]
    fn validation() {
        assert!(banded(5, 0, 0).is_err());
        assert!(banded(5, 5, 0).is_err());
    }
}
