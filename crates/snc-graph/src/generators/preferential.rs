//! Barabási–Albert preferential attachment.
//!
//! General-purpose scale-free generator used in tests and ablations: each
//! arriving vertex attaches to `k` existing vertices chosen proportionally
//! to their current degree (implemented with the repeated-endpoint trick:
//! sampling a uniform position in the edge-endpoint list is
//! degree-proportional sampling).

use crate::csr::Graph;
use crate::error::GraphError;
use snc_devices::{Rng64, Xoshiro256pp};

/// Samples a Barabási–Albert graph: starts from a clique on `k + 1`
/// vertices, then each new vertex attaches to `k` distinct existing
/// vertices with degree-proportional probability.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `1 ≤ k < n`.
pub fn preferential_attachment(n: usize, k: usize, seed: u64) -> Result<Graph, GraphError> {
    if k == 0 || k >= n {
        return Err(GraphError::InvalidParameter {
            name: "k",
            constraint: format!("need 1 <= k < n = {n}, got {k}"),
        });
    }
    let mut rng = Xoshiro256pp::new(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Flat list of edge endpoints: sampling uniformly from it is
    // degree-proportional vertex sampling.
    let mut endpoints: Vec<u32> = Vec::new();

    // Seed clique on k+1 vertices.
    for u in 0..=k as u32 {
        for v in u + 1..=k as u32 {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut chosen = Vec::with_capacity(k);
    for u in (k + 1)..n {
        chosen.clear();
        let mut guard = 0;
        while chosen.len() < k && guard < 10_000 {
            guard += 1;
            let v = endpoints[rng.next_index(endpoints.len())];
            if !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            edges.push((v, u as u32));
            endpoints.push(v);
            endpoints.push(u as u32);
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_formula() {
        // m = C(k+1, 2) + (n − k − 1)·k.
        let g = preferential_attachment(100, 3, 1).unwrap();
        assert_eq!(g.m(), 6 + 96 * 3);
        assert_eq!(g.n(), 100);
    }

    #[test]
    fn hubs_emerge() {
        let g = preferential_attachment(500, 2, 2).unwrap();
        let mut degs = g.degrees();
        degs.sort_unstable();
        let max = *degs.last().unwrap();
        let median = degs[degs.len() / 2];
        assert!(max as f64 > 5.0 * median as f64, "max={max} median={median}");
    }

    #[test]
    fn min_degree_is_k() {
        let g = preferential_attachment(200, 4, 3).unwrap();
        assert!(g.degrees().into_iter().min().unwrap() >= 4);
    }

    #[test]
    fn validation_and_determinism() {
        assert!(preferential_attachment(5, 0, 1).is_err());
        assert!(preferential_attachment(5, 5, 1).is_err());
        let a = preferential_attachment(50, 2, 9).unwrap();
        let b = preferential_attachment(50, 2, 9).unwrap();
        assert_eq!(a, b);
    }
}
