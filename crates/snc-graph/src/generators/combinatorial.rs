//! Exact reconstructions of combinatorial DIMACS instances.
//!
//! Two of the Table-I graphs are not empirical measurements but pure
//! combinatorial objects, so they can be regenerated exactly:
//!
//! * `hamming6-2` — vertices are the 64 six-bit words; two words are
//!   adjacent iff their Hamming distance is **at least 2**. That yields
//!   `m = 64·57/2 = 1824` (each word excludes itself and its 6
//!   distance-1 neighbors).
//! * `johnson16-2-4` — vertices are the 120 two-element subsets of a
//!   16-element set; two subsets are adjacent iff their "Johnson distance"
//!   (half the symmetric difference) is 2, i.e. iff they are **disjoint**.
//!   This is the Kneser graph `K(16, 2)` with `m = 120·91/2 = 5460`.

use crate::csr::Graph;
use crate::error::GraphError;

/// The DIMACS `hamming<bits>-<d>` graph: vertices are all `bits`-bit words,
/// edges join words at Hamming distance `≥ min_dist`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `bits` is 0 or exceeds 20
/// (over a million vertices — certainly a mistake) or `min_dist` is 0.
pub fn hamming_graph(bits: u32, min_dist: u32) -> Result<Graph, GraphError> {
    if bits == 0 || bits > 20 {
        return Err(GraphError::InvalidParameter {
            name: "bits",
            constraint: format!("must be in 1..=20, got {bits}"),
        });
    }
    if min_dist == 0 {
        return Err(GraphError::InvalidParameter {
            name: "min_dist",
            constraint: "must be positive".to_string(),
        });
    }
    let n = 1usize << bits;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in u + 1..n as u32 {
            if (u ^ v).count_ones() >= min_dist {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// The Kneser graph `K(n, k)`: vertices are the `k`-subsets of an
/// `n`-element ground set (in lexicographic order of their bitmasks);
/// edges join disjoint subsets.
///
/// `kneser_graph(16, 2)` is exactly the DIMACS instance `johnson16-2-4`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `0 < k ≤ n ≤ 32` and the
/// number of subsets stays below 10⁵.
pub fn kneser_graph(n: u32, k: u32) -> Result<Graph, GraphError> {
    if k == 0 || k > n || n > 32 {
        return Err(GraphError::InvalidParameter {
            name: "n/k",
            constraint: format!("need 0 < k <= n <= 32, got n={n} k={k}"),
        });
    }
    let masks = k_subsets(n, k);
    if masks.len() > 100_000 {
        return Err(GraphError::InvalidParameter {
            name: "n/k",
            constraint: format!("{} subsets is too many", masks.len()),
        });
    }
    let mut edges = Vec::new();
    for i in 0..masks.len() {
        for j in i + 1..masks.len() {
            if masks[i] & masks[j] == 0 {
                edges.push((i as u32, j as u32));
            }
        }
    }
    Graph::from_edges(masks.len(), &edges)
}

/// All `k`-subsets of `{0, …, n−1}` as bitmasks, in increasing mask order.
fn k_subsets(n: u32, k: u32) -> Vec<u32> {
    let mut out = Vec::new();
    // Gosper's hack: iterate masks with exactly k bits set.
    if k == 0 {
        return vec![0];
    }
    let mut mask: u64 = (1u64 << k) - 1;
    let limit: u64 = 1u64 << n;
    while mask < limit {
        out.push(mask as u32);
        let c = mask & mask.wrapping_neg();
        let r = mask + c;
        mask = (((r ^ mask) >> 2) / c) | r;
        if c == 0 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming6_2_matches_dimacs() {
        let g = hamming_graph(6, 2).unwrap();
        assert_eq!(g.n(), 64);
        assert_eq!(g.m(), 1824);
        // 57-regular: each word excludes itself and 6 distance-1 words.
        for i in 0..64 {
            assert_eq!(g.degree(i), 57);
        }
        // Adjacency semantics.
        assert!(!g.has_edge(0b000000, 0b000001)); // distance 1
        assert!(g.has_edge(0b000000, 0b000011)); // distance 2
    }

    #[test]
    fn johnson16_2_4_matches_dimacs() {
        let g = kneser_graph(16, 2).unwrap();
        assert_eq!(g.n(), 120);
        assert_eq!(g.m(), 5460);
        // Kneser K(16,2) is C(14,2) = 91 regular.
        for i in 0..120 {
            assert_eq!(g.degree(i), 91);
        }
    }

    #[test]
    fn petersen_is_kneser_5_2() {
        let g = kneser_graph(5, 2).unwrap();
        assert_eq!((g.n(), g.m()), (10, 15));
        for i in 0..10 {
            assert_eq!(g.degree(i), 3);
        }
    }

    #[test]
    fn subset_enumeration() {
        let s = k_subsets(4, 2);
        assert_eq!(s.len(), 6);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        for m in s {
            assert_eq!(m.count_ones(), 2);
        }
        assert_eq!(k_subsets(5, 0), vec![0]);
        assert_eq!(k_subsets(3, 3), vec![0b111]);
    }

    #[test]
    fn parameter_validation() {
        assert!(hamming_graph(0, 1).is_err());
        assert!(hamming_graph(21, 1).is_err());
        assert!(hamming_graph(4, 0).is_err());
        assert!(kneser_graph(4, 0).is_err());
        assert!(kneser_graph(3, 5).is_err());
        assert!(kneser_graph(33, 2).is_err());
    }

    #[test]
    fn hamming_full_distance_threshold() {
        // min_dist = bits keeps only antipodal pairs: a perfect matching.
        let g = hamming_graph(3, 3).unwrap();
        assert_eq!(g.m(), 4);
        for i in 0..8 {
            assert_eq!(g.degree(i), 1);
            assert!(g.has_edge(i, i ^ 0b111));
        }
    }
}
