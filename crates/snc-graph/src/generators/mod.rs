//! Graph generators.
//!
//! [`erdos_renyi`] provides the Figure-3 workload. [`combinatorial`]
//! reconstructs the two DIMACS instances of Table I exactly. The remaining
//! families are structure-matched stand-ins for the Network Repository
//! graphs (see DESIGN.md, "Substitutions") and general-purpose test
//! workloads.
//!
//! Every generator is deterministic in its seed.

pub mod chung_lu;
pub mod combinatorial;
pub mod erdos_renyi;
pub mod geometric;
pub mod mesh;
pub mod preferential;
pub mod structured;
pub mod watts_strogatz;

pub use chung_lu::chung_lu;
pub use combinatorial::{hamming_graph, kneser_graph};
pub use erdos_renyi::{gnm, gnp};
pub use geometric::knn_graph;
pub use mesh::banded;
pub use preferential::preferential_attachment;
pub use structured::{complete, complete_bipartite, cycle, grid2d, path, petersen, star};
pub use watts_strogatz::watts_strogatz;

use crate::csr::Graph;
use crate::error::GraphError;
use snc_devices::{Rng64, Xoshiro256pp};
use std::collections::HashSet;

/// Adjusts a graph to have exactly `m_target` edges by deterministically
/// removing random edges or adding random non-edges.
///
/// Used to pin synthetic stand-ins to the exact edge counts recorded for
/// the Network Repository graphs, so Table-I stand-ins share `(n, m)` with
/// the originals.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleEdgeCount`] if `m_target` exceeds
/// `n·(n−1)/2`.
pub fn adjust_to_edge_count(g: &Graph, m_target: usize, seed: u64) -> Result<Graph, GraphError> {
    let n = g.n();
    let max = n * n.saturating_sub(1) / 2;
    if m_target > max {
        return Err(GraphError::InfeasibleEdgeCount {
            requested: m_target,
            max,
        });
    }
    let mut rng = Xoshiro256pp::new(seed);
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    if edges.len() > m_target {
        rng.shuffle(&mut edges);
        edges.truncate(m_target);
    } else if edges.len() < m_target {
        let mut present: HashSet<(u32, u32)> = edges.iter().copied().collect();
        while present.len() < m_target {
            let u = rng.next_index(n) as u32;
            let v = rng.next_index(n) as u32;
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if present.insert(key) {
                edges.push(key);
            }
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjust_down_and_up() {
        let g = complete(10); // m = 45
        let down = adjust_to_edge_count(&g, 20, 1).unwrap();
        assert_eq!(down.m(), 20);
        assert_eq!(down.n(), 10);
        let up = adjust_to_edge_count(&down, 30, 2).unwrap();
        assert_eq!(up.m(), 30);
        // Exact no-op when already at target.
        let same = adjust_to_edge_count(&g, 45, 3).unwrap();
        assert_eq!(same.m(), 45);
    }

    #[test]
    fn adjust_infeasible() {
        let g = structured::cycle(4);
        assert!(matches!(
            adjust_to_edge_count(&g, 100, 1),
            Err(GraphError::InfeasibleEdgeCount { .. })
        ));
    }

    #[test]
    fn adjust_is_deterministic() {
        let g = complete(12);
        let a = adjust_to_edge_count(&g, 30, 9).unwrap();
        let b = adjust_to_edge_count(&g, 30, 9).unwrap();
        assert_eq!(a, b);
    }
}
