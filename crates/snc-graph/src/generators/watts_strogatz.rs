//! Watts–Strogatz small-world graphs.
//!
//! Stand-in generator for spatially embedded, low-diameter networks (the
//! `road-chesapeake` entry of Table I): a ring lattice where each vertex
//! connects to its `k` nearest ring neighbors, with each edge rewired to a
//! uniform random endpoint with probability `beta`.

use crate::csr::Graph;
use crate::error::GraphError;
use snc_devices::{Rng64, Xoshiro256pp};
use std::collections::HashSet;

/// Samples a Watts–Strogatz graph `WS(n, k, beta)`.
///
/// `k` must be even and less than `n`; `beta ∈ [0, 1]` is the rewiring
/// probability (0 = pure lattice, 1 = fully random).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] on violated constraints.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<Graph, GraphError> {
    if !k.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            name: "k",
            constraint: format!("must be even, got {k}"),
        });
    }
    if k >= n {
        return Err(GraphError::InvalidParameter {
            name: "k",
            constraint: format!("must be < n = {n}, got {k}"),
        });
    }
    if !(beta.is_finite() && (0.0..=1.0).contains(&beta)) {
        return Err(GraphError::InvalidParameter {
            name: "beta",
            constraint: format!("must be in [0, 1], got {beta}"),
        });
    }
    let mut rng = Xoshiro256pp::new(seed);
    let key = |u: u32, v: u32| (u.min(v), u.max(v));
    // Ring lattice, in deterministic order; the hash set only answers
    // membership queries (iteration order never matters).
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * k / 2);
    let mut present: HashSet<(u32, u32)> = HashSet::with_capacity(n * k);
    for u in 0..n {
        for d in 1..=k / 2 {
            let e = key(u as u32, ((u + d) % n) as u32);
            if present.insert(e) {
                edges.push(e);
            }
        }
    }
    // Rewire each lattice edge with probability beta.
    for edge in edges.iter_mut() {
        if rng.next_bool(beta) {
            let (u, v) = *edge;
            // Pick a new endpoint for u avoiding self-loops and duplicates.
            for _attempt in 0..32 {
                let w = rng.next_index(n) as u32;
                if w != u && !present.contains(&key(u, w)) {
                    present.remove(&(u, v));
                    let e = key(u, w);
                    present.insert(e);
                    *edge = e;
                    break;
                }
            }
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_limit() {
        // beta = 0 keeps the pure ring lattice: k-regular, m = n·k/2.
        let g = watts_strogatz(20, 4, 0.0, 1).unwrap();
        assert_eq!(g.m(), 40);
        for i in 0..20 {
            assert_eq!(g.degree(i), 4);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn rewiring_preserves_edge_count() {
        let g = watts_strogatz(50, 6, 0.3, 2).unwrap();
        assert_eq!(g.m(), 150);
    }

    #[test]
    fn full_rewiring_destroys_lattice() {
        let g = watts_strogatz(100, 4, 1.0, 3).unwrap();
        // Some lattice edges must be gone.
        let lattice_edges = (0..100).filter(|&u| g.has_edge(u, (u + 1) % 100)).count();
        assert!(lattice_edges < 95, "still {lattice_edges} lattice edges");
        assert_eq!(g.m(), 200);
    }

    #[test]
    fn validation() {
        assert!(watts_strogatz(10, 3, 0.1, 1).is_err()); // odd k
        assert!(watts_strogatz(4, 4, 0.1, 1).is_err()); // k >= n
        assert!(watts_strogatz(10, 2, 1.5, 1).is_err()); // bad beta
    }

    #[test]
    fn deterministic() {
        let a = watts_strogatz(30, 4, 0.2, 5).unwrap();
        let b = watts_strogatz(30, 4, 0.2, 5).unwrap();
        assert_eq!(a, b);
    }
}
