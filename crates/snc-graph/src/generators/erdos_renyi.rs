//! Erdős–Rényi random graphs.
//!
//! `G(n, p)` is the workload of the paper's Figure 3: n ∈ {50, 100, 200,
//! 350, 500}, p ∈ {0.1, 0.25, 0.5, 0.75}, ten graphs per combination.
//! Generation uses the Batagelj–Brandes geometric skipping method, which is
//! `O(n + m)` regardless of density.

use crate::csr::Graph;
use crate::error::GraphError;
use snc_devices::{Rng64, Xoshiro256pp};
use std::collections::HashSet;

/// Samples `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `p ∈ [0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
        return Err(GraphError::InvalidParameter {
            name: "p",
            constraint: format!("must be in [0, 1], got {p}"),
        });
    }
    if n == 0 || p == 0.0 {
        return Graph::from_edges(n, &[]);
    }
    if p >= 1.0 {
        return Ok(super::structured::complete(n));
    }
    let mut rng = Xoshiro256pp::new(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity((p * (n * (n - 1) / 2) as f64) as usize + 16);
    // Batagelj–Brandes: walk the implicit list of pairs (v, w), w < v, with
    // geometrically distributed skips.
    let lp = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let r = 1.0 - rng.next_f64(); // in (0, 1]
        w += 1 + (r.ln() / lp).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            edges.push((w as u32, v as u32));
        }
    }
    Graph::from_edges(n as usize, &edges)
}

/// Samples `G(n, m)`: a graph drawn uniformly among those with exactly `m`
/// edges.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleEdgeCount`] if `m > n·(n−1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    let max = n * n.saturating_sub(1) / 2;
    if m > max {
        return Err(GraphError::InfeasibleEdgeCount { requested: m, max });
    }
    let mut rng = Xoshiro256pp::new(seed);
    let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(m * 2);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    if m > max / 2 && max > 0 {
        // Dense regime: sample the complement instead, then invert.
        let excluded_count = max - m;
        let mut excluded: HashSet<(u32, u32)> = HashSet::with_capacity(excluded_count * 2);
        while excluded.len() < excluded_count {
            let u = rng.next_index(n) as u32;
            let v = rng.next_index(n) as u32;
            if u == v {
                continue;
            }
            excluded.insert((u.min(v), u.max(v)));
        }
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                if !excluded.contains(&(u, v)) {
                    edges.push((u, v));
                }
            }
        }
    } else {
        while edges.len() < m {
            let u = rng.next_index(n) as u32;
            let v = rng.next_index(n) as u32;
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if chosen.insert(key) {
                edges.push(key);
            }
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_edge_count_concentrates() {
        // E[m] = p · n(n−1)/2, sd = sqrt(p(1−p) pairs).
        for &(n, p) in &[(100usize, 0.1f64), (100, 0.5), (200, 0.25)] {
            let pairs = (n * (n - 1) / 2) as f64;
            let g = gnp(n, p, 42).unwrap();
            let expect = p * pairs;
            let sd = (p * (1.0 - p) * pairs).sqrt();
            assert!(
                ((g.m() as f64) - expect).abs() < 5.0 * sd,
                "n={n} p={p} m={} expect={expect}",
                g.m()
            );
        }
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).unwrap().m(), 0);
        assert_eq!(gnp(10, 1.0, 1).unwrap().m(), 45);
        assert_eq!(gnp(0, 0.5, 1).unwrap().n(), 0);
        assert!(gnp(10, 1.5, 1).is_err());
        assert!(gnp(10, f64::NAN, 1).is_err());
    }

    #[test]
    fn gnp_deterministic_and_seed_sensitive() {
        let a = gnp(50, 0.3, 7).unwrap();
        let b = gnp(50, 0.3, 7).unwrap();
        let c = gnp(50, 0.3, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_exact_count() {
        for &(n, m) in &[(30usize, 0usize), (30, 100), (30, 435), (30, 400)] {
            let g = gnm(n, m, 3).unwrap();
            assert_eq!(g.m(), m, "n={n} m={m}");
            assert_eq!(g.n(), n);
        }
    }

    #[test]
    fn gnm_infeasible() {
        assert!(gnm(5, 11, 1).is_err());
        assert!(gnm(1, 1, 1).is_err());
    }

    #[test]
    fn gnp_no_self_loops_or_duplicates() {
        let g = gnp(80, 0.4, 11).unwrap();
        for u in 0..g.n() {
            assert!(!g.has_edge(u, u));
            let nb = g.neighbors(u);
            for w in nb.windows(2) {
                assert!(w[0] < w[1], "duplicate neighbor");
            }
        }
    }

    #[test]
    fn paper_grid_parameters_generate() {
        // One small instance from each Figure-3 cell boundary.
        for &n in &[50usize, 100] {
            for &p in &[0.1, 0.25, 0.5, 0.75] {
                let g = gnp(n, p, 99).unwrap();
                assert_eq!(g.n(), n);
                assert!(g.m() > 0);
            }
        }
    }
}
