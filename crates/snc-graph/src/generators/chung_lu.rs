//! Chung–Lu random graphs with power-law expected degrees.
//!
//! The stand-in generator for the social, collaboration, and contact
//! networks of Table I: vertices get expected degrees `w_i ∝ (i + i₀)^{-1/(γ−1)}`
//! (a power-law with exponent `γ`), and each pair `{i, j}` is an edge
//! independently with probability `min(1, w_i w_j / Σw)`. A bisection on a
//! global multiplier steers the expected edge count to the requested `m`,
//! and [`super::adjust_to_edge_count`] pins it exactly.

use crate::csr::Graph;
use crate::error::GraphError;
use snc_devices::{Rng64, Xoshiro256pp};

/// Samples a Chung–Lu power-law graph with exactly `m` edges.
///
/// `gamma` is the power-law exponent (2.5 is a typical social-network
/// value; larger is more homogeneous).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `gamma <= 1` and
/// [`GraphError::InfeasibleEdgeCount`] if `m` exceeds `n(n−1)/2`.
pub fn chung_lu(n: usize, m: usize, gamma: f64, seed: u64) -> Result<Graph, GraphError> {
    if !(gamma.is_finite() && gamma > 1.0) {
        return Err(GraphError::InvalidParameter {
            name: "gamma",
            constraint: format!("must be > 1, got {gamma}"),
        });
    }
    let max = n * n.saturating_sub(1) / 2;
    if m > max {
        return Err(GraphError::InfeasibleEdgeCount { requested: m, max });
    }
    if n == 0 || m == 0 {
        return Ok(Graph::empty(n));
    }

    // Raw power-law weights; i0 offsets the head so the hub is not too hot.
    let alpha = 1.0 / (gamma - 1.0);
    let i0 = 1.0;
    let raw: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-alpha)).collect();

    // Expected edges for a multiplier c: Σ_{i<j} min(1, c·raw_i·raw_j / S).
    let s: f64 = raw.iter().sum();
    let expected_m = |c: f64| -> f64 {
        let mut acc = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                acc += (c * raw[i] * raw[j] / s).min(1.0);
            }
        }
        acc
    };

    // Bisection for the multiplier that hits the target in expectation.
    let (mut lo, mut hi) = (1e-6, 1.0);
    while expected_m(hi) < m as f64 && hi < 1e12 {
        hi *= 4.0;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected_m(mid) < m as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let c = 0.5 * (lo + hi);

    let mut rng = Xoshiro256pp::new(seed);
    let mut edges = Vec::with_capacity(m + m / 4);
    for i in 0..n {
        for j in i + 1..n {
            let p = (c * raw[i] * raw[j] / s).min(1.0);
            if rng.next_bool(p) {
                edges.push((i as u32, j as u32));
            }
        }
    }
    let g = Graph::from_edges(n, &edges)?;
    super::adjust_to_edge_count(&g, m, seed ^ 0xC1A0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        for &(n, m) in &[(62usize, 159usize), (143, 623), (379, 914)] {
            let g = chung_lu(n, m, 2.5, 7).unwrap();
            assert_eq!((g.n(), g.m()), (n, m));
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = chung_lu(400, 1200, 2.2, 3).unwrap();
        let mut degs = g.degrees();
        degs.sort_unstable();
        let max = *degs.last().unwrap() as f64;
        let median = degs[degs.len() / 2] as f64;
        // Power-law-ish: hub degree far above the median.
        assert!(
            max > 4.0 * median.max(1.0),
            "max={max} median={median} — not heavy-tailed"
        );
    }

    #[test]
    fn deterministic() {
        let a = chung_lu(100, 300, 2.5, 11).unwrap();
        let b = chung_lu(100, 300, 2.5, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parameter_validation() {
        assert!(chung_lu(10, 5, 1.0, 1).is_err());
        assert!(chung_lu(10, 5, f64::NAN, 1).is_err());
        assert!(chung_lu(4, 100, 2.5, 1).is_err());
        assert_eq!(chung_lu(10, 0, 2.5, 1).unwrap().m(), 0);
    }
}
