//! Random geometric (k-nearest-neighbor) graphs.
//!
//! Stand-in generator for the protein-structure graphs of Table I (`DD687`,
//! `ENZYMES8`): such graphs connect residues that are spatially close, so a
//! symmetrized k-NN graph over random points in the unit square reproduces
//! their local, low-crossing structure.

use crate::csr::Graph;
use crate::error::GraphError;
use snc_devices::{Rng64, Xoshiro256pp};

/// Samples `n` uniform points in the unit square and connects each point to
/// its `k` nearest neighbors (symmetrized: an edge exists if either
/// endpoint selects the other).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `1 ≤ k < n`.
pub fn knn_graph(n: usize, k: usize, seed: u64) -> Result<Graph, GraphError> {
    if k == 0 || k >= n {
        return Err(GraphError::InvalidParameter {
            name: "k",
            constraint: format!("need 1 <= k < n = {n}, got {k}"),
        });
    }
    let mut rng = Xoshiro256pp::new(seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();

    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * k);
    let mut dist_idx: Vec<(f64, u32)> = Vec::with_capacity(n - 1);
    for i in 0..n {
        dist_idx.clear();
        let (xi, yi) = points[i];
        for (j, &(xj, yj)) in points.iter().enumerate() {
            if j != i {
                let d2 = (xi - xj) * (xi - xj) + (yi - yj) * (yi - yj);
                dist_idx.push((d2, j as u32));
            }
        }
        // Partial selection of the k nearest.
        dist_idx.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for &(_, j) in &dist_idx[..k] {
            edges.push((i as u32, j));
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn basic_shape() {
        let g = knn_graph(100, 4, 1).unwrap();
        assert_eq!(g.n(), 100);
        // Symmetrized k-NN: every vertex has degree >= k, and m is between
        // n·k/2 (fully mutual) and n·k (no mutual picks).
        assert!(g.degrees().into_iter().min().unwrap() >= 4);
        assert!(g.m() >= 200 && g.m() <= 400, "m={}", g.m());
    }

    #[test]
    fn geometric_graphs_are_clustered() {
        // Local connectivity ⇒ clustering far above an ER graph of equal
        // density.
        let g = knn_graph(300, 6, 2).unwrap();
        let cc = stats::global_clustering(&g);
        assert!(cc > 0.3, "clustering={cc}");
    }

    #[test]
    fn validation_and_determinism() {
        assert!(knn_graph(10, 0, 1).is_err());
        assert!(knn_graph(10, 10, 1).is_err());
        let a = knn_graph(50, 3, 7).unwrap();
        let b = knn_graph(50, 3, 7).unwrap();
        assert_eq!(a, b);
    }
}
