//! Compressed sparse row (CSR) graphs and their spectral operators.
//!
//! Graphs are simple and undirected: no self-loops, no parallel edges. Each
//! undirected edge `{u, v}` is stored twice (once per endpoint) with sorted
//! neighbor lists, giving `O(log d)` adjacency queries and cache-friendly
//! row iteration — the access pattern of both cut evaluation and the
//! matrix-free spectral operators.

use crate::error::GraphError;
use snc_linalg::{DMatrix, LinOp};

/// A simple undirected graph in CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list.
    ///
    /// Self-loops are dropped; duplicate edges (in either orientation) are
    /// collapsed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if u == v {
                continue; // drop self-loops
            }
            pairs.push((u.min(v), u.max(v)));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut degree = vec![0usize; n];
        for &(u, v) in &pairs {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for &d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut targets = vec![0u32; offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v) in &pairs {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Neighbor lists are sorted because `pairs` was sorted and each
        // row is filled in increasing order of the opposite endpoint only
        // for the first endpoint; the second endpoint's rows need a sort.
        for i in 0..n {
            targets[offsets[i]..offsets[i + 1]].sort_unstable();
        }
        Ok(Self { n, offsets, targets })
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of vertex `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Sorted neighbor list of vertex `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Whether `{u, v}` is an edge (`O(log d)` binary search).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.n || v >= self.n || u == v {
            return false;
        }
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| (u as u32) < v)
                .map(move |&v| (u as u32, v))
        })
    }

    /// All degrees.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.n).map(|i| self.degree(i)).collect()
    }

    /// Maximum degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|i| self.degree(i)).max().unwrap_or(0)
    }

    /// Dense adjacency matrix (0/1 entries).
    pub fn adjacency_dense(&self) -> DMatrix {
        let mut a = DMatrix::zeros(self.n, self.n);
        for (u, v) in self.edges() {
            a[(u as usize, v as usize)] = 1.0;
            a[(v as usize, u as usize)] = 1.0;
        }
        a
    }

    /// Dense normalized adjacency `D^{-1/2} A D^{-1/2}` (rows/cols of
    /// isolated vertices are zero).
    pub fn normalized_adjacency_dense(&self) -> DMatrix {
        let inv_sqrt: Vec<f64> = (0..self.n)
            .map(|i| {
                let d = self.degree(i);
                if d == 0 {
                    0.0
                } else {
                    1.0 / (d as f64).sqrt()
                }
            })
            .collect();
        let mut a = DMatrix::zeros(self.n, self.n);
        for (u, v) in self.edges() {
            let (u, v) = (u as usize, v as usize);
            let w = inv_sqrt[u] * inv_sqrt[v];
            a[(u, v)] = w;
            a[(v, u)] = w;
        }
        a
    }

    /// Dense Trevisan matrix `I + D^{-1/2} A D^{-1/2}` (§II.B / §IV.B).
    pub fn trevisan_dense(&self) -> DMatrix {
        self.normalized_adjacency_dense().add_scaled_identity(1.0)
    }
}

/// Matrix-free normalized adjacency operator `x ↦ D^{-1/2} A D^{-1/2} x`.
///
/// Rows of isolated vertices act as zero. Spectrum lies in `[-1, 1]`.
#[derive(Clone, Debug)]
pub struct NormalizedAdjacency<'g> {
    graph: &'g Graph,
    inv_sqrt_deg: Vec<f64>,
}

impl<'g> NormalizedAdjacency<'g> {
    /// Builds the operator for a graph.
    pub fn new(graph: &'g Graph) -> Self {
        let inv_sqrt_deg = (0..graph.n())
            .map(|i| {
                let d = graph.degree(i);
                if d == 0 {
                    0.0
                } else {
                    1.0 / (d as f64).sqrt()
                }
            })
            .collect();
        Self { graph, inv_sqrt_deg }
    }

    /// The per-vertex scaling `1/√deg` (0 for isolated vertices).
    pub fn inv_sqrt_deg(&self) -> &[f64] {
        &self.inv_sqrt_deg
    }
}

impl LinOp for NormalizedAdjacency<'_> {
    fn dim(&self) -> usize {
        self.graph.n()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &j in self.graph.neighbors(i) {
                acc += self.inv_sqrt_deg[j as usize] * x[j as usize];
            }
            *yi = acc * self.inv_sqrt_deg[i];
        }
    }
}

/// Matrix-free Trevisan operator `x ↦ (I + D^{-1/2} A D^{-1/2}) x`.
///
/// Positive semidefinite with spectrum in `[0, 2]`; its minimum eigenvector
/// is what the Trevisan simple spectral algorithm (and the LIF-TR circuit's
/// Oja plasticity) extracts.
#[derive(Clone, Debug)]
pub struct TrevisanOperator<'g> {
    inner: NormalizedAdjacency<'g>,
}

impl<'g> TrevisanOperator<'g> {
    /// Builds the operator for a graph.
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            inner: NormalizedAdjacency::new(graph),
        }
    }
}

impl LinOp for TrevisanOperator<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]).unwrap();
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = triangle();
        let mut es: Vec<(u32, u32)> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(4);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn adjacency_dense_is_symmetric_01() {
        let g = triangle();
        let a = g.adjacency_dense();
        assert!(a.is_symmetric(0.0));
        assert_eq!(a[(0, 1)], 1.0);
        assert_eq!(a[(0, 0)], 0.0);
    }

    #[test]
    fn normalized_adjacency_regular_graph() {
        // On a d-regular graph the normalized adjacency is A/d.
        let g = triangle();
        let na = g.normalized_adjacency_dense();
        assert!((na[(0, 1)] - 0.5).abs() < 1e-15);
        // Row sums of D^{-1/2} A D^{-1/2} on a regular graph are 1.
        let ones = vec![1.0; 3];
        let y = na.matvec(&ones);
        for v in y {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_free_operators_match_dense() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap();
        let x: Vec<f64> = (0..5).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut y = vec![0.0; 5];

        let na = NormalizedAdjacency::new(&g);
        na.apply(&x, &mut y);
        let dense = g.normalized_adjacency_dense().matvec(&x);
        for (a, b) in y.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-14);
        }

        let tr = TrevisanOperator::new(&g);
        tr.apply(&x, &mut y);
        let dense_tr = g.trevisan_dense().matvec(&x);
        for (a, b) in y.iter().zip(&dense_tr) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn isolated_vertex_rows_are_zero() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let na = NormalizedAdjacency::new(&g);
        let mut y = vec![9.0; 3];
        na.apply(&[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y[2], 0.0);
        assert_eq!(na.inv_sqrt_deg()[2], 0.0);
    }

    #[test]
    fn trevisan_spectrum_bounds() {
        // Bipartite K2: Trevisan matrix eigenvalues are {0, 2}.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let t = g.trevisan_dense();
        let (vals, _) = snc_linalg::eigen::jacobi::symmetric_eigen(&t).unwrap();
        assert!((vals[0] - 0.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
    }
}
