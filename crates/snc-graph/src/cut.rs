//! Cut assignments and cut values.
//!
//! A cut partitions the vertex set into two classes, encoded as `±1` labels
//! exactly as in the paper's integer program (§II.A). The cut value of an
//! unweighted graph is the number of edges whose endpoints carry opposite
//! labels.

use crate::csr::Graph;
use snc_devices::Rng64;

/// A two-coloring of the vertices; `+1` and `−1` are the two sides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutAssignment {
    sides: Vec<i8>,
}

impl CutAssignment {
    /// All vertices on the `+1` side.
    pub fn all_ones(n: usize) -> Self {
        Self { sides: vec![1; n] }
    }

    /// Builds an assignment from `±1` labels.
    ///
    /// # Panics
    ///
    /// Panics if any label is not `+1` or `−1`.
    pub fn from_sides(sides: Vec<i8>) -> Self {
        assert!(
            sides.iter().all(|&s| s == 1 || s == -1),
            "labels must be ±1"
        );
        Self { sides }
    }

    /// Thresholds real values by sign: positive ⇒ `+1`, else `−1`.
    ///
    /// This is the rounding used by both the Gaussian sampling step of GW
    /// (§II.A) and the spectral thresholding of Trevisan (§II.B); ties
    /// (zeros) land on the `−1` side, matching the paper's `u_i ≤ 0` rule.
    pub fn from_signs(values: &[f64]) -> Self {
        Self {
            sides: values.iter().map(|&v| if v > 0.0 { 1 } else { -1 }).collect(),
        }
    }

    /// Spiking readout: `true` (spiked) ⇒ `+1` side, silent ⇒ `−1` side.
    ///
    /// "Neurons that spike together on a given timestep map to vertices on
    /// one side of the cut" (§IV.A).
    pub fn from_spikes(spiked: &[bool]) -> Self {
        Self {
            sides: spiked.iter().map(|&b| if b { 1 } else { -1 }).collect(),
        }
    }

    /// A uniformly random assignment — the paper's "Random" baseline.
    pub fn random(n: usize, rng: &mut impl Rng64) -> Self {
        Self {
            sides: (0..n).map(|_| if rng.next_bool(0.5) { 1 } else { -1 }).collect(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.sides.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.sides.is_empty()
    }

    /// The side (`±1`) of vertex `i`.
    #[inline]
    pub fn side(&self, i: usize) -> i8 {
        self.sides[i]
    }

    /// The raw label slice.
    pub fn sides(&self) -> &[i8] {
        &self.sides
    }

    /// Flips vertex `i` to the other side.
    pub fn flip(&mut self, i: usize) {
        self.sides[i] = -self.sides[i];
    }

    /// The complementary assignment (all labels negated). Cut values are
    /// invariant under complementation.
    pub fn complemented(&self) -> Self {
        Self {
            sides: self.sides.iter().map(|&s| -s).collect(),
        }
    }

    /// Number of vertices on the `+1` side.
    pub fn count_positive(&self) -> usize {
        self.sides.iter().filter(|&&s| s == 1).count()
    }

    /// The cut value: number of edges crossing the partition.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from `graph.n()`.
    pub fn cut_value(&self, graph: &Graph) -> u64 {
        assert_eq!(self.sides.len(), graph.n(), "assignment/graph size mismatch");
        let mut cut = 0u64;
        for (u, v) in graph.edges() {
            if self.sides[u as usize] != self.sides[v as usize] {
                cut += 1;
            }
        }
        cut
    }

    /// Change in cut value if vertex `i` were flipped (positive = improves).
    ///
    /// `Δ = (#same-side neighbors) − (#cross-side neighbors)` — the
    /// ingredient of 1-opt local search.
    pub fn flip_delta(&self, graph: &Graph, i: usize) -> i64 {
        let mut same = 0i64;
        let mut cross = 0i64;
        let si = self.sides[i];
        for &j in graph.neighbors(i) {
            if self.sides[j as usize] == si {
                same += 1;
            } else {
                cross += 1;
            }
        }
        same - cross
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snc_devices::Xoshiro256pp;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn trivial_cuts() {
        let g = path4();
        assert_eq!(CutAssignment::all_ones(4).cut_value(&g), 0);
        let alternating = CutAssignment::from_sides(vec![1, -1, 1, -1]);
        assert_eq!(alternating.cut_value(&g), 3); // bipartite max cut
    }

    #[test]
    fn complement_invariance() {
        let g = path4();
        let c = CutAssignment::from_sides(vec![1, 1, -1, 1]);
        assert_eq!(c.cut_value(&g), c.complemented().cut_value(&g));
    }

    #[test]
    fn sign_threshold_semantics() {
        let c = CutAssignment::from_signs(&[0.5, -0.1, 0.0, 2.0]);
        assert_eq!(c.sides(), &[1, -1, -1, 1]); // zero goes to −1 per paper
    }

    #[test]
    fn spike_readout() {
        let c = CutAssignment::from_spikes(&[true, false, true]);
        assert_eq!(c.sides(), &[1, -1, 1]);
        assert_eq!(c.count_positive(), 2);
    }

    #[test]
    fn flip_and_delta_consistent() {
        let g = path4();
        let mut c = CutAssignment::from_sides(vec![1, 1, -1, -1]);
        let before = c.cut_value(&g) as i64;
        for i in 0..4 {
            let delta = c.flip_delta(&g, i);
            let mut c2 = c.clone();
            c2.flip(i);
            assert_eq!(c2.cut_value(&g) as i64, before + delta, "vertex {i}");
        }
        c.flip(1);
        assert_eq!(c.side(1), -1);
    }

    #[test]
    fn cut_bounded_by_m() {
        let g = path4();
        let mut rng = Xoshiro256pp::new(5);
        for _ in 0..50 {
            let c = CutAssignment::random(4, &mut rng);
            assert!(c.cut_value(&g) <= g.m() as u64);
        }
    }

    #[test]
    fn random_cut_is_roughly_balanced() {
        let mut rng = Xoshiro256pp::new(6);
        let c = CutAssignment::random(10_000, &mut rng);
        let pos = c.count_positive() as f64 / 10_000.0;
        assert!((pos - 0.5).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "±1")]
    fn invalid_labels_rejected() {
        let _ = CutAssignment::from_sides(vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let g = path4();
        let _ = CutAssignment::all_ones(3).cut_value(&g);
    }
}
