//! The 16 empirical graphs of Figure 4 and Table I.
//!
//! The paper evaluates on graphs from the Network Repository \[26\], chosen
//! to match the benchmark set of Mirka & Williamson \[21\]. Two of them are
//! pure combinatorial objects and are **reconstructed exactly**
//! (`hamming6-2`, `johnson16-2-4`). The other fourteen are empirical
//! measurements we cannot redistribute; each is replaced by a
//! **structure-matched synthetic stand-in** with the same vertex and edge
//! counts, produced by a generator family appropriate to the graph's
//! provenance (see DESIGN.md, "Substitutions"). Users holding the original
//! `.mtx` files can load them via [`crate::io::load_graph`] and bypass the
//! stand-ins entirely.
//!
//! Each dataset carries the paper's Table-I reference values so experiment
//! reports can print paper-vs-measured side by side. Note that two of the
//! original graphs (`inf-USAir97`, `eco-stmarks`) are *weighted* networks,
//! so their paper cut values are weighted cuts; our unweighted stand-ins
//! reproduce ordering, not magnitude, there.

use crate::csr::Graph;
use crate::error::GraphError;
use crate::generators::{
    adjust_to_edge_count, banded, chung_lu, gnm, hamming_graph, kneser_graph, knn_graph,
    watts_strogatz,
};

/// The cut values reported in the paper's Table I for one graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// LIF-GW circuit best cut.
    pub lif_gw: u64,
    /// LIF-Trevisan circuit best cut.
    pub lif_tr: u64,
    /// Software SDP solver best cut.
    pub solver: u64,
    /// Random-assignment best cut.
    pub random: u64,
    /// Best cut reported by Mirka & Williamson \[21\] (rightmost column).
    pub mirka_williamson: u64,
}

/// How a dataset graph is produced in this reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Bit-for-bit reconstruction of the original combinatorial instance.
    Exact,
    /// Synthetic stand-in matching `(n, m)` and coarse structure.
    StandIn {
        /// The generator family used for the stand-in.
        family: &'static str,
    },
}

/// One of the 16 empirical graphs of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the dataset names
pub enum EmpiricalDataset {
    Hamming62,
    SocDolphins,
    InfUsair97,
    RoadChesapeake,
    Johnson1624,
    PHat7001,
    IaInfectDublin,
    CaNetscience,
    Dwt209,
    Dwt503,
    IaInfectHyper,
    EmailEnronOnly,
    Erdos991,
    EcoStmarks,
    DD687,
    Enzymes8,
}

impl EmpiricalDataset {
    /// All 16 datasets in the paper's Table-I order.
    pub fn all() -> [EmpiricalDataset; 16] {
        use EmpiricalDataset::*;
        [
            Hamming62,
            SocDolphins,
            InfUsair97,
            RoadChesapeake,
            Johnson1624,
            PHat7001,
            IaInfectDublin,
            CaNetscience,
            Dwt209,
            Dwt503,
            IaInfectHyper,
            EmailEnronOnly,
            Erdos991,
            EcoStmarks,
            DD687,
            Enzymes8,
        ]
    }

    /// The Network Repository name of the graph.
    pub fn name(&self) -> &'static str {
        use EmpiricalDataset::*;
        match self {
            Hamming62 => "hamming6-2",
            SocDolphins => "soc-dolphins",
            InfUsair97 => "inf-USAir97",
            RoadChesapeake => "road-chesapeake",
            Johnson1624 => "johnson16-2-4",
            PHat7001 => "p-hat700-1",
            IaInfectDublin => "ia-infect-dublin",
            CaNetscience => "ca-netscience",
            Dwt209 => "dwt-209",
            Dwt503 => "dwt-503",
            IaInfectHyper => "ia-infect-hyper",
            EmailEnronOnly => "email-enron-only",
            Erdos991 => "Erdos991",
            EcoStmarks => "eco-stmarks",
            DD687 => "DD687",
            Enzymes8 => "ENZYMES8",
        }
    }

    /// Vertex and edge counts `(n, m)` of the graph (as recorded from the
    /// Network Repository; exact for the combinatorial instances).
    pub fn size(&self) -> (usize, usize) {
        use EmpiricalDataset::*;
        match self {
            Hamming62 => (64, 1824),
            SocDolphins => (62, 159),
            InfUsair97 => (332, 2126),
            RoadChesapeake => (39, 170),
            Johnson1624 => (120, 5460),
            PHat7001 => (700, 60999),
            IaInfectDublin => (410, 2765),
            CaNetscience => (379, 914),
            Dwt209 => (209, 767),
            Dwt503 => (503, 3265),
            IaInfectHyper => (113, 2196),
            EmailEnronOnly => (143, 623),
            Erdos991 => (492, 1417),
            EcoStmarks => (54, 353),
            DD687 => (725, 2600),
            Enzymes8 => (88, 133),
        }
    }

    /// How this reproduction obtains the graph.
    pub fn provenance(&self) -> Provenance {
        use EmpiricalDataset::*;
        match self {
            Hamming62 | Johnson1624 => Provenance::Exact,
            SocDolphins | IaInfectDublin | CaNetscience | IaInfectHyper | EmailEnronOnly
            | Erdos991 | InfUsair97 => Provenance::StandIn { family: "chung-lu" },
            RoadChesapeake => Provenance::StandIn { family: "watts-strogatz" },
            PHat7001 | EcoStmarks => Provenance::StandIn { family: "erdos-renyi" },
            Dwt209 | Dwt503 => Provenance::StandIn { family: "banded-mesh" },
            DD687 | Enzymes8 => Provenance::StandIn { family: "knn-geometric" },
        }
    }

    /// The paper's Table-I reference cut values for this graph.
    pub fn paper_row(&self) -> PaperRow {
        use EmpiricalDataset::*;
        let (lif_gw, lif_tr, solver, random, mw) = match self {
            Hamming62 => (992, 972, 992, 957, 992),
            SocDolphins => (122, 122, 122, 107, 121),
            InfUsair97 => (107, 97, 107, 89, 107),
            RoadChesapeake => (126, 125, 126, 120, 125),
            Johnson1624 => (3036, 2987, 3036, 2858, 3036),
            PHat7001 => (33350, 31369, 33351, 31002, 33050),
            IaInfectDublin => (1751, 1600, 1750, 1494, 1664),
            CaNetscience => (635, 579, 634, 522, 611),
            Dwt209 => (554, 534, 554, 441, 540),
            Dwt503 => (1937, 1740, 1937, 1493, 1921),
            IaInfectHyper => (1277, 1262, 1277, 1182, 1233),
            EmailEnronOnly => (425, 394, 425, 367, 413),
            Erdos991 => (1027, 920, 1027, 791, 934),
            EcoStmarks => (1765, 1764, 1765, 1747, 1190),
            DD687 => (1786, 1625, 1783, 1411, 1680),
            Enzymes8 => (126, 124, 126, 95, 126),
        };
        PaperRow {
            lif_gw,
            lif_tr,
            solver,
            random,
            mirka_williamson: mw,
        }
    }

    /// Builds the graph (exact reconstruction or deterministic stand-in).
    ///
    /// Stand-ins use a fixed internal seed per dataset, so every call
    /// returns the identical graph — "the" stand-in, stable across runs
    /// and machines.
    ///
    /// # Errors
    ///
    /// Construction is infallible for valid built-in parameters; errors
    /// indicate an internal inconsistency.
    pub fn load(&self) -> Result<Graph, GraphError> {
        use EmpiricalDataset::*;
        let (n, m) = self.size();
        let seed = self.stand_in_seed();
        let g = match self {
            Hamming62 => hamming_graph(6, 2)?,
            Johnson1624 => kneser_graph(16, 2)?,
            SocDolphins => chung_lu(n, m, 2.5, seed)?,
            InfUsair97 => chung_lu(n, m, 2.1, seed)?, // hub-heavy airline network
            IaInfectDublin => chung_lu(n, m, 2.6, seed)?,
            CaNetscience => chung_lu(n, m, 2.3, seed)?,
            IaInfectHyper => chung_lu(n, m, 2.8, seed)?, // dense contact net
            EmailEnronOnly => chung_lu(n, m, 2.4, seed)?,
            Erdos991 => chung_lu(n, m, 2.2, seed)?,
            RoadChesapeake => {
                let base = watts_strogatz(n, 8, 0.15, seed)?; // m = 156
                adjust_to_edge_count(&base, m, seed ^ 1)?
            }
            PHat7001 => gnm(n, m, seed)?,
            EcoStmarks => gnm(n, m, seed)?,
            Dwt209 | Dwt503 => {
                let b = crate::generators::mesh::bandwidth_for_edges(n, m);
                let base = banded(n, b, seed)?;
                adjust_to_edge_count(&base, m, seed ^ 1)?
            }
            DD687 => {
                let base = knn_graph(n, 5, seed)?;
                adjust_to_edge_count(&base, m, seed ^ 1)?
            }
            Enzymes8 => {
                let base = knn_graph(n, 3, seed)?;
                adjust_to_edge_count(&base, m, seed ^ 1)?
            }
        };
        debug_assert_eq!((g.n(), g.m()), (n, m), "{} size mismatch", self.name());
        Ok(g)
    }

    /// Whether the original Network Repository graph is weighted.
    ///
    /// The paper's Table-I values for these graphs are weighted cuts,
    /// which is why they exceed the unweighted edge count (`eco-stmarks`:
    /// cut 1765 on a 54-vertex web).
    pub fn is_weighted(&self) -> bool {
        matches!(
            self,
            EmpiricalDataset::InfUsair97 | EmpiricalDataset::EcoStmarks
        )
    }

    /// Builds the weighted form of the graph.
    ///
    /// For the two originally weighted networks this attaches synthetic
    /// weights whose scale is calibrated to the paper's cut magnitudes
    /// (`inf-USAir97` stores normalized traffic volumes ≲ 0.2, so cuts are
    /// small; `eco-stmarks` stores biomass flows with mean ≈ 8). All other
    /// datasets get unit weights.
    ///
    /// # Errors
    ///
    /// Propagates construction failures (none for built-in parameters).
    pub fn load_weighted(&self) -> Result<crate::weighted::WeightedGraph, GraphError> {
        use crate::weighted::{randomize_weights, WeightDistribution, WeightedGraph};
        let base = self.load()?;
        let seed = self.stand_in_seed() ^ 0x77E1;
        match self {
            EmpiricalDataset::InfUsair97 => randomize_weights(
                &base,
                WeightDistribution::Uniform { lo: 0.0005, hi: 0.2 },
                seed,
            ),
            EmpiricalDataset::EcoStmarks => randomize_weights(
                &base,
                WeightDistribution::Exponential { mean: 8.0 },
                seed,
            ),
            _ => Ok(WeightedGraph::from_graph(&base)),
        }
    }

    /// The fixed stand-in seed (distinct per dataset, stable forever).
    fn stand_in_seed(&self) -> u64 {
        // FNV-1a over the dataset name: stable, human-independent.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn all_sizes_match_declared() {
        for ds in EmpiricalDataset::all() {
            let g = ds.load().unwrap();
            assert_eq!((g.n(), g.m()), ds.size(), "{}", ds.name());
        }
    }

    #[test]
    fn exact_instances_are_regular() {
        let h = EmpiricalDataset::Hamming62.load().unwrap();
        assert!(h.degrees().iter().all(|&d| d == 57));
        let j = EmpiricalDataset::Johnson1624.load().unwrap();
        assert!(j.degrees().iter().all(|&d| d == 91));
        assert_eq!(EmpiricalDataset::Hamming62.provenance(), Provenance::Exact);
    }

    #[test]
    fn loads_are_deterministic() {
        for ds in [
            EmpiricalDataset::SocDolphins,
            EmpiricalDataset::Dwt209,
            EmpiricalDataset::Enzymes8,
        ] {
            assert_eq!(ds.load().unwrap(), ds.load().unwrap(), "{}", ds.name());
        }
    }

    #[test]
    fn social_stand_ins_are_heavy_tailed() {
        let g = EmpiricalDataset::InfUsair97.load().unwrap();
        let s = stats::degree_stats(&g);
        assert!(s.max as f64 > 3.0 * s.median.max(1) as f64, "{s:?}");
    }

    #[test]
    fn mesh_stand_ins_are_narrow_banded() {
        let g = EmpiricalDataset::Dwt209.load().unwrap();
        let s = stats::degree_stats(&g);
        assert!(s.max <= 10, "{s:?}"); // meshes have bounded degree
    }

    #[test]
    fn paper_rows_are_internally_consistent() {
        for ds in EmpiricalDataset::all() {
            let row = ds.paper_row();
            // The solver never loses to the random baseline in Table I.
            assert!(row.solver >= row.random, "{}", ds.name());
            // LIF-GW tracks the solver within a couple of edges.
            let gap = row.solver.abs_diff(row.lif_gw);
            assert!(gap <= 3, "{}: gap {gap}", ds.name());
        }
    }

    #[test]
    fn weighted_loads_are_calibrated() {
        // USAir stand-in: small normalized weights.
        let usair = EmpiricalDataset::InfUsair97.load_weighted().unwrap();
        assert!(EmpiricalDataset::InfUsair97.is_weighted());
        let mean_w = usair.total_weight() / usair.m() as f64;
        assert!(mean_w < 0.25, "mean weight {mean_w}");
        // eco-stmarks: heavy weights matching the paper's magnitudes.
        let eco = EmpiricalDataset::EcoStmarks.load_weighted().unwrap();
        assert!(eco.total_weight() > 1765.0, "total {}", eco.total_weight());
        // Unweighted datasets lift to unit weights.
        let dolphins = EmpiricalDataset::SocDolphins.load_weighted().unwrap();
        assert!(!EmpiricalDataset::SocDolphins.is_weighted());
        assert_eq!(dolphins.total_weight(), dolphins.m() as f64);
        // Deterministic.
        assert_eq!(
            EmpiricalDataset::EcoStmarks.load_weighted().unwrap(),
            EmpiricalDataset::EcoStmarks.load_weighted().unwrap()
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = EmpiricalDataset::all().iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }
}
