//! Graph substrate for the MAXCUT reproduction.
//!
//! Provides everything the paper's evaluation needs from graphs:
//!
//! * [`csr`] — a compact CSR representation of simple undirected graphs,
//!   plus matrix-free symmetric operators (adjacency, normalized adjacency,
//!   and the Trevisan matrix `I + D^{-1/2} A D^{-1/2}`) implementing
//!   `snc_linalg::LinOp`.
//! * [`cut`] — cut assignments (`±1` vertex labels), cut values, and
//!   incremental flip deltas.
//! * [`fingerprint`] — canonical order-independent 128-bit graph hashes,
//!   the cache keys of the solve/serving layers (always paired with a
//!   full-key comparison by consumers).
//! * [`generators`] — Erdős–Rényi (the Figure-3 workload), Chung–Lu,
//!   Watts–Strogatz, preferential attachment, random geometric, banded-mesh
//!   and classic structured graphs, along with *exact* reconstructions of
//!   the combinatorial DIMACS instances `hamming6-2` and `johnson16-2-4`.
//! * [`io`] — edge-list, DIMACS, and MatrixMarket readers/writers, so the
//!   original Network Repository files can be dropped in when available.
//! * [`datasets`] — the 16 empirical graphs of Figure 4 / Table I, as exact
//!   reconstructions or structure-matched synthetic stand-ins (see
//!   DESIGN.md, "Substitutions").
//! * [`stats`] — degree statistics, connectivity, clustering, used to
//!   sanity-check the stand-ins.
//! * [`weighted`] — weighted graphs and weighted spectral operators (two
//!   of the Table-I networks are weighted).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csr;
pub mod cut;
pub mod datasets;
pub mod error;
pub mod fingerprint;
pub mod generators;
pub mod incremental;
pub mod io;
pub mod stats;
pub mod weighted;

pub use csr::{Graph, NormalizedAdjacency, TrevisanOperator};
pub use cut::CutAssignment;
pub use datasets::EmpiricalDataset;
pub use fingerprint::GraphFingerprint;
pub use incremental::{CutTracker, WeightedCutTracker};
pub use error::GraphError;
pub use weighted::{WeightedGraph, WeightedTrevisanOperator};
