//! Weighted undirected graphs.
//!
//! Two of the paper's Table-I networks (`inf-USAir97`, `eco-stmarks`) are
//! *weighted* graphs — visible in the paper's own numbers (a "cut of 1765"
//! on a 54-vertex food web is only possible with edge weights). The
//! general MAXCUT formulation in §II.A (`max ½ Σ A_ij (1 − v_i v_j)`)
//! already covers weights; this module provides the weighted CSR
//! representation and the weighted spectral operators so the full solver
//! stack (SDP, Trevisan, both circuits) runs on weighted instances.

use crate::csr::Graph;
use crate::cut::CutAssignment;
use crate::error::GraphError;
use snc_devices::{Rng64, Xoshiro256pp};
use snc_linalg::LinOp;

/// A simple undirected graph with finite `f64` edge weights, in CSR form.
///
/// Parallel edges are merged by summing weights; self-loops are dropped.
/// Negative weights are permitted for MAXCUT (they simply prefer keeping
/// endpoints together), but the spectral operators require non-negative
/// weights and check at construction.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedGraph {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

impl WeightedGraph {
    /// Builds a weighted graph from `(u, v, w)` triples.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] for bad endpoints and
    /// [`GraphError::InvalidParameter`] for non-finite weights.
    pub fn from_weighted_edges(
        n: usize,
        edges: &[(u32, u32, f64)],
    ) -> Result<Self, GraphError> {
        let mut pairs: Vec<(u32, u32, f64)> = Vec::with_capacity(edges.len());
        for &(u, v, w) in edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if !w.is_finite() {
                return Err(GraphError::InvalidParameter {
                    name: "weight",
                    constraint: format!("must be finite, got {w}"),
                });
            }
            if u == v {
                continue;
            }
            pairs.push((u.min(v), u.max(v), w));
        }
        pairs.sort_by_key(|a| (a.0, a.1));
        // Merge duplicates by summing weights.
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(pairs.len());
        for (u, v, w) in pairs {
            match merged.last_mut() {
                Some(last) if last.0 == u && last.1 == v => last.2 += w,
                _ => merged.push((u, v, w)),
            }
        }

        let mut degree = vec![0usize; n];
        for &(u, v, _) in &merged {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for &d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut targets = vec![0u32; offsets[n]];
        let mut weights = vec![0.0f64; offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v, w) in &merged {
            targets[cursor[u as usize]] = v;
            weights[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            weights[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        // Sort each row by target, carrying weights along.
        for i in 0..n {
            let range = offsets[i]..offsets[i + 1];
            let mut row: Vec<(u32, f64)> = targets[range.clone()]
                .iter()
                .copied()
                .zip(weights[range.clone()].iter().copied())
                .collect();
            row.sort_by_key(|&(t, _)| t);
            for (k, (t, w)) in row.into_iter().enumerate() {
                targets[offsets[i] + k] = t;
                weights[offsets[i] + k] = w;
            }
        }
        Ok(Self {
            n,
            offsets,
            targets,
            weights,
        })
    }

    /// Lifts an unweighted graph with unit weights.
    pub fn from_graph(graph: &Graph) -> Self {
        let edges: Vec<(u32, u32, f64)> = graph.edges().map(|(u, v)| (u, v, 1.0)).collect();
        Self::from_weighted_edges(graph.n(), &edges).expect("valid by construction")
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (merged) undirected edges.
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum::<f64>() / 2.0
    }

    /// Whether all weights are non-negative (required by the spectral
    /// operators).
    pub fn is_nonnegative(&self) -> bool {
        self.weights.iter().all(|&w| w >= 0.0)
    }

    /// Unweighted degree of a vertex.
    pub fn degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Weighted degree `Σ_j w_ij`.
    pub fn weighted_degree(&self, i: usize) -> f64 {
        self.weights[self.offsets[i]..self.offsets[i + 1]].iter().sum()
    }

    /// Sorted neighbor list of a vertex.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Weights aligned with [`WeightedGraph::neighbors`].
    pub fn neighbor_weights(&self, i: usize) -> &[f64] {
        &self.weights[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates over each edge once as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .zip(self.neighbor_weights(u))
                .filter(move |(&v, _)| (u as u32) < v)
                .map(move |(&v, &w)| (u as u32, v, w))
        })
    }

    /// The weighted cut value of an assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from `n`.
    pub fn cut_value(&self, cut: &CutAssignment) -> f64 {
        assert_eq!(cut.len(), self.n, "assignment/graph size mismatch");
        self.edges()
            .filter(|&(u, v, _)| cut.side(u as usize) != cut.side(v as usize))
            .map(|(_, _, w)| w)
            .sum()
    }

    /// Change in weighted cut value if vertex `i` were flipped
    /// (positive = improves): `Δ = Σ same-side w_ij − Σ cross-side w_ij`.
    ///
    /// The weighted analogue of [`Graph`]-based
    /// [`CutAssignment::flip_delta`], and the update rule behind
    /// [`crate::WeightedCutTracker`].
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from `n`.
    pub fn flip_delta(&self, cut: &CutAssignment, i: usize) -> f64 {
        assert_eq!(cut.len(), self.n, "assignment/graph size mismatch");
        let si = cut.side(i);
        let mut delta = 0.0;
        for (&j, &w) in self.neighbors(i).iter().zip(self.neighbor_weights(i)) {
            if cut.side(j as usize) == si {
                delta += w;
            } else {
                delta -= w;
            }
        }
        delta
    }

    /// Drops the weights (topology only).
    pub fn to_unweighted(&self) -> Graph {
        let edges: Vec<(u32, u32)> = self.edges().map(|(u, v, _)| (u, v)).collect();
        Graph::from_edges(self.n, &edges).expect("valid by construction")
    }
}

/// Matrix-free weighted normalized adjacency
/// `x ↦ D_w^{-1/2} A_w D_w^{-1/2} x` (weighted degrees).
///
/// Spectrum lies in `[-1, 1]` for non-negative weights.
#[derive(Clone, Debug)]
pub struct WeightedNormalizedAdjacency<'g> {
    graph: &'g WeightedGraph,
    inv_sqrt_deg: Vec<f64>,
}

impl<'g> WeightedNormalizedAdjacency<'g> {
    /// Builds the operator.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if any weight is negative.
    pub fn new(graph: &'g WeightedGraph) -> Result<Self, GraphError> {
        if !graph.is_nonnegative() {
            return Err(GraphError::InvalidParameter {
                name: "weights",
                constraint: "spectral operators require non-negative weights".to_string(),
            });
        }
        let inv_sqrt_deg = (0..graph.n())
            .map(|i| {
                let d = graph.weighted_degree(i);
                if d <= 0.0 {
                    0.0
                } else {
                    1.0 / d.sqrt()
                }
            })
            .collect();
        Ok(Self { graph, inv_sqrt_deg })
    }

    /// The per-vertex scaling `1/√(weighted degree)`.
    pub fn inv_sqrt_deg(&self) -> &[f64] {
        &self.inv_sqrt_deg
    }
}

impl LinOp for WeightedNormalizedAdjacency<'_> {
    fn dim(&self) -> usize {
        self.graph.n()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (&j, &w) in self
                .graph
                .neighbors(i)
                .iter()
                .zip(self.graph.neighbor_weights(i))
            {
                acc += w * self.inv_sqrt_deg[j as usize] * x[j as usize];
            }
            *yi = acc * self.inv_sqrt_deg[i];
        }
    }
}

/// The weighted Trevisan operator `I + D_w^{-1/2} A_w D_w^{-1/2}`.
#[derive(Clone, Debug)]
pub struct WeightedTrevisanOperator<'g> {
    inner: WeightedNormalizedAdjacency<'g>,
}

impl<'g> WeightedTrevisanOperator<'g> {
    /// Builds the operator.
    ///
    /// # Errors
    ///
    /// Same as [`WeightedNormalizedAdjacency::new`].
    pub fn new(graph: &'g WeightedGraph) -> Result<Self, GraphError> {
        Ok(Self {
            inner: WeightedNormalizedAdjacency::new(graph)?,
        })
    }
}

impl LinOp for WeightedTrevisanOperator<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += xi;
        }
    }
}

/// Weight distributions for synthesizing weighted stand-ins.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightDistribution {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exponential with the given mean (heavy-ish tail, all positive).
    Exponential {
        /// Mean weight.
        mean: f64,
    },
}

/// Assigns random weights to an unweighted graph's edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for invalid distribution
/// parameters.
pub fn randomize_weights(
    graph: &Graph,
    dist: WeightDistribution,
    seed: u64,
) -> Result<WeightedGraph, GraphError> {
    match dist {
        WeightDistribution::Uniform { lo, hi } if !(lo.is_finite() && hi.is_finite() && lo < hi) => {
            return Err(GraphError::InvalidParameter {
                name: "uniform bounds",
                constraint: format!("need finite lo < hi, got [{lo}, {hi})"),
            });
        }
        WeightDistribution::Exponential { mean } if !(mean.is_finite() && mean > 0.0) => {
            return Err(GraphError::InvalidParameter {
                name: "mean",
                constraint: format!("must be positive and finite, got {mean}"),
            });
        }
        _ => {}
    }
    let mut rng = Xoshiro256pp::new(seed);
    let edges: Vec<(u32, u32, f64)> = graph
        .edges()
        .map(|(u, v)| {
            let w = match dist {
                WeightDistribution::Uniform { lo, hi } => lo + (hi - lo) * rng.next_f64(),
                WeightDistribution::Exponential { mean } => {
                    -mean * (1.0 - rng.next_f64()).ln()
                }
            };
            (u, v, w)
        })
        .collect();
    WeightedGraph::from_weighted_edges(graph.n(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured::{complete_bipartite, cycle};

    fn wg3() -> WeightedGraph {
        WeightedGraph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 3.0), (0, 2, 0.5)]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let g = wg3();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!((g.total_weight() - 5.5).abs() < 1e-12);
        assert!((g.weighted_degree(1) - 5.0).abs() < 1e-12);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbor_weights(1), &[2.0, 3.0]);
        assert!(g.is_nonnegative());
    }

    #[test]
    fn duplicate_edges_merge_weights() {
        let g = WeightedGraph::from_weighted_edges(2, &[(0, 1, 1.0), (1, 0, 2.5)]).unwrap();
        assert_eq!(g.m(), 1);
        assert!((g.total_weight() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn self_loops_dropped_and_errors() {
        let g = WeightedGraph::from_weighted_edges(2, &[(0, 0, 5.0), (0, 1, 1.0)]).unwrap();
        assert_eq!(g.m(), 1);
        assert!(WeightedGraph::from_weighted_edges(2, &[(0, 5, 1.0)]).is_err());
        assert!(WeightedGraph::from_weighted_edges(2, &[(0, 1, f64::NAN)]).is_err());
    }

    #[test]
    fn weighted_cut_values() {
        let g = wg3();
        // Separate vertex 1: cuts edges (0,1)=2 and (1,2)=3.
        let cut = CutAssignment::from_sides(vec![1, -1, 1]);
        assert!((g.cut_value(&cut) - 5.0).abs() < 1e-12);
        assert!((g.cut_value(&cut.complemented()) - 5.0).abs() < 1e-12);
        assert_eq!(g.cut_value(&CutAssignment::all_ones(3)), 0.0);
    }

    #[test]
    fn unit_weights_match_unweighted() {
        let base = cycle(7);
        let g = WeightedGraph::from_graph(&base);
        let cut = CutAssignment::from_sides(vec![1, -1, 1, -1, 1, -1, 1]);
        assert_eq!(g.cut_value(&cut), cut.cut_value(&base) as f64);
        assert_eq!(g.to_unweighted(), base);
    }

    #[test]
    fn weighted_operators_match_unit_case() {
        // With unit weights the weighted operators equal the unweighted.
        let base = cycle(6);
        let wg = WeightedGraph::from_graph(&base);
        let op_w = WeightedTrevisanOperator::new(&wg).unwrap();
        let op_u = crate::csr::TrevisanOperator::new(&base);
        let x: Vec<f64> = (0..6).map(|i| (i as f64).cos()).collect();
        let mut yw = vec![0.0; 6];
        let mut yu = vec![0.0; 6];
        op_w.apply(&x, &mut yw);
        op_u.apply(&x, &mut yu);
        for (a, b) in yw.iter().zip(&yu) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn weighted_normalized_rowsums_are_one_for_positive_weights() {
        // D^{-1/2} A D^{-1/2} applied to D^{1/2}·1 returns D^{1/2}·1 (the
        // Perron vector), i.e. eigenvalue 1.
        let g = wg3();
        let op = WeightedNormalizedAdjacency::new(&g).unwrap();
        let sqrt_deg: Vec<f64> = (0..3).map(|i| g.weighted_degree(i).sqrt()).collect();
        let mut y = vec![0.0; 3];
        op.apply(&sqrt_deg, &mut y);
        for (a, b) in y.iter().zip(&sqrt_deg) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_weights_rejected_by_spectral_ops() {
        let g = WeightedGraph::from_weighted_edges(2, &[(0, 1, -1.0)]).unwrap();
        assert!(!g.is_nonnegative());
        assert!(WeightedNormalizedAdjacency::new(&g).is_err());
        assert!(WeightedTrevisanOperator::new(&g).is_err());
    }

    #[test]
    fn randomize_weights_distributions() {
        let base = complete_bipartite(5, 5);
        let uni = randomize_weights(&base, WeightDistribution::Uniform { lo: 1.0, hi: 2.0 }, 3)
            .unwrap();
        assert_eq!(uni.m(), 25);
        for (_, _, w) in uni.edges() {
            assert!((1.0..2.0).contains(&w));
        }
        let exp =
            randomize_weights(&base, WeightDistribution::Exponential { mean: 4.0 }, 3).unwrap();
        let mean = exp.total_weight() / exp.m() as f64;
        assert!((mean - 4.0).abs() < 2.0, "mean={mean}");
        // Determinism.
        let exp2 =
            randomize_weights(&base, WeightDistribution::Exponential { mean: 4.0 }, 3).unwrap();
        assert_eq!(exp, exp2);
        // Bad parameters.
        assert!(randomize_weights(&base, WeightDistribution::Uniform { lo: 2.0, hi: 1.0 }, 3).is_err());
        assert!(randomize_weights(&base, WeightDistribution::Exponential { mean: -1.0 }, 3).is_err());
    }
}
