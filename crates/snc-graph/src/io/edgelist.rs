//! Plain edge-list format.
//!
//! One `u v` pair per line, whitespace separated; lines starting with `#`
//! or `%` are comments. Vertex ids may be 0- or 1-based; the parser infers
//! the vertex count from the maximum id and never renumbers, except that a
//! file whose minimum id is 1 is treated as 1-based and shifted down.

use crate::csr::Graph;
use crate::error::GraphError;
use std::fmt::Write as _;

/// Parses an edge list from a string.
///
/// Files written by [`to_string`] carry a `# snc edge list: n=.. m=..`
/// header that pins the vertex count and 0-based indexing, making the
/// round trip exact even with isolated or unused low vertices. Foreign
/// files fall back to the 0/1-based inference heuristic.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines.
pub fn parse(content: &str) -> Result<Graph, GraphError> {
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let mut min_id = u64::MAX;
    let mut max_id = 0u64;
    let mut declared_n: Option<usize> = None;
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("# snc edge list:") {
            for token in rest.split_whitespace() {
                if let Some(n) = token.strip_prefix("n=") {
                    declared_n = n.parse().ok();
                }
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing first endpoint"))?
            .parse()
            .map_err(|_| parse_err(lineno, "first endpoint is not an integer"))?;
        let v: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing second endpoint"))?
            .parse()
            .map_err(|_| parse_err(lineno, "second endpoint is not an integer"))?;
        // Extra columns (weights, timestamps) are ignored.
        min_id = min_id.min(u.min(v));
        max_id = max_id.max(u.max(v));
        edges.push((u, v));
    }
    if edges.is_empty() {
        return Graph::from_edges(declared_n.unwrap_or(0), &[]);
    }
    // A declared header pins 0-based indexing; otherwise infer: files whose
    // minimum id is 1 are treated as 1-based and shifted down.
    let shift = match declared_n {
        Some(_) => 0,
        None => u64::from(min_id >= 1),
    };
    let n = declared_n.unwrap_or((max_id - shift + 1) as usize);
    let shifted: Vec<(u32, u32)> = edges
        .into_iter()
        .map(|(u, v)| ((u - shift) as u32, (v - shift) as u32))
        .collect();
    Graph::from_edges(n, &shifted)
}

/// Serializes a graph as a 0-based edge list with a header comment.
pub fn to_string(g: &Graph) -> String {
    let mut out = String::with_capacity(16 * g.m() + 64);
    // The header makes the round trip exact: it declares the vertex count
    // and marks the ids as 0-based (see `parse`).
    let _ = writeln!(out, "# snc edge list: n={} m={}", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

fn parse_err(lineno: usize, message: &str) -> GraphError {
    GraphError::Parse {
        line: lineno + 1,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_zero_based() {
        let g = parse("0 1\n1 2\n").unwrap();
        assert_eq!((g.n(), g.m()), (3, 2));
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn parses_one_based_with_shift() {
        let g = parse("1 2\n2 3\n").unwrap();
        assert_eq!((g.n(), g.m()), (3, 2));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn comments_and_blank_lines() {
        let g = parse("# header\n% other comment\n\n0 1\n").unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn extra_columns_ignored() {
        let g = parse("0 1 3.5\n1 2 0.1 extra\n").unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        match parse("0 1\nbogus\n") {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("0\n").is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse("# nothing\n").unwrap();
        assert_eq!((g.n(), g.m()), (0, 0));
    }

    #[test]
    fn roundtrip() {
        let g = crate::generators::structured::grid2d(3, 3);
        let s = to_string(&g);
        let g2 = parse(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn header_pins_indexing_and_isolated_vertices() {
        // Vertex 0 isolated, only edge (1,2): without the header this would
        // be misread as a 1-based file and shifted to (0,1).
        let g = Graph::from_edges(4, &[(1, 2)]).unwrap();
        let g2 = parse(&to_string(&g)).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.n(), 4);
        assert!(g2.has_edge(1, 2));
        assert!(!g2.has_edge(0, 1));
    }

    #[test]
    fn header_with_zero_edges() {
        let g = Graph::empty(5);
        let g2 = parse(&to_string(&g)).unwrap();
        assert_eq!(g2.n(), 5);
        assert_eq!(g2.m(), 0);
    }
}
