//! Plain edge-list format.
//!
//! One `u v` pair per line, whitespace separated; lines starting with `#`
//! or `%` are comments. Vertex ids may be 0- or 1-based; the parser infers
//! the vertex count from the maximum id and never renumbers, except that a
//! file whose minimum id is 1 is treated as 1-based and shifted down.

use crate::csr::Graph;
use crate::error::GraphError;
use std::fmt::Write as _;

/// The raw content of an edge-list file: id pairs as written, before
/// any graph is built.
///
/// Produced by [`scan`]; lets callers bound-check [`RawEdgeList::n`]
/// (e.g. a server admitting request bodies) *before* committing to the
/// CSR allocation that [`RawEdgeList::into_graph`] performs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawEdgeList {
    /// Edge id pairs in file order, unshifted.
    pub edges: Vec<(u64, u64)>,
    /// Vertex count pinned by an `# snc edge list:` header, if present.
    pub declared_n: Option<usize>,
    /// Smallest id referenced (`u64::MAX` when there are no edges).
    pub min_id: u64,
    /// Largest id referenced (0 when there are no edges).
    pub max_id: u64,
}

impl RawEdgeList {
    /// The 0/1-based indexing shift [`into_graph`](Self::into_graph)
    /// will apply: a declared header pins 0-based ids; otherwise files
    /// whose minimum id is 1 are treated as 1-based and shifted down.
    fn shift(&self) -> u64 {
        match self.declared_n {
            Some(_) => 0,
            None => u64::from(self.min_id >= 1),
        }
    }

    /// The vertex count the graph will have (before any allocation).
    pub fn n(&self) -> usize {
        if self.edges.is_empty() {
            return self.declared_n.unwrap_or(0);
        }
        self.declared_n
            .unwrap_or((self.max_id - self.shift()).saturating_add(1) as usize)
    }

    /// Builds the CSR graph (this is where allocation happens).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Parse`] for ids exceeding `u32` and
    /// propagates CSR construction errors.
    pub fn into_graph(self) -> Result<Graph, GraphError> {
        if self.edges.is_empty() {
            return Graph::from_edges(self.declared_n.unwrap_or(0), &[]);
        }
        let shift = self.shift();
        assemble(&self.edges, self.declared_n, shift, self.max_id)
    }
}

/// Parses an edge list from a string.
///
/// Files written by [`to_string`] carry a `# snc edge list: n=.. m=..`
/// header that pins the vertex count and 0-based indexing, making the
/// round trip exact even with isolated or unused low vertices. Foreign
/// files fall back to the 0/1-based inference heuristic.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines.
pub fn parse(content: &str) -> Result<Graph, GraphError> {
    scan(content)?.into_graph()
}

/// Tokenizes an edge-list file without building a graph — the
/// allocation-free front half of [`parse`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines.
pub fn scan(content: &str) -> Result<RawEdgeList, GraphError> {
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let mut min_id = u64::MAX;
    let mut max_id = 0u64;
    let mut declared_n: Option<usize> = None;
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("# snc edge list:") {
            for token in rest.split_whitespace() {
                if let Some(n) = token.strip_prefix("n=") {
                    declared_n = n.parse().ok();
                }
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing first endpoint"))?
            .parse()
            .map_err(|_| parse_err(lineno, "first endpoint is not an integer"))?;
        let v: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing second endpoint"))?
            .parse()
            .map_err(|_| parse_err(lineno, "second endpoint is not an integer"))?;
        // Extra columns (weights, timestamps) are ignored.
        min_id = min_id.min(u.min(v));
        max_id = max_id.max(u.max(v));
        edges.push((u, v));
    }
    Ok(RawEdgeList {
        edges,
        declared_n,
        min_id,
        max_id,
    })
}

/// Builds a graph from 0-based `(u, v)` id pairs, the form solve-request
/// bodies carry edges in (a JSON `[[u, v], …]` array). Unlike [`parse`],
/// no 1-based inference is applied: ids are taken as written. `declared_n`
/// pins the vertex count (allowing trailing isolated vertices); without
/// it the count is `max id + 1`.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for ids that exceed `u32`, and
/// [`GraphError::VertexOutOfRange`] when a pair references a vertex
/// `≥ declared_n`.
pub fn from_pairs(pairs: &[(u64, u64)], declared_n: Option<usize>) -> Result<Graph, GraphError> {
    if pairs.is_empty() {
        return Graph::from_edges(declared_n.unwrap_or(0), &[]);
    }
    let max_id = pairs.iter().map(|&(u, v)| u.max(v)).max().unwrap_or(0);
    assemble(pairs, declared_n, 0, max_id)
}

/// Shared tail of [`parse`] and [`from_pairs`]: shift ids, bound-check
/// them against `u32`, and hand the edge list to the CSR builder.
fn assemble(
    edges: &[(u64, u64)],
    declared_n: Option<usize>,
    shift: u64,
    max_id: u64,
) -> Result<Graph, GraphError> {
    if max_id - shift > u64::from(u32::MAX) {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("vertex id {max_id} exceeds the supported range (u32)"),
        });
    }
    let n = declared_n.unwrap_or((max_id - shift + 1) as usize);
    let shifted: Vec<(u32, u32)> = edges
        .iter()
        .map(|&(u, v)| ((u - shift) as u32, (v - shift) as u32))
        .collect();
    Graph::from_edges(n, &shifted)
}

/// Serializes a graph as a 0-based edge list with a header comment.
pub fn to_string(g: &Graph) -> String {
    let mut out = String::with_capacity(16 * g.m() + 64);
    // The header makes the round trip exact: it declares the vertex count
    // and marks the ids as 0-based (see `parse`).
    let _ = writeln!(out, "# snc edge list: n={} m={}", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

fn parse_err(lineno: usize, message: &str) -> GraphError {
    GraphError::Parse {
        line: lineno + 1,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_zero_based() {
        let g = parse("0 1\n1 2\n").unwrap();
        assert_eq!((g.n(), g.m()), (3, 2));
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn parses_one_based_with_shift() {
        let g = parse("1 2\n2 3\n").unwrap();
        assert_eq!((g.n(), g.m()), (3, 2));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn comments_and_blank_lines() {
        let g = parse("# header\n% other comment\n\n0 1\n").unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn extra_columns_ignored() {
        let g = parse("0 1 3.5\n1 2 0.1 extra\n").unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        match parse("0 1\nbogus\n") {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("0\n").is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse("# nothing\n").unwrap();
        assert_eq!((g.n(), g.m()), (0, 0));
    }

    #[test]
    fn roundtrip() {
        let g = crate::generators::structured::grid2d(3, 3);
        let s = to_string(&g);
        let g2 = parse(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn header_pins_indexing_and_isolated_vertices() {
        // Vertex 0 isolated, only edge (1,2): without the header this would
        // be misread as a 1-based file and shifted to (0,1).
        let g = Graph::from_edges(4, &[(1, 2)]).unwrap();
        let g2 = parse(&to_string(&g)).unwrap();
        assert_eq!(g, g2);
        assert_eq!(g2.n(), 4);
        assert!(g2.has_edge(1, 2));
        assert!(!g2.has_edge(0, 1));
    }

    #[test]
    fn scan_reports_n_without_building() {
        // Bound checks can run before the CSR allocation: one tiny line
        // naming a huge id reports the would-be n without allocating.
        let raw = scan("0 4294967294\n").unwrap();
        assert_eq!(raw.n(), 4_294_967_295);
        assert_eq!(raw.edges, vec![(0, 4294967294)]);
        // Header-pinned n is reported as declared.
        let raw = scan("# snc edge list: n=7 m=1\n1 2\n").unwrap();
        assert_eq!(raw.n(), 7);
        // 1-based inference matches what into_graph/parse build.
        let raw = scan("1 2\n2 3\n").unwrap();
        assert_eq!(raw.n(), 3);
        assert_eq!(raw.clone().into_graph().unwrap(), parse("1 2\n2 3\n").unwrap());
        // Empty content.
        assert_eq!(scan("# c\n").unwrap().n(), 0);
    }

    #[test]
    fn from_pairs_is_zero_based_with_inferred_n() {
        // No 1-based inference: a minimum id of 1 leaves vertex 0 isolated.
        let g = from_pairs(&[(1, 2), (2, 3)], None).unwrap();
        assert_eq!((g.n(), g.m()), (4, 2));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn from_pairs_declared_n_allows_isolated_tail() {
        let g = from_pairs(&[(0, 1)], Some(5)).unwrap();
        assert_eq!((g.n(), g.m()), (5, 1));
        // Declared n still bound-checks.
        match from_pairs(&[(0, 7)], Some(3)) {
            Err(GraphError::VertexOutOfRange { vertex: 7, .. }) => {}
            other => panic!("expected out-of-range, got {other:?}"),
        }
    }

    #[test]
    fn from_pairs_rejects_oversized_ids_and_accepts_empty() {
        assert!(from_pairs(&[(0, u64::from(u32::MAX) + 1)], None).is_err());
        let g = from_pairs(&[], Some(3)).unwrap();
        assert_eq!((g.n(), g.m()), (3, 0));
        let g = from_pairs(&[], None).unwrap();
        assert_eq!((g.n(), g.m()), (0, 0));
    }

    #[test]
    fn header_with_zero_edges() {
        let g = Graph::empty(5);
        let g2 = parse(&to_string(&g)).unwrap();
        assert_eq!(g2.n(), 5);
        assert_eq!(g2.m(), 0);
    }
}
