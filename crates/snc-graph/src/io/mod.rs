//! Graph file IO.
//!
//! Readers and writers for the three formats the Network Repository and
//! DIMACS distribute graphs in, so users holding the paper's original
//! input files can load them directly in place of the synthetic stand-ins:
//!
//! * [`edgelist`] — whitespace-separated `u v` pairs with `#`/`%` comments.
//! * [`dimacs`] — the DIMACS `p edge` format (`e u v`, 1-based).
//! * [`matrix_market`] — MatrixMarket coordinate format (`.mtx`), the
//!   format the Network Repository uses; symmetric pattern or weighted
//!   entries (weights are ignored — the paper treats all graphs as
//!   unweighted).

pub mod dimacs;
pub mod edgelist;
pub mod matrix_market;

use crate::csr::Graph;
use crate::error::GraphError;
use std::path::Path;

/// Recognized on-disk graph formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Plain edge list.
    EdgeList,
    /// DIMACS `p edge`.
    Dimacs,
    /// MatrixMarket coordinate.
    MatrixMarket,
}

impl Format {
    /// Guesses the format from a file extension (defaults to edge list).
    pub fn from_extension(path: &Path) -> Format {
        match path
            .extension()
            .and_then(|e| e.to_str())
            .map(|e| e.to_ascii_lowercase())
            .as_deref()
        {
            Some("mtx") => Format::MatrixMarket,
            Some("dimacs") | Some("col") | Some("clq") => Format::Dimacs,
            _ => Format::EdgeList,
        }
    }
}

/// Loads a graph from a file, dispatching on the extension.
///
/// # Errors
///
/// Propagates IO errors and per-format parse errors.
pub fn load_graph(path: &Path) -> Result<Graph, GraphError> {
    let content = std::fs::read_to_string(path)?;
    match Format::from_extension(path) {
        Format::EdgeList => edgelist::parse(&content),
        Format::Dimacs => dimacs::parse(&content),
        Format::MatrixMarket => matrix_market::parse(&content),
    }
}

/// Saves a graph to a file in the given format.
///
/// # Errors
///
/// Propagates IO errors.
pub fn save_graph(g: &Graph, path: &Path, format: Format) -> Result<(), GraphError> {
    let text = match format {
        Format::EdgeList => edgelist::to_string(g),
        Format::Dimacs => dimacs::to_string(g),
        Format::MatrixMarket => matrix_market::to_string(g),
    };
    std::fs::write(path, text)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured::petersen;

    #[test]
    fn format_detection() {
        assert_eq!(Format::from_extension(Path::new("a.mtx")), Format::MatrixMarket);
        assert_eq!(Format::from_extension(Path::new("a.col")), Format::Dimacs);
        assert_eq!(Format::from_extension(Path::new("a.txt")), Format::EdgeList);
        assert_eq!(Format::from_extension(Path::new("noext")), Format::EdgeList);
    }

    #[test]
    fn file_roundtrip_all_formats() {
        let g = petersen();
        let dir = std::env::temp_dir();
        for (format, name) in [
            (Format::EdgeList, "snc_test.txt"),
            (Format::Dimacs, "snc_test.col"),
            (Format::MatrixMarket, "snc_test.mtx"),
        ] {
            let path = dir.join(name);
            save_graph(&g, &path, format).unwrap();
            let loaded = load_graph(&path).unwrap();
            assert_eq!(loaded, g, "{format:?}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = load_graph(Path::new("/nonexistent/snc.txt"));
        assert!(matches!(r, Err(GraphError::Io(_))));
    }
}
