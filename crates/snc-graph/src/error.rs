//! Error types for graph construction and IO.

use std::fmt;

/// Errors from graph construction, generation, and file IO.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A generator was called with inconsistent parameters.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint that was violated.
        constraint: String,
    },
    /// A requested edge count cannot be realized on `n` vertices.
    InfeasibleEdgeCount {
        /// Requested number of edges.
        requested: usize,
        /// Maximum possible number of edges (`n·(n−1)/2`).
        max: usize,
    },
    /// A parse error in a graph file.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            GraphError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter `{name}`: {constraint}")
            }
            GraphError::InfeasibleEdgeCount { requested, max } => {
                write!(f, "cannot place {requested} edges (maximum is {max})")
            }
            GraphError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 5 };
        assert!(e.to_string().contains("vertex 9"));
        let e = GraphError::Parse { line: 3, message: "bad token".into() };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::InfeasibleEdgeCount { requested: 100, max: 10 };
        assert!(e.to_string().contains("100"));
    }
}
