//! Incremental cut-value maintenance.
//!
//! Evaluating a cut from scratch walks every edge (O(m)). Samplers whose
//! consecutive samples differ in few vertices — the LIF-Trevisan circuit's
//! slowly-evolving weight vector, local search, annealing — pay far less by
//! *maintaining* the value: flipping vertex `i` changes the cut by
//! `flip_delta(i) = (same-side neighbor weight) − (cross-side neighbor
//! weight)`, an O(deg i) update. [`CutTracker`] (unweighted, exact integer
//! arithmetic) and [`WeightedCutTracker`] (weighted, `f64`) package that
//! bookkeeping behind a "set the assignment to this target" API, diffing
//! against the previous assignment and applying one flip per changed
//! vertex.
//!
//! Because a cut and its complement have equal value, the trackers flip
//! whichever side of the diff is smaller; the tracked assignment therefore
//! equals the target *up to global complementation* (see
//! [`CutTracker::assignment`]).

use crate::csr::Graph;
use crate::cut::CutAssignment;
use crate::weighted::WeightedGraph;

/// The complement-aware diff walk shared by both trackers: counts the
/// vertices whose side differs from `target_side`, then flips whichever
/// of the differing/agreeing sets is smaller through `apply_flip`,
/// leaving `assignment` equal to the target or its complement (equal cut
/// value either way). `target_side` must not depend on `assignment` —
/// flipping vertex `j` never changes whether vertex `i ≠ j` differs, so
/// the walk is order-independent.
fn flip_smaller_side(
    assignment: &mut CutAssignment,
    target_side: impl Fn(usize) -> i8,
    mut apply_flip: impl FnMut(&mut CutAssignment, usize),
) {
    let n = assignment.len();
    let differing = (0..n)
        .filter(|&i| assignment.side(i) != target_side(i))
        .count();
    let flip_agreeing = differing * 2 > n;
    for i in 0..n {
        if (assignment.side(i) != target_side(i)) != flip_agreeing {
            apply_flip(assignment, i);
        }
    }
}

/// Maintains the cut value of an evolving assignment on an unweighted
/// graph with exact integer updates.
///
/// Every update path — single flips or whole-assignment diffs — produces
/// exactly the value [`CutAssignment::cut_value`] would compute from
/// scratch; the arithmetic is integer, so there is no drift.
///
/// # Examples
///
/// ```
/// use snc_graph::{CutAssignment, CutTracker, Graph};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let start = CutAssignment::from_sides(vec![1, 1, -1, -1]);
/// let mut tracker = CutTracker::new(&g, start);
/// assert_eq!(tracker.value(), 1); // only edge (1,2) crosses
///
/// // O(deg) incremental flips instead of O(m) re-evaluations.
/// tracker.flip(2); // sides [1, 1, 1, -1]: only (2,3) crosses
/// assert_eq!(tracker.value(), 1);
/// tracker.flip(1); // sides [1, -1, 1, -1]: every edge crosses
/// assert_eq!(tracker.value(), 3);
///
/// // Whole-assignment updates diff against the previous sample.
/// let next = CutAssignment::from_sides(vec![1, -1, 1, 1]);
/// assert_eq!(tracker.set_to(&next), 2);
/// assert_eq!(tracker.value(), next.cut_value(&g));
/// ```
#[derive(Clone, Debug)]
pub struct CutTracker<'g> {
    graph: &'g Graph,
    assignment: CutAssignment,
    value: u64,
}

impl<'g> CutTracker<'g> {
    /// Starts tracking `assignment`, computing its value once from scratch.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from `graph.n()`.
    pub fn new(graph: &'g Graph, assignment: CutAssignment) -> Self {
        let value = assignment.cut_value(graph);
        Self {
            graph,
            assignment,
            value,
        }
    }

    /// The current cut value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The tracked assignment.
    ///
    /// After [`CutTracker::set_to`] / [`CutTracker::set_from_spikes`] this
    /// equals the requested target *up to global complementation* (the
    /// tracker flips the smaller side of the diff; cut values are invariant
    /// under complementation).
    pub fn assignment(&self) -> &CutAssignment {
        &self.assignment
    }

    /// Flips vertex `i`, updating the value in O(deg i). Returns the new
    /// value.
    #[inline]
    pub fn flip(&mut self, i: usize) -> u64 {
        Self::apply_flip(self.graph, &mut self.assignment, &mut self.value, i);
        self.value
    }

    fn apply_flip(graph: &Graph, assignment: &mut CutAssignment, value: &mut u64, i: usize) {
        let delta = assignment.flip_delta(graph, i);
        assignment.flip(i);
        *value = (*value as i64 + delta) as u64;
    }

    /// Moves the tracked assignment to `target` (up to complementation)
    /// and returns `target`'s cut value.
    ///
    /// Cost is `Σ deg(i)` over the vertices whose side differs (or over
    /// their complement, whichever set is smaller) — at most one scratch
    /// evaluation, and far less when consecutive targets are similar.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != graph.n()`.
    pub fn set_to(&mut self, target: &CutAssignment) -> u64 {
        assert_eq!(target.len(), self.graph.n(), "assignment/graph size mismatch");
        self.advance(|i| target.side(i))
    }

    /// Like [`CutTracker::set_to`], but the target is given as a spike
    /// pattern (`true` ⇒ `+1` side), avoiding an intermediate
    /// [`CutAssignment`] allocation in sampling hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `spiked.len() != graph.n()`.
    pub fn set_from_spikes(&mut self, spiked: &[bool]) -> u64 {
        assert_eq!(spiked.len(), self.graph.n(), "assignment/graph size mismatch");
        self.advance(|i| if spiked[i] { 1 } else { -1 })
    }

    fn advance(&mut self, target_side: impl Fn(usize) -> i8) -> u64 {
        let CutTracker {
            graph,
            assignment,
            value,
        } = self;
        flip_smaller_side(assignment, target_side, |a, i| {
            Self::apply_flip(graph, a, value, i);
        });
        self.value
    }
}

/// Maintains the weighted cut value of an evolving assignment.
///
/// Updates accumulate in `f64`, so unlike [`CutTracker`] the maintained
/// value can drift from the scratch evaluation by floating-point rounding
/// of order `ε · Σ|w| · flips`. The tracker resynchronizes from scratch
/// every [`WeightedCutTracker::RESYNC_INTERVAL`] flips to keep the drift
/// bounded; call [`WeightedCutTracker::recompute`] for an exact value on
/// demand.
///
/// # Examples
///
/// ```
/// use snc_graph::{CutAssignment, WeightedCutTracker, WeightedGraph};
///
/// let g = WeightedGraph::from_weighted_edges(
///     3, &[(0, 1, 2.5), (1, 2, 4.0)]).unwrap();
/// let mut tracker = WeightedCutTracker::new(
///     &g, CutAssignment::from_sides(vec![1, -1, -1]));
/// assert_eq!(tracker.value(), 2.5);
/// tracker.flip(2); // vertex 2 joins +1... sides [1,-1,1]: both edges cross
/// assert_eq!(tracker.value(), 6.5);
/// ```
#[derive(Clone, Debug)]
pub struct WeightedCutTracker<'g> {
    graph: &'g WeightedGraph,
    assignment: CutAssignment,
    value: f64,
    flips_since_resync: u64,
}

impl<'g> WeightedCutTracker<'g> {
    /// Flips between scratch resynchronizations of the maintained value.
    pub const RESYNC_INTERVAL: u64 = 4096;

    /// Starts tracking `assignment`, computing its value once from scratch.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from `graph.n()`.
    pub fn new(graph: &'g WeightedGraph, assignment: CutAssignment) -> Self {
        let value = graph.cut_value(&assignment);
        Self {
            graph,
            assignment,
            value,
            flips_since_resync: 0,
        }
    }

    /// The current (maintained) weighted cut value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The tracked assignment (up to global complementation after
    /// [`WeightedCutTracker::set_to`]).
    pub fn assignment(&self) -> &CutAssignment {
        &self.assignment
    }

    /// Recomputes the value from scratch (exact; resets drift).
    pub fn recompute(&mut self) -> f64 {
        self.value = self.graph.cut_value(&self.assignment);
        self.flips_since_resync = 0;
        self.value
    }

    /// Flips vertex `i`, updating the value in O(deg i). Returns the new
    /// value.
    #[inline]
    pub fn flip(&mut self, i: usize) -> f64 {
        Self::apply_flip(
            self.graph,
            &mut self.assignment,
            &mut self.value,
            &mut self.flips_since_resync,
            i,
        );
        self.value
    }

    fn apply_flip(
        graph: &WeightedGraph,
        assignment: &mut CutAssignment,
        value: &mut f64,
        flips_since_resync: &mut u64,
        i: usize,
    ) {
        let delta = graph.flip_delta(assignment, i);
        assignment.flip(i);
        *value += delta;
        *flips_since_resync += 1;
        if *flips_since_resync >= Self::RESYNC_INTERVAL {
            *value = graph.cut_value(assignment);
            *flips_since_resync = 0;
        }
    }

    /// Moves the tracked assignment to `target` (up to complementation)
    /// and returns its weighted cut value.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != graph.n()`.
    pub fn set_to(&mut self, target: &CutAssignment) -> f64 {
        assert_eq!(target.len(), self.graph.n(), "assignment/graph size mismatch");
        let WeightedCutTracker {
            graph,
            assignment,
            value,
            flips_since_resync,
        } = self;
        flip_smaller_side(assignment, |i| target.side(i), |a, i| {
            Self::apply_flip(graph, a, value, flips_since_resync, i);
        });
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured::{complete, cycle};
    use snc_devices::{Rng64, Xoshiro256pp};

    #[test]
    fn single_flips_match_scratch() {
        let g = complete(7);
        let mut rng = Xoshiro256pp::new(3);
        let mut tracker = CutTracker::new(&g, CutAssignment::random(7, &mut rng));
        for k in 0..200 {
            let i = rng.next_index(7);
            let v = tracker.flip(i);
            assert_eq!(v, tracker.assignment().cut_value(&g), "flip {k}");
        }
    }

    #[test]
    fn set_to_matches_scratch_and_uses_complement() {
        let g = cycle(10);
        let mut rng = Xoshiro256pp::new(9);
        let mut tracker = CutTracker::new(&g, CutAssignment::random(10, &mut rng));
        for _ in 0..100 {
            let target = CutAssignment::random(10, &mut rng);
            let v = tracker.set_to(&target);
            assert_eq!(v, target.cut_value(&g));
            // Tracked assignment equals target or its complement.
            let t = tracker.assignment();
            let eq = (0..10).all(|i| t.side(i) == target.side(i));
            let comp = (0..10).all(|i| t.side(i) == -target.side(i));
            assert!(eq || comp);
        }
        // Complement path: moving to the exact complement flips nothing
        // (zero work) and keeps the value.
        let before = tracker.value();
        let complement = tracker.assignment().complemented();
        assert_eq!(tracker.set_to(&complement), before);
    }

    #[test]
    fn set_from_spikes_matches_set_to() {
        let g = complete(6);
        let mut rng = Xoshiro256pp::new(17);
        let mut a = CutTracker::new(&g, CutAssignment::all_ones(6));
        let mut b = CutTracker::new(&g, CutAssignment::all_ones(6));
        for _ in 0..50 {
            let spikes: Vec<bool> = (0..6).map(|_| rng.next_bool(0.5)).collect();
            let target = CutAssignment::from_spikes(&spikes);
            assert_eq!(a.set_from_spikes(&spikes), b.set_to(&target));
        }
    }

    #[test]
    fn weighted_tracker_matches_scratch() {
        let g = WeightedGraph::from_weighted_edges(
            5,
            &[
                (0, 1, 1.5),
                (1, 2, -2.0),
                (2, 3, 0.25),
                (3, 4, 10.0),
                (0, 4, 3.0),
                (1, 3, 0.5),
            ],
        )
        .unwrap();
        let mut rng = Xoshiro256pp::new(5);
        let mut tracker = WeightedCutTracker::new(&g, CutAssignment::random(5, &mut rng));
        for _ in 0..300 {
            let i = rng.next_index(5);
            let v = tracker.flip(i);
            let scratch = g.cut_value(tracker.assignment());
            assert!((v - scratch).abs() < 1e-9, "{v} vs {scratch}");
        }
        let exact = tracker.recompute();
        assert_eq!(exact, g.cut_value(tracker.assignment()));
    }

    #[test]
    fn weighted_set_to_matches_scratch() {
        let g = WeightedGraph::from_weighted_edges(
            8,
            &(0..8u32)
                .flat_map(|u| ((u + 1)..8).map(move |v| (u, v, ((u * 7 + v) % 5) as f64 - 1.0)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let mut rng = Xoshiro256pp::new(23);
        let mut tracker = WeightedCutTracker::new(&g, CutAssignment::random(8, &mut rng));
        for _ in 0..100 {
            let target = CutAssignment::random(8, &mut rng);
            let v = tracker.set_to(&target);
            assert!((v - g.cut_value(&target)).abs() < 1e-9);
        }
    }
}
