//! Graph statistics used to validate workloads and stand-ins.

use crate::csr::Graph;

/// Summary of a degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2m/n`).
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

/// Computes degree statistics (zeros for the empty graph).
pub fn degree_stats(g: &Graph) -> DegreeStats {
    if g.n() == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, median: 0 };
    }
    let mut degs = g.degrees();
    degs.sort_unstable();
    DegreeStats {
        min: degs[0],
        max: *degs.last().unwrap(),
        mean: 2.0 * g.m() as f64 / g.n() as f64,
        median: degs[degs.len() / 2],
    }
}

/// Edge density `m / (n(n−1)/2)` (0 for graphs with fewer than 2 vertices).
pub fn density(g: &Graph) -> f64 {
    let n = g.n();
    if n < 2 {
        return 0.0;
    }
    g.m() as f64 / (n * (n - 1) / 2) as f64
}

/// Global clustering coefficient: `3·triangles / open wedges`.
///
/// Exact triangle counting via neighbor-list intersection; `O(Σ d²)`.
pub fn global_clustering(g: &Graph) -> f64 {
    let mut triangles = 0u64; // each counted 3 times below, once per wedge apex
    let mut wedges = 0u64;
    for v in 0..g.n() {
        let d = g.degree(v);
        wedges += (d * d.saturating_sub(1) / 2) as u64;
        let nb = g.neighbors(v);
        for (ai, &a) in nb.iter().enumerate() {
            for &b in &nb[ai + 1..] {
                if g.has_edge(a as usize, b as usize) {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

/// Connected components as a label vector (component ids are 0-based, in
/// order of discovery by BFS from the lowest-numbered unvisited vertex).
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.n();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = Vec::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &w in g.neighbors(v) {
                let w = w as usize;
                if label[w] == usize::MAX {
                    label[w] = next;
                    queue.push(w);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    connected_components(g).iter().copied().max().map_or(0, |m| m + 1)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    component_count(g) <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured::{complete, cycle, path, star};

    #[test]
    fn degree_stats_of_star() {
        let s = degree_stats(&star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.median, 1);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn density_values() {
        assert!((density(&complete(5)) - 1.0).abs() < 1e-12);
        assert_eq!(density(&Graph::empty(1)), 0.0);
        assert!((density(&cycle(6)) - 6.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_extremes() {
        assert!((global_clustering(&complete(5)) - 1.0).abs() < 1e-12);
        assert_eq!(global_clustering(&star(10)), 0.0);
        assert_eq!(global_clustering(&Graph::empty(3)), 0.0);
    }

    #[test]
    fn components() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert_eq!(component_count(&g), 3);
        assert!(!is_connected(&g));
        assert!(is_connected(&path(5)));
        assert!(is_connected(&Graph::empty(0)));
    }
}
