//! Canonical graph fingerprints for cache keys.
//!
//! A [`GraphFingerprint`] is a 128-bit hash of a graph's *canonical*
//! edge list — the sorted, deduplicated `(u, v)` pairs with `u < v` that
//! [`Graph`] stores internally — plus the vertex count. Because the hash
//! is computed over the canonical form, it is independent of the order
//! (and orientation, and duplication) of the edges the graph was built
//! from: any two inputs that construct equal graphs fingerprint
//! identically.
//!
//! Fingerprints exist to key caches (the `SdpCache` in `snc-maxcut` and
//! the response cache in `snc-server`). They are **not** a substitute
//! for equality: 128 bits make accidental collisions vanishingly
//! unlikely, but every cache in the workspace still stores the full key
//! and confirms a fingerprint match with a full comparison before
//! serving a cached value, so a collision can cost a cache miss — never
//! a wrong answer.
//!
//! Weighted graphs hash the weight's IEEE-754 bit pattern per edge under
//! a distinct domain tag, so a weighted graph never fingerprints equal
//! to its unweighted skeleton (and `-0.0` ≠ `+0.0`, `x` ≠ `y` whenever
//! their bits differ).

use crate::csr::Graph;
use crate::weighted::WeightedGraph;

/// Domain tag mixed into unweighted fingerprints.
const TAG_UNWEIGHTED: u64 = 0x534e_435f_4752_4150; // "SNC_GRAP"
/// Domain tag mixed into weighted fingerprints.
const TAG_WEIGHTED: u64 = 0x534e_435f_5747_5250; // "SNC_WGRP"

/// A 128-bit order-independent hash of a canonical graph.
///
/// Two equal graphs always produce equal fingerprints; unequal graphs
/// produce equal fingerprints only with cryptographically-irrelevant but
/// cache-relevant probability (~2⁻¹²⁸ per pair), which is why cache
/// consumers pair the fingerprint with a full key comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphFingerprint {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl GraphFingerprint {
    /// The fingerprint as one `u128`.
    pub fn as_u128(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }

    /// A well-mixed 64-bit digest (for shard/bucket selection).
    pub fn fold(&self) -> u64 {
        mix(self.hi ^ self.lo.rotate_left(32))
    }
}

impl std::fmt::Display for GraphFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// SplitMix64's finalizer: a bijective 64-bit mix with full avalanche.
///
/// Public so downstream cache layers can derive digests (e.g. shard
/// routing keys) with the same mixer instead of re-implementing the
/// constants.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Two independent sequential-mix lanes over a word stream.
struct Lanes {
    a: u64,
    b: u64,
}

impl Lanes {
    fn new(tag: u64) -> Self {
        // Distinct odd lane seeds; the tag separates hash domains.
        Self {
            a: mix(tag ^ 0x9e37_79b9_7f4a_7c15),
            b: mix(tag ^ 0xc2b2_ae3d_27d4_eb4f),
        }
    }

    #[inline]
    fn absorb(&mut self, word: u64) {
        // Sequential (position-sensitive) mixing: the canonical edge
        // order is part of the hashed message, so `absorb` need not be
        // commutative.
        self.a = mix(self.a ^ word);
        self.b = mix(self.b.rotate_left(1) ^ word.wrapping_mul(0xff51_afd7_ed55_8ccd));
    }

    fn finish(self, words: u64) -> GraphFingerprint {
        GraphFingerprint {
            hi: mix(self.a ^ words),
            lo: mix(self.b ^ words.rotate_left(32)),
        }
    }
}

/// Fingerprints an unweighted graph over its canonical sorted edge list.
pub fn fingerprint_graph(graph: &Graph) -> GraphFingerprint {
    let mut lanes = Lanes::new(TAG_UNWEIGHTED);
    lanes.absorb(graph.n() as u64);
    let mut words = 1u64;
    for (u, v) in graph.edges() {
        lanes.absorb((u64::from(u) << 32) | u64::from(v));
        words += 1;
    }
    lanes.finish(words)
}

/// Fingerprints a weighted graph; each canonical edge contributes its
/// endpoints and its weight's IEEE-754 bit pattern.
pub fn fingerprint_weighted(graph: &WeightedGraph) -> GraphFingerprint {
    let mut lanes = Lanes::new(TAG_WEIGHTED);
    lanes.absorb(graph.n() as u64);
    let mut words = 1u64;
    for (u, v, w) in graph.edges() {
        lanes.absorb((u64::from(u) << 32) | u64::from(v));
        lanes.absorb(w.to_bits());
        words += 2;
    }
    lanes.finish(words)
}

impl Graph {
    /// The canonical 128-bit fingerprint of this graph (see
    /// [`fingerprint_graph`]).
    pub fn fingerprint(&self) -> GraphFingerprint {
        fingerprint_graph(self)
    }
}

impl WeightedGraph {
    /// The canonical 128-bit fingerprint of this weighted graph (see
    /// [`fingerprint_weighted`]).
    pub fn fingerprint(&self) -> GraphFingerprint {
        fingerprint_weighted(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32)]) -> Graph {
        Graph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn input_order_orientation_and_duplicates_are_canonicalized_away() {
        let a = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = graph(4, &[(3, 2), (2, 1), (1, 0), (0, 1), (1, 0)]);
        assert_eq!(a, b, "CSR construction canonicalizes");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_graphs_fingerprint_differently() {
        let base = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let edge_removed = graph(4, &[(0, 1), (1, 2)]);
        let edge_swapped = graph(4, &[(0, 1), (1, 2), (1, 3)]);
        let extra_vertex = graph(5, &[(0, 1), (1, 2), (2, 3)]);
        let empty = Graph::empty(4);
        let fps = [
            base.fingerprint(),
            edge_removed.fingerprint(),
            edge_swapped.fingerprint(),
            extra_vertex.fingerprint(),
            empty.fingerprint(),
            Graph::empty(0).fingerprint(),
        ];
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "pair ({i}, {j}) collided");
            }
        }
    }

    #[test]
    fn fingerprint_is_deterministic_across_calls() {
        let g = crate::generators::erdos_renyi::gnp(50, 0.2, 7).unwrap();
        assert_eq!(g.fingerprint(), g.fingerprint());
        assert_eq!(g.fingerprint(), g.clone().fingerprint());
    }

    #[test]
    fn weighted_domain_is_separate_and_weight_bits_matter() {
        let skeleton = graph(3, &[(0, 1), (1, 2)]);
        let unit = WeightedGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let heavier = WeightedGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let negzero = WeightedGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, -0.0)]).unwrap();
        let poszero = WeightedGraph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 0.0)]).unwrap();
        assert_ne!(
            skeleton.fingerprint(),
            unit.fingerprint(),
            "weighted graphs live in their own hash domain"
        );
        assert_ne!(unit.fingerprint(), heavier.fingerprint());
        assert_ne!(
            negzero.fingerprint(),
            poszero.fingerprint(),
            "weights hash by bit pattern, so -0.0 and +0.0 differ"
        );
        assert_eq!(unit.fingerprint(), unit.fingerprint());
    }

    #[test]
    fn permuted_weighted_input_fingerprints_identically() {
        let a =
            WeightedGraph::from_weighted_edges(4, &[(0, 1, 0.5), (2, 3, 1.5), (1, 2, 2.5)])
                .unwrap();
        let b =
            WeightedGraph::from_weighted_edges(4, &[(2, 1, 2.5), (1, 0, 0.5), (3, 2, 1.5)])
                .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fold_and_u128_views_agree_with_the_halves() {
        let fp = graph(3, &[(0, 1)]).fingerprint();
        assert_eq!(fp.as_u128() >> 64, u128::from(fp.hi));
        assert_eq!(fp.as_u128() as u64, fp.lo);
        assert_eq!(fp.fold(), fp.fold());
        assert_eq!(format!("{fp}").len(), 32);
    }
}
