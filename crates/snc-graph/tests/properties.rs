//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use snc_graph::generators::{self, adjust_to_edge_count};
use snc_graph::io::{dimacs, edgelist, matrix_market};
use snc_graph::{stats, CutAssignment, CutTracker, Graph, WeightedCutTracker, WeightedGraph};
use snc_linalg::LinOp;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (3usize..20, proptest::collection::vec((0u32..20, 0u32..20), 0..60)).prop_map(|(n, raw)| {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        Graph::from_edges(n, &edges).expect("in-range")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DIMACS and MatrixMarket round-trips preserve graphs exactly.
    #[test]
    fn structured_formats_roundtrip(g in arbitrary_graph()) {
        prop_assert_eq!(&dimacs::parse(&dimacs::to_string(&g)).unwrap(), &g);
        prop_assert_eq!(&matrix_market::parse(&matrix_market::to_string(&g)).unwrap(), &g);
    }

    /// Edge-list round-trip is exact: the snc header pins the vertex count
    /// and 0-based indexing.
    #[test]
    fn edgelist_roundtrip_edges(g in arbitrary_graph()) {
        let parsed = edgelist::parse(&edgelist::to_string(&g)).unwrap();
        prop_assert_eq!(&parsed, &g);
    }

    /// adjust_to_edge_count hits any feasible target exactly and keeps n.
    #[test]
    fn adjust_hits_target(g in arbitrary_graph(), target_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let max = g.n() * (g.n() - 1) / 2;
        let target = (target_frac * max as f64) as usize;
        let adjusted = adjust_to_edge_count(&g, target, seed).unwrap();
        prop_assert_eq!(adjusted.m(), target);
        prop_assert_eq!(adjusted.n(), g.n());
    }

    /// The normalized adjacency operator has spectral radius ≤ 1:
    /// ‖N x‖ ≤ ‖x‖·(1 + ε) via a power-iteration probe.
    #[test]
    fn normalized_adjacency_contracts(g in arbitrary_graph(), seed in any::<u64>()) {
        use snc_devices::{Rng64, Xoshiro256pp};
        let op = snc_graph::NormalizedAdjacency::new(&g);
        let mut rng = Xoshiro256pp::new(seed);
        let x: Vec<f64> = (0..g.n()).map(|_| rng.next_f64() - 0.5).collect();
        let norm_x = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut y = vec![0.0; g.n()];
        op.apply(&x, &mut y);
        let norm_y = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(norm_y <= norm_x * (1.0 + 1e-9));
    }

    /// Components partition the vertex set; edges never cross components.
    #[test]
    fn components_are_consistent(g in arbitrary_graph()) {
        let labels = stats::connected_components(&g);
        prop_assert_eq!(labels.len(), g.n());
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        let count = stats::component_count(&g);
        prop_assert!(count >= 1);
        prop_assert!(count <= g.n());
    }

    /// Alternating cuts on even cycles achieve m; the all-ones cut is 0.
    #[test]
    fn cycle_cut_extremes(half in 2usize..12) {
        let n = 2 * half;
        let g = generators::cycle(n);
        let alternating: Vec<i8> = (0..n).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        prop_assert_eq!(CutAssignment::from_sides(alternating).cut_value(&g), n as u64);
        prop_assert_eq!(CutAssignment::all_ones(n).cut_value(&g), 0);
    }

    /// The incremental cut tracker agrees with from-scratch `cut_value`
    /// over random flip sequences on Erdős–Rényi graphs: exact integer
    /// equality after every single flip and every whole-assignment diff.
    #[test]
    fn tracker_matches_scratch_on_er(
        n in 4usize..24,
        p in 0.1f64..0.9,
        seed in any::<u64>(),
        flips in proptest::collection::vec((0usize..24, any::<bool>()), 1..80),
    ) {
        use snc_devices::Xoshiro256pp;
        let g = generators::erdos_renyi::gnp(n, p, seed).expect("valid G(n,p)");
        let mut rng = Xoshiro256pp::new(seed ^ 0xC0FFEE);
        let mut tracker = CutTracker::new(&g, CutAssignment::random(n, &mut rng));
        prop_assert_eq!(tracker.value(), tracker.assignment().cut_value(&g));
        for &(raw, whole) in &flips {
            if whole {
                // Whole-assignment update, as in the sampling loop.
                let target = CutAssignment::random(n, &mut rng);
                prop_assert_eq!(tracker.set_to(&target), target.cut_value(&g));
            } else {
                let v = tracker.flip(raw % n);
                prop_assert_eq!(v, tracker.assignment().cut_value(&g));
            }
        }
    }

    /// The weighted tracker agrees with from-scratch evaluation (up to
    /// floating-point roundoff) over random flip sequences on random
    /// weighted graphs, including negative weights.
    #[test]
    fn weighted_tracker_matches_scratch(
        n in 4usize..16,
        raw_edges in proptest::collection::vec((0u32..16, 0u32..16, -3.0f64..3.0), 1..60),
        flips in proptest::collection::vec(0usize..16, 1..60),
        seed in any::<u64>(),
    ) {
        use snc_devices::Xoshiro256pp;
        let edges: Vec<(u32, u32, f64)> = raw_edges
            .into_iter()
            .map(|(u, v, w)| (u % n as u32, v % n as u32, w))
            .collect();
        let g = WeightedGraph::from_weighted_edges(n, &edges).expect("in-range");
        let scale: f64 = g.edges().map(|(_, _, w)| w.abs()).sum::<f64>() + 1.0;
        let mut rng = Xoshiro256pp::new(seed);
        let mut tracker = WeightedCutTracker::new(&g, CutAssignment::random(n, &mut rng));
        for &raw in &flips {
            let v = tracker.flip(raw % n);
            let scratch = g.cut_value(tracker.assignment());
            prop_assert!(
                (v - scratch).abs() <= 1e-12 * scale,
                "maintained {v} vs scratch {scratch}"
            );
        }
        // Whole-assignment updates also track the target's value.
        let target = CutAssignment::random(n, &mut rng);
        let v = tracker.set_to(&target);
        prop_assert!((v - g.cut_value(&target)).abs() <= 1e-12 * scale);
    }

    /// Generator size contracts: WS and BA edge-count formulas hold.
    #[test]
    fn generator_size_contracts(n in 10usize..40, seed in any::<u64>()) {
        let k = 4;
        let ws = generators::watts_strogatz(n, k, 0.3, seed).unwrap();
        prop_assert_eq!(ws.m(), n * k / 2);
        let ba = generators::preferential_attachment(n, 2, seed).unwrap();
        prop_assert_eq!(ba.m(), 3 + (n - 3) * 2);
    }
}
