//! The consistent-hash ring: maps a 64-bit routing key (a canonical
//! request's [`snc_server::ResponseKey::payload_fold`]) to a backend.
//!
//! Classic Karger-style consistent hashing with virtual nodes. Each
//! backend `b` with weight `w` owns `vnodes · w` points on a `u64`
//! circle; a key routes to the backend owning the first point at or
//! after the key's own position (wrapping). Two properties carry the
//! scale-out design:
//!
//! * **Stability** — points are derived only from `(backend index,
//!   vnode index)`, never from addresses or membership, so the mapping
//!   is identical across router restarts and independent of which
//!   backends happen to be alive. A backend's `SdpCache`/`ResponseCache`
//!   therefore sees the same stable slice of the fingerprint keyspace
//!   for as long as the topology is configured.
//! * **Consistency** — removing (or marking down) one backend moves
//!   *only* the keys that backend owned: every other key's first live
//!   point is unchanged. The router exploits this for failover — a
//!   key's candidate sequence is "walk the ring, take each distinct
//!   backend in first-encounter order" — and the proptest suite pins
//!   the ≈1/N remap bound.
//!
//! Liveness is intentionally *not* stored in the ring: callers pass a
//! predicate so routing reflects the health table's view at that
//! instant without rebuilding anything.

use snc_graph::fingerprint::mix;

/// Default virtual nodes per unit of backend weight. 64 points per
/// backend keeps the worst-case load imbalance within ~2× at small N
/// (the proptests pin a 3× bound at 32 vnodes) while the ring stays a
/// few KiB.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring over backends `0..n` with per-backend integer
/// weights.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, backend)` sorted by point (ties broken by backend, which
    /// keeps construction deterministic even under point collisions).
    points: Vec<(u64, u32)>,
    backends: usize,
}

/// The point for virtual node `v` of backend `b`: a double `mix` of the
/// two indices in disjoint bit ranges. Depends on indices only — see
/// the module docs on stability.
fn vnode_point(backend: usize, vnode: usize) -> u64 {
    mix(mix((backend as u64 + 1) << 32) ^ (vnode as u64 + 1))
}

impl HashRing {
    /// Builds a ring over `weights.len()` backends; backend `b` gets
    /// `vnodes · weights[b]` points. A zero weight gives a backend no
    /// points (it can never be routed to — useful for drain-style
    /// removal that keeps every other backend's slice identical).
    ///
    /// # Panics
    ///
    /// Panics if no backend has positive weight or `vnodes` is 0 —
    /// a ring that cannot route anything is a configuration error.
    pub fn new(weights: &[u32], vnodes: usize) -> Self {
        assert!(vnodes > 0, "vnodes must be positive");
        assert!(
            weights.iter().any(|&w| w > 0),
            "at least one backend needs positive weight"
        );
        let mut points = Vec::new();
        for (backend, &weight) in weights.iter().enumerate() {
            for vnode in 0..vnodes * weight as usize {
                points.push((vnode_point(backend, vnode), backend as u32));
            }
        }
        points.sort_unstable();
        Self {
            points,
            backends: weights.len(),
        }
    }

    /// Number of configured backends (including zero-weight ones).
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Total points on the ring.
    pub fn points(&self) -> usize {
        self.points.len()
    }

    /// The distinct backends that can serve `key`, in failover order:
    /// the ring is walked clockwise from the key's position and each
    /// backend is yielded the first time one of its points is passed.
    /// The first element is the key's home backend; the rest are the
    /// consistent-hashing failover sequence (what the keys of a dead
    /// backend remap onto).
    pub fn candidates(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.backends);
        let mut seen = vec![false; self.backends];
        let start = self
            .points
            .partition_point(|&(point, _)| point < mix(key));
        for i in 0..self.points.len() {
            let (_, backend) = self.points[(start + i) % self.points.len()];
            if !seen[backend as usize] {
                seen[backend as usize] = true;
                order.push(backend as usize);
            }
        }
        order
    }

    /// The first backend in `key`'s candidate order satisfying `alive`
    /// (`None` when every live backend is excluded).
    pub fn route(&self, key: u64, alive: impl Fn(usize) -> bool) -> Option<usize> {
        let mut seen = vec![false; self.backends];
        let start = self
            .points
            .partition_point(|&(point, _)| point < mix(key));
        for i in 0..self.points.len() {
            let (_, backend) = self.points[(start + i) % self.points.len()];
            let backend = backend as usize;
            if !seen[backend] {
                if alive(backend) {
                    return Some(backend);
                }
                seen[backend] = true;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_deterministic_and_in_range() {
        let ring = HashRing::new(&[1, 1, 1], 32);
        assert_eq!(ring.backends(), 3);
        assert_eq!(ring.points(), 96);
        for key in 0..512u64 {
            let a = ring.route(key, |_| true).unwrap();
            let b = ring.route(key, |_| true).unwrap();
            assert_eq!(a, b);
            assert!(a < 3);
            assert_eq!(ring.candidates(key)[0], a);
        }
    }

    #[test]
    fn candidates_cover_all_backends_once_each() {
        let ring = HashRing::new(&[1, 2, 1, 1], 16);
        for key in 0..64u64 {
            let mut order = ring.candidates(key);
            assert_eq!(order.len(), 4);
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn dead_backends_are_skipped_consistently() {
        let ring = HashRing::new(&[1, 1, 1], 32);
        for key in 0..512u64 {
            let home = ring.route(key, |_| true).unwrap();
            let rerouted = ring.route(key, |b| b != home).unwrap();
            assert_ne!(rerouted, home);
            // Keys not on the dead backend must not move at all.
            let dead = (home + 1) % 3;
            assert_eq!(ring.route(key, |b| b != dead), Some(home));
            // The reroute target is the next candidate in failover
            // order.
            assert_eq!(ring.candidates(key)[1], rerouted);
        }
    }

    #[test]
    fn all_dead_is_none() {
        let ring = HashRing::new(&[1, 1], 8);
        assert_eq!(ring.route(7, |_| false), None);
    }

    #[test]
    fn zero_weight_backends_get_no_keys() {
        let ring = HashRing::new(&[1, 0, 1], 32);
        for key in 0..512u64 {
            assert_ne!(ring.route(key, |_| true), Some(1));
        }
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_weights_panic() {
        let _ = HashRing::new(&[0, 0], 8);
    }
}
