//! `snc-router` — the fingerprint-routed scale-out tier.
//!
//! A thin, dependency-free HTTP/1.1 edge that shards `POST /solve` and
//! `POST /jobs` traffic across N backend `snc-server` processes by the
//! request's canonical fingerprint
//! ([`snc_server::ResponseKey::payload_fold`]). Because the shard key
//! depends only on the problem *instance* (never on seed, budget,
//! replicas, or labels), every request about one graph lands on one
//! backend, whose `SdpCache` and `ResponseCache` therefore see a
//! stable slice of the keyspace — the fleet's aggregate warm-cache hit
//! rate matches a single server's instead of being diluted N ways.
//!
//! The tier is sound because the backends are deterministic: identical
//! canonical requests produce byte-identical response bodies on any
//! replica, so consistent-hash failover (and operator re-sharding)
//! never changes an answer, only who computes it.
//!
//! Modules:
//!
//! * [`ring`] — Karger-style consistent-hash ring over backend
//!   *indices* (stable across restarts and ephemeral ports), with
//!   weighted virtual nodes and a deterministic failover order.
//! * [`health`] — per-backend up/down hysteresis fed by both probes
//!   and live proxy outcomes, plus the traffic counters `/healthz`
//!   reports.
//! * [`proxy`] — the edge process: acceptor, keyed forwarding with
//!   bounded retry-on-another-replica, job-id re-keying, aggregated
//!   health.
//! * [`pool`] — per-backend keep-alive connection pool (bounded idle
//!   stacks, stale-retry accounting, drain-on-demotion).
//! * [`metrics`] — the edge's `/metrics` registry (request latency
//!   histograms plus scrape-time mirrors of the health-table and pool
//!   tallies).
//! * [`config`] — the binary's flags.

pub mod config;
pub mod health;
pub mod metrics;
pub mod pool;
pub mod proxy;
pub mod ring;

pub use config::{parse_args, parse_backend, BackendSpec, RouterConfig};
pub use health::{probe_backend, BackendSnapshot, HealthTable};
pub use pool::{ConnectionPool, PoolSnapshot};
pub use proxy::{serve_router, RouterHandle};
pub use ring::{HashRing, DEFAULT_VNODES};
