//! The `snc-router` binary: parse flags, start the edge, serve forever.

use snc_router::{parse_args, serve_router};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(message) => {
            eprintln!("snc-router: {message}");
            std::process::exit(2);
        }
    };
    let backends = cfg.backends.len();
    let vnodes = cfg.vnodes;
    let retries = cfg.retries;
    match serve_router(cfg) {
        Ok(handle) => {
            // The "listening on" line is load-bearing: test harnesses
            // bind port 0 and parse the resolved address from stdout.
            println!(
                "snc-router listening on {} ({backends} backends, {vnodes} vnodes/weight, {retries} retries)",
                handle.addr()
            );
            handle.join();
        }
        Err(e) => {
            eprintln!("snc-router: cannot bind: {e}");
            std::process::exit(1);
        }
    }
}
