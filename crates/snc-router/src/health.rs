//! Backend health: hysteresis state machine, traffic counters, and the
//! background prober.
//!
//! Every backend has a two-state (up/down) machine driven by
//! *observations* — probe outcomes and proxy-attempt outcomes feed the
//! same counters, so a connect-refused during traffic advances the same
//! hysteresis a failed probe would. Transitions require consecutive
//! agreement: `down_after` consecutive failures to leave `up`,
//! `up_after` consecutive successes to leave `down`. That asymmetric
//! debounce is what keeps a flapping backend from oscillating the ring:
//! one lost probe neither removes a healthy backend nor re-admits a
//! half-restarted one.
//!
//! The [`probe_loop`] thread sweeps all backends every `interval`,
//! issuing a `GET /healthz` with a bounded connect + read timeout. Backends
//! start **up** (optimistic): a cold start must not 503 traffic that
//! arrives before the first sweep, and a genuinely dead backend is
//! demoted after `down_after` observations from either source.

use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Hysteresis counters for one backend (behind the table's mutex).
#[derive(Clone, Copy, Debug, Default)]
struct Machine {
    consecutive_ok: u32,
    consecutive_fail: u32,
}

/// Monotonic per-backend counters (lock-free; read by `/healthz`).
#[derive(Debug, Default)]
struct Counters {
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
    routed: AtomicU64,
    errors: AtomicU64,
}

/// A point-in-time snapshot of one backend's health and traffic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendSnapshot {
    /// Whether the ring currently routes to this backend.
    pub up: bool,
    /// Successful probes since startup.
    pub probes_ok: u64,
    /// Failed probes since startup.
    pub probes_failed: u64,
    /// Requests answered by this backend through the proxy.
    pub routed: u64,
    /// Proxy attempts against this backend that failed (connect/read
    /// errors or retryable 5xx).
    pub errors: u64,
}

/// Shared health state for all backends of one router.
#[derive(Debug)]
pub struct HealthTable {
    up: Vec<AtomicBool>,
    machines: Vec<Mutex<Machine>>,
    counters: Vec<Counters>,
    down_after: u32,
    up_after: u32,
    /// Total proxied requests answered (any backend).
    pub routed: AtomicU64,
    /// Total retry attempts (second and later attempts for a request).
    pub retried: AtomicU64,
    /// Requests the router itself had to fail (no backend could answer).
    pub failed: AtomicU64,
}

impl HealthTable {
    /// A table for `n` backends, all initially up.
    ///
    /// # Panics
    ///
    /// Panics when a hysteresis threshold is 0 (a transition that needs
    /// zero observations would fire spuriously).
    pub fn new(n: usize, down_after: u32, up_after: u32) -> Self {
        assert!(down_after > 0 && up_after > 0, "hysteresis thresholds must be ≥ 1");
        Self {
            up: (0..n).map(|_| AtomicBool::new(true)).collect(),
            machines: (0..n).map(|_| Mutex::new(Machine::default())).collect(),
            counters: (0..n).map(|_| Counters::default()).collect(),
            down_after,
            up_after,
            routed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// Number of backends tracked.
    pub fn len(&self) -> usize {
        self.up.len()
    }

    /// Whether the table tracks no backends.
    pub fn is_empty(&self) -> bool {
        self.up.is_empty()
    }

    /// Whether backend `i` is currently routed to.
    pub fn is_up(&self, i: usize) -> bool {
        self.up[i].load(Ordering::Relaxed)
    }

    /// Count of currently-up backends.
    pub fn up_count(&self) -> usize {
        self.up.iter().filter(|u| u.load(Ordering::Relaxed)).count()
    }

    /// Records a successful observation (probe 200 or proxied response)
    /// for backend `i`; re-admits it after `up_after` consecutive
    /// successes. Returns `true` when this observation is the one that
    /// flipped the backend from down to up.
    pub fn observe_success(&self, i: usize, probe: bool) -> bool {
        if probe {
            self.counters[i].probes_ok.fetch_add(1, Ordering::Relaxed);
        }
        let mut m = self.machines[i].lock();
        m.consecutive_fail = 0;
        m.consecutive_ok = m.consecutive_ok.saturating_add(1);
        if !self.up[i].load(Ordering::Relaxed) && m.consecutive_ok >= self.up_after {
            self.up[i].store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Records a failed observation (probe failure or connect/read/5xx
    /// proxy failure) for backend `i`; demotes it after `down_after`
    /// consecutive failures. Returns `true` when this observation is
    /// the one that flipped the backend from up to down — the caller's
    /// cue to drain any resources (pooled connections) tied to it.
    pub fn observe_failure(&self, i: usize, probe: bool) -> bool {
        if probe {
            self.counters[i].probes_failed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters[i].errors.fetch_add(1, Ordering::Relaxed);
        }
        let mut m = self.machines[i].lock();
        m.consecutive_ok = 0;
        m.consecutive_fail = m.consecutive_fail.saturating_add(1);
        if self.up[i].load(Ordering::Relaxed) && m.consecutive_fail >= self.down_after {
            self.up[i].store(false, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Credits backend `i` with one successfully proxied request.
    pub fn count_routed(&self, i: usize) {
        self.counters[i].routed.fetch_add(1, Ordering::Relaxed);
        self.routed.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of backend `i` for `/healthz`.
    pub fn snapshot(&self, i: usize) -> BackendSnapshot {
        BackendSnapshot {
            up: self.is_up(i),
            probes_ok: self.counters[i].probes_ok.load(Ordering::Relaxed),
            probes_failed: self.counters[i].probes_failed.load(Ordering::Relaxed),
            routed: self.counters[i].routed.load(Ordering::Relaxed),
            errors: self.counters[i].errors.load(Ordering::Relaxed),
        }
    }
}

/// One `GET /healthz` probe: TCP connect with timeout, minimal request,
/// success ⇔ an `HTTP/1.1 200` status line within the read timeout.
pub fn probe_backend(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(timeout)).is_err() || stream.set_nodelay(true).is_err() {
        return false;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    if writer
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: snc-router\r\nConnection: close\r\n\r\n")
        .is_err()
    {
        return false;
    }
    let mut line = String::new();
    let mut reader = BufReader::new(stream);
    reader.read_line(&mut line).is_ok() && line.starts_with("HTTP/1.1 200")
}

/// The background probe loop: sweeps every backend each `interval`
/// until `shutdown` flips, feeding outcomes into the health table.
/// Sleeps in short slices so shutdown is prompt even with long
/// intervals. `on_demote(i)` fires on the sweep that marks backend `i`
/// down — the router uses it to drain the victim's pooled connections.
pub fn probe_loop(
    backends: Vec<SocketAddr>,
    table: Arc<HealthTable>,
    interval: Duration,
    timeout: Duration,
    shutdown: Arc<AtomicBool>,
    on_demote: impl Fn(usize),
) {
    const SLICE: Duration = Duration::from_millis(20);
    while !shutdown.load(Ordering::SeqCst) {
        for (i, &addr) in backends.iter().enumerate() {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            if probe_backend(addr, timeout) {
                table.observe_success(i, true);
            } else if table.observe_failure(i, true) {
                on_demote(i);
            }
        }
        let mut slept = Duration::ZERO;
        while slept < interval && !shutdown.load(Ordering::SeqCst) {
            let nap = SLICE.min(interval - slept);
            std::thread::sleep(nap);
            slept += nap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hysteresis_requires_consecutive_agreement() {
        let t = HealthTable::new(1, 3, 2);
        assert!(t.is_up(0));
        // Two failures, then a success: the streak resets, still up.
        t.observe_failure(0, true);
        t.observe_failure(0, true);
        assert!(t.is_up(0));
        t.observe_success(0, true);
        t.observe_failure(0, true);
        t.observe_failure(0, true);
        assert!(t.is_up(0), "streak was broken, must still be up");
        t.observe_failure(0, true);
        assert!(!t.is_up(0), "three consecutive failures demote");
        // One success is not enough to re-admit; two are.
        t.observe_success(0, true);
        assert!(!t.is_up(0));
        t.observe_success(0, true);
        assert!(t.is_up(0));
        let snap = t.snapshot(0);
        assert_eq!(snap.probes_failed, 5);
        assert_eq!(snap.probes_ok, 3);
    }

    #[test]
    fn proxy_and_probe_observations_share_the_machine() {
        let t = HealthTable::new(2, 2, 1);
        // One probe failure + one proxy failure = demoted.
        t.observe_failure(1, true);
        t.observe_failure(1, false);
        assert!(!t.is_up(1));
        assert!(t.is_up(0), "neighbor untouched");
        let snap = t.snapshot(1);
        assert_eq!((snap.probes_failed, snap.errors), (1, 1));
        assert_eq!(t.up_count(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let t = HealthTable::new(2, 1, 1);
        t.count_routed(0);
        t.count_routed(0);
        t.count_routed(1);
        assert_eq!(t.snapshot(0).routed, 2);
        assert_eq!(t.snapshot(1).routed, 1);
        assert_eq!(t.routed.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn observations_report_the_transition_edge_exactly_once() {
        let t = HealthTable::new(1, 2, 2);
        assert!(!t.observe_failure(0, false), "first failure is not an edge");
        assert!(t.observe_failure(0, false), "second consecutive failure demotes");
        assert!(!t.observe_failure(0, false), "already down: no edge");
        assert!(!t.observe_success(0, false), "first success is not an edge");
        assert!(t.observe_success(0, false), "second consecutive success re-admits");
        assert!(!t.observe_success(0, false), "already up: no edge");
    }

    #[test]
    fn probe_against_a_dead_port_fails_fast() {
        let addr = snc_server::process::reserve_port();
        let started = std::time::Instant::now();
        assert!(!probe_backend(addr, Duration::from_millis(500)));
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn zero_thresholds_are_rejected() {
        let _ = HealthTable::new(1, 0, 1);
    }
}
