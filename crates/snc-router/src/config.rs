//! Router configuration and flag parsing.

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

/// One configured backend: where it listens and how much of the ring it
/// owns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendSpec {
    /// Resolved socket address of the backend's `snc-server`.
    pub addr: SocketAddr,
    /// Ring weight (virtual nodes = `vnodes · weight`). Weight 0 keeps
    /// the backend addressable for async-job polling but routes no new
    /// keys to it (a drain slot).
    pub weight: u32,
}

/// Router configuration (all knobs the binary exposes).
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Edge bind address (port 0 picks an ephemeral port).
    pub addr: String,
    /// The backend fleet, in ring-index order. Order is identity: the
    /// ring hashes backend *indices*, so a stable ordering across
    /// restarts preserves every backend's keyspace slice.
    pub backends: Vec<BackendSpec>,
    /// Virtual nodes per unit of backend weight.
    pub vnodes: usize,
    /// Delay between health-probe sweeps.
    pub probe_interval: Duration,
    /// Connect + read timeout for one probe.
    pub probe_timeout: Duration,
    /// Consecutive failed observations before a backend is marked down.
    pub down_after: u32,
    /// Consecutive successful observations before a down backend is
    /// re-admitted.
    pub up_after: u32,
    /// Additional proxy attempts (on distinct backends) after the first
    /// fails; 0 disables failover retries.
    pub retries: usize,
    /// Connect timeout for proxied requests.
    pub connect_timeout: Duration,
    /// Read timeout while awaiting a backend's response (solves can be
    /// slow; this guards against a wedged backend, not a busy one).
    pub backend_read_timeout: Duration,
    /// Largest accepted request body in bytes (mirrors the backend
    /// limit so the edge rejects what the backend would).
    pub max_body_bytes: usize,
    /// Default replica width assumed when parsing requests that omit
    /// `"replicas"` (affects edge validation only; the backend applies
    /// its own default when solving).
    pub replicas: usize,
    /// Append one structured line per routed request (request id,
    /// route, family, outcome, status, elapsed µs) to this path.
    /// `None` disables access logging.
    pub access_log: Option<String>,
    /// Rotate the access log (rename to `<path>.1`, reopen) whenever it
    /// would grow past this many bytes. 0 disables rotation.
    pub access_log_max_bytes: u64,
    /// Keep-alive connections parked per backend. 0 disables pooling
    /// entirely — every forward opens a fresh connection and asks the
    /// backend to close it, reproducing the pre-pool wire behavior
    /// bit-for-bit.
    pub pool_idle_per_backend: usize,
    /// How long a parked connection stays eligible for reuse; older
    /// idles are retired at checkout. Irrelevant when pooling is off.
    pub pool_idle_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7979".to_string(),
            backends: Vec::new(),
            vnodes: crate::ring::DEFAULT_VNODES,
            probe_interval: Duration::from_millis(1000),
            probe_timeout: Duration::from_millis(1000),
            down_after: 3,
            up_after: 2,
            retries: 2,
            connect_timeout: Duration::from_millis(1000),
            backend_read_timeout: Duration::from_secs(120),
            max_body_bytes: 1 << 20,
            replicas: 1,
            access_log: None,
            access_log_max_bytes: 0,
            pool_idle_per_backend: 8,
            pool_idle_timeout: Duration::from_secs(10),
        }
    }
}

impl RouterConfig {
    /// Per-backend ring weights, in index order.
    pub fn weights(&self) -> Vec<u32> {
        self.backends.iter().map(|b| b.weight).collect()
    }
}

/// Parses one `--backend` value: `HOST:PORT` or `HOST:PORT@WEIGHT`.
///
/// # Errors
///
/// Returns a message suitable for direct printing when the address does
/// not resolve or the weight is not an integer.
pub fn parse_backend(raw: &str) -> Result<BackendSpec, String> {
    let (addr_part, weight) = match raw.rsplit_once('@') {
        Some((addr, w)) => {
            let weight: u32 = w
                .parse()
                .map_err(|_| format!("backend weight in `{raw}` must be an unsigned integer"))?;
            (addr, weight)
        }
        None => (raw, 1),
    };
    let addr = addr_part
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve backend `{addr_part}`: {e}"))?
        .next()
        .ok_or_else(|| format!("backend `{addr_part}` resolved to no address"))?;
    Ok(BackendSpec { addr, weight })
}

/// Parses the binary's command line into a [`RouterConfig`].
///
/// # Errors
///
/// Returns a usage message on unknown flags, missing values,
/// unresolvable backends, zero-able knobs set to zero, or an empty
/// backend list.
pub fn parse_args(args: &[String]) -> Result<RouterConfig, String> {
    fn positive<T: std::str::FromStr + PartialOrd + From<u8>>(
        value: Option<&String>,
        flag: &str,
    ) -> Result<T, String> {
        let parsed: T = value
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("{flag} must be a positive integer"))?;
        if parsed < T::from(1u8) {
            return Err(format!("{flag} must be ≥ 1"));
        }
        Ok(parsed)
    }
    fn non_negative(value: Option<&String>, flag: &str) -> Result<usize, String> {
        value
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("{flag} must be a non-negative integer"))
    }

    let mut cfg = RouterConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = it.next().ok_or("--addr needs a HOST:PORT value")?.clone(),
            "--backend" => cfg
                .backends
                .push(parse_backend(it.next().ok_or("--backend needs a HOST:PORT[@WEIGHT] value")?)?),
            "--vnodes" => cfg.vnodes = positive(it.next(), "--vnodes")?,
            "--probe-interval-ms" => {
                cfg.probe_interval = Duration::from_millis(positive(it.next(), "--probe-interval-ms")?);
            }
            "--probe-timeout-ms" => {
                cfg.probe_timeout = Duration::from_millis(positive(it.next(), "--probe-timeout-ms")?);
            }
            "--down-after" => cfg.down_after = positive(it.next(), "--down-after")?,
            "--up-after" => cfg.up_after = positive(it.next(), "--up-after")?,
            "--retries" => cfg.retries = non_negative(it.next(), "--retries")?,
            "--connect-timeout-ms" => {
                cfg.connect_timeout = Duration::from_millis(positive(it.next(), "--connect-timeout-ms")?);
            }
            "--backend-read-timeout-ms" => {
                cfg.backend_read_timeout =
                    Duration::from_millis(positive(it.next(), "--backend-read-timeout-ms")?);
            }
            "--replicas" => cfg.replicas = positive(it.next(), "--replicas")?,
            "--access-log" => {
                cfg.access_log = Some(it.next().ok_or("--access-log needs a PATH value")?.clone());
            }
            "--access-log-max-bytes" => {
                cfg.access_log_max_bytes =
                    non_negative(it.next(), "--access-log-max-bytes")? as u64;
            }
            "--pool-idle-per-backend" => {
                cfg.pool_idle_per_backend = non_negative(it.next(), "--pool-idle-per-backend")?;
            }
            "--pool-idle-timeout-ms" => {
                cfg.pool_idle_timeout =
                    Duration::from_millis(positive(it.next(), "--pool-idle-timeout-ms")?);
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}`\nusage: snc-router --backend HOST:PORT[@WEIGHT] \
                     [--backend …] [--addr HOST:PORT] [--vnodes N] [--probe-interval-ms N] \
                     [--probe-timeout-ms N] [--down-after N] [--up-after N] [--retries N] \
                     [--connect-timeout-ms N] [--backend-read-timeout-ms N] [--replicas N] \
                     [--access-log PATH] [--access-log-max-bytes N] \
                     [--pool-idle-per-backend N] [--pool-idle-timeout-ms N]"
                ));
            }
        }
    }
    if cfg.backends.is_empty() {
        return Err("at least one --backend HOST:PORT is required".to_string());
    }
    if cfg.backends.iter().all(|b| b.weight == 0) {
        return Err("at least one backend needs a positive weight".to_string());
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn backend_forms_parse() {
        let plain = parse_backend("127.0.0.1:7878").unwrap();
        assert_eq!(plain.weight, 1);
        assert_eq!(plain.addr.port(), 7878);
        let weighted = parse_backend("127.0.0.1:7878@3").unwrap();
        assert_eq!(weighted.weight, 3);
        assert!(parse_backend("127.0.0.1:7878@x").is_err());
        assert!(parse_backend("not-an-addr").is_err());
    }

    #[test]
    fn defaults_and_overrides() {
        let cfg = parse_args(&strs(&["--backend", "127.0.0.1:7878"])).unwrap();
        assert_eq!(cfg.backends.len(), 1);
        assert_eq!(cfg.vnodes, crate::ring::DEFAULT_VNODES);
        assert_eq!(cfg.down_after, 3);
        assert_eq!(cfg.up_after, 2);
        assert_eq!(cfg.retries, 2);
        let cfg = parse_args(&strs(&[
            "--addr", "127.0.0.1:0",
            "--backend", "127.0.0.1:1@2",
            "--backend", "127.0.0.1:2",
            "--vnodes", "16",
            "--probe-interval-ms", "50",
            "--probe-timeout-ms", "100",
            "--down-after", "1",
            "--up-after", "4",
            "--retries", "0",
            "--connect-timeout-ms", "200",
            "--backend-read-timeout-ms", "5000",
            "--replicas", "2",
        ]))
        .unwrap();
        assert_eq!(cfg.weights(), vec![2, 1]);
        assert_eq!(cfg.vnodes, 16);
        assert_eq!(cfg.probe_interval, Duration::from_millis(50));
        assert_eq!(cfg.probe_timeout, Duration::from_millis(100));
        assert_eq!((cfg.down_after, cfg.up_after), (1, 4));
        assert_eq!(cfg.retries, 0);
        assert_eq!(cfg.connect_timeout, Duration::from_millis(200));
        assert_eq!(cfg.backend_read_timeout, Duration::from_millis(5000));
        assert_eq!(cfg.replicas, 2);
    }

    #[test]
    fn rejects_bad_configurations() {
        assert!(parse_args(&[]).is_err(), "no backends");
        assert!(parse_args(&strs(&["--backend", "127.0.0.1:1@0"])).is_err(), "all weight-0");
        assert!(parse_args(&strs(&["--bogus"])).is_err());
        assert!(parse_args(&strs(&["--backend"])).is_err());
        for flag in ["--vnodes", "--down-after", "--up-after", "--probe-interval-ms"] {
            let err =
                parse_args(&strs(&["--backend", "127.0.0.1:1", flag, "0"])).unwrap_err();
            assert!(err.contains("≥ 1"), "{flag}: {err}");
        }
        // --retries 0 is legal (failover disabled).
        assert_eq!(
            parse_args(&strs(&["--backend", "127.0.0.1:1", "--retries", "0"]))
                .unwrap()
                .retries,
            0
        );
    }

    #[test]
    fn access_log_flag_parses() {
        let base = strs(&["--backend", "127.0.0.1:1"]);
        assert_eq!(parse_args(&base).unwrap().access_log, None);
        let cfg = parse_args(&strs(&[
            "--backend", "127.0.0.1:1", "--access-log", "/tmp/router.log",
        ]))
        .unwrap();
        assert_eq!(cfg.access_log.as_deref(), Some("/tmp/router.log"));
        assert!(parse_args(&strs(&["--backend", "127.0.0.1:1", "--access-log"])).is_err());
    }

    #[test]
    fn pool_and_rotation_flags_parse() {
        let cfg = parse_args(&strs(&["--backend", "127.0.0.1:1"])).unwrap();
        assert_eq!(cfg.pool_idle_per_backend, 8, "pooling defaults on");
        assert_eq!(cfg.pool_idle_timeout, Duration::from_secs(10));
        assert_eq!(cfg.access_log_max_bytes, 0, "rotation defaults off");
        let cfg = parse_args(&strs(&[
            "--backend", "127.0.0.1:1",
            "--pool-idle-per-backend", "0",
            "--pool-idle-timeout-ms", "2500",
            "--access-log-max-bytes", "65536",
        ]))
        .unwrap();
        assert_eq!(cfg.pool_idle_per_backend, 0, "0 = pooling disabled");
        assert_eq!(cfg.pool_idle_timeout, Duration::from_millis(2500));
        assert_eq!(cfg.access_log_max_bytes, 65536);
        assert!(
            parse_args(&strs(&["--backend", "127.0.0.1:1", "--pool-idle-timeout-ms", "0"]))
                .is_err(),
            "a zero idle timeout would retire every connection at checkout"
        );
        assert!(parse_args(&strs(&["--backend", "127.0.0.1:1", "--pool-idle-per-backend"])).is_err());
    }
}
