//! The edge process: acceptor, per-connection loop, fingerprint
//! routing, bounded-retry forwarding, and aggregated health reporting.
//!
//! ## Data flow
//!
//! ```text
//! client ──▶ TcpListener ──accept──▶ connection thread (keep-alive loop)
//!                 │                        │ parse (snc_server::http + wire)
//!                 │                        ▼
//!                 │            ResponseKey::payload_fold (the shard key)
//!                 │                        ▼
//!                 │            HashRing::candidates(key) ∩ live backends
//!                 │                        │ attempt 1 … 1+retries
//!                 │                        ▼
//!                 │            ConnectionPool::checkout (keep-alive reuse;
//!                 │                 │       fresh connect on empty stack)
//!                 │                 │ stale reused conn ──▶ one fresh retry,
//!                 │                 │                       same backend
//!                 │                 │ connect/read error ──▶ next candidate
//!                 │                 │ 5xx               ──▶ next candidate
//!                 │                 ▼
//!                 └──◀── relay backend body byte-for-byte ◀──┘
//! ```
//!
//! Backend responses are framed **strictly**: the status line must be
//! `HTTP/1.1 <100–599>`, duplicate or conflicting `Content-Length`
//! headers are `InvalidData`, and a missing `Content-Length` is only
//! legal when the backend explicitly said `Connection: close` (the one
//! case where read-to-EOF framing is unambiguous). Anything looser
//! would corrupt the stream the moment a connection carries a second
//! request.
//!
//! The router never re-renders a solve response: the backend's body is
//! relayed untouched, so the byte-identical wire contract survives the
//! extra hop. Failover is sound for the same reason the caches are —
//! any backend produces the identical body for the identical canonical
//! request — so a retry that lands on a different replica is
//! indistinguishable from first-try success.
//!
//! Async jobs need one extra trick: job ids are per-backend, so the
//! router re-keys them as `id · B + backend_index` (`B` = configured
//! fleet size) before answering, and decodes that on `GET /jobs/{id}`
//! to poll the owning backend. A job's result dies with its backend —
//! polling a down backend answers 503, never hangs.

use crate::config::RouterConfig;
use crate::health::{probe_loop, HealthTable};
use crate::metrics::RouterMetrics;
use crate::pool::{BackendConn, ConnectionPool};
use crate::ring::HashRing;
use snc_experiments::json::{self, Json};
use snc_metrics::{AccessLog, RequestIds};
use snc_server::http::{self, HttpError, Request};
use snc_server::wire::{self, Workload};
use snc_server::ServerConfig;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often blocked reads and the acceptor wake to check the shutdown
/// flag (mirrors `snc-server`).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Shared state every router connection thread sees.
struct Shared {
    cfg: RouterConfig,
    defaults: snc_server::wire::RequestDefaults,
    ring: HashRing,
    health: Arc<HealthTable>,
    pool: Arc<ConnectionPool>,
    shutdown: Arc<AtomicBool>,
    metrics: RouterMetrics,
    request_ids: RequestIds,
    access_log: Option<AccessLog>,
}

/// A running router. Dropping the handle shuts it down gracefully
/// (acceptor and prober stopped, in-flight proxied requests finished).
pub struct RouterHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for RouterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterHandle").field("addr", &self.addr).finish()
    }
}

/// Binds the edge listener, starts the acceptor and the health prober.
///
/// # Errors
///
/// Propagates socket bind failures.
pub fn serve_router(cfg: RouterConfig) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let access_log = match &cfg.access_log {
        Some(path) => Some(AccessLog::open_rotating(path, cfg.access_log_max_bytes)?),
        None => None,
    };
    let shutdown = Arc::new(AtomicBool::new(false));
    let health = Arc::new(HealthTable::new(
        cfg.backends.len(),
        cfg.down_after,
        cfg.up_after,
    ));
    let pool = Arc::new(ConnectionPool::new(
        cfg.backends.len(),
        cfg.pool_idle_per_backend,
        cfg.pool_idle_timeout,
        cfg.connect_timeout,
        cfg.backend_read_timeout,
    ));
    let prober = {
        let backends: Vec<SocketAddr> = cfg.backends.iter().map(|b| b.addr).collect();
        let table = Arc::clone(&health);
        let interval = cfg.probe_interval;
        let timeout = cfg.probe_timeout;
        let flag = Arc::clone(&shutdown);
        // Demotions (from probes) drain the victim's pooled sockets, so
        // a down backend can never answer a first stale request after
        // re-admission.
        let drain_pool = Arc::clone(&pool);
        std::thread::spawn(move || {
            probe_loop(backends, table, interval, timeout, flag, move |backend| {
                drain_pool.drain(backend);
            });
        })
    };
    let shared = Arc::new(Shared {
        // Parse with the same limits a default backend enforces, so the
        // edge rejects exactly what the fleet would.
        defaults: ServerConfig {
            replicas: cfg.replicas,
            ..ServerConfig::default()
        }
        .request_defaults(),
        ring: HashRing::new(&cfg.weights(), cfg.vnodes),
        health,
        pool,
        shutdown: Arc::clone(&shutdown),
        metrics: RouterMetrics::new(),
        request_ids: RequestIds::from_env(),
        access_log,
        cfg,
    });
    let acceptor = std::thread::spawn(move || accept_loop(&listener, &shared));
    Ok(RouterHandle {
        addr,
        shutdown,
        acceptor: Some(acceptor),
        prober: Some(prober),
    })
}

impl RouterHandle {
    /// The actual bound edge address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown and blocks until the acceptor,
    /// connection threads, and prober have exited.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the router exits (the binary's serve-forever mode).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accepts client connections until shutdown, then joins every
/// connection thread (mirrors the backend's acceptor).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                connections.retain(|handle| !handle.is_finished());
                let shared = Arc::clone(shared);
                connections.push(std::thread::spawn(move || serve_connection(stream, &shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
                connections.retain(|handle| !handle.is_finished());
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// The per-connection HTTP/1.1 keep-alive loop (same shape as the
/// backend's; the work inside `route` is proxying instead of solving).
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let should_abort = || shared.shutdown.load(Ordering::SeqCst);
    loop {
        match http::read_request(
            &mut reader,
            &mut writer,
            shared.cfg.max_body_bytes,
            &should_abort,
        ) {
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive && !should_abort();
                let started = Instant::now();
                // The edge is where ids are minted: honor a well-formed
                // client-supplied id, otherwise coin one. The same id
                // travels on every backend attempt (including retries),
                // which is what makes cross-tier correlation work.
                let request_id = match request.request_id.as_deref() {
                    Some(id) if snc_metrics::valid_request_id(id) => id.to_string(),
                    _ => shared.request_ids.mint(),
                };
                let (status, body, meta) = match route(&request, &request_id, shared) {
                    Ok(reply) => reply,
                    Err(e) => (
                        e.status,
                        wire::error_body(&e.message),
                        error_meta(&request.path),
                    ),
                };
                let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                shared
                    .metrics
                    .request_duration(meta.route, meta.family, meta.outcome)
                    .record(elapsed);
                if let Some(log) = &shared.access_log {
                    log.write(&format!(
                        "id={request_id} route={} family={} outcome={} status={status} us={elapsed}",
                        meta.route, meta.family, meta.outcome
                    ));
                }
                let extra = [
                    ("x-snc-elapsed-us", elapsed.to_string()),
                    ("x-snc-request-id", request_id),
                ];
                let bytes = http::render_response_typed(
                    status,
                    meta.content_type,
                    &extra,
                    body.as_bytes(),
                    keep_alive,
                );
                if writer
                    .write_all(&bytes)
                    .and_then(|()| writer.flush())
                    .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) => {
                let body = wire::error_body(&e.message);
                let _ = http::write_response(&mut writer, e.status, &[], body.as_bytes(), false);
                return;
            }
        }
    }
}

/// Observability labels for one routed request, decided at route time
/// (mirrors the backend's `ResponseMeta`). `route`/`family`/`outcome`
/// feed the latency histogram and the access log; `content_type` only
/// varies for `/metrics`.
#[derive(Clone, Copy, Debug)]
struct RouteMeta {
    route: &'static str,
    family: &'static str,
    outcome: &'static str,
    content_type: &'static str,
}

impl RouteMeta {
    fn new(route: &'static str) -> RouteMeta {
        RouteMeta {
            route,
            family: "none",
            outcome: "none",
            content_type: "application/json",
        }
    }
}

/// The stable route label for a request path (bounded cardinality:
/// unknown paths collapse into `other`).
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/solve" => "solve",
        "/jobs" => "jobs",
        "/metrics" => "metrics",
        "/" => "index",
        p if p.starts_with("/jobs/") => "jobs_poll",
        _ => "other",
    }
}

/// Labels for a request that failed routing (4xx/5xx minted edge-side).
fn error_meta(path: &str) -> RouteMeta {
    RouteMeta {
        outcome: "error",
        ..RouteMeta::new(route_label(path))
    }
}

/// The circuit-family label for a parsed solve workload (mirrors the
/// backend's labelling so the two tiers' series join cleanly).
fn workload_family(workload: &Workload) -> &'static str {
    match workload {
        Workload::MaxCut(job) => job.spec.family.name(),
        Workload::WeightedMaxCut(job) => job.spec.family.name(),
        Workload::Max2Sat(_) => "max2sat",
        Workload::MaxDicut(_) => "maxdicut",
    }
}

/// Routes one parsed client request.
fn route(
    request: &Request,
    request_id: &str,
    shared: &Arc<Shared>,
) -> Result<(u16, String, RouteMeta), HttpError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Ok((200, healthz(shared), RouteMeta::new("healthz"))),
        ("GET", "/metrics") => Ok((
            200,
            metrics_body(shared),
            RouteMeta {
                content_type: "text/plain; version=0.0.4",
                ..RouteMeta::new("metrics")
            },
        )),
        ("POST", "/solve") => {
            proxy_keyed(&request.body, "/solve", request_id, shared).map(|(s, b, _, family)| {
                (
                    s,
                    b,
                    RouteMeta {
                        family,
                        outcome: "relayed",
                        ..RouteMeta::new("solve")
                    },
                )
            })
        }
        ("POST", "/jobs") => submit_job(&request.body, request_id, shared),
        ("GET", path) if path.starts_with("/jobs/") => {
            poll_job(path, request_id, shared).map(|(s, b)| {
                (
                    s,
                    b,
                    RouteMeta {
                        outcome: "relayed",
                        ..RouteMeta::new("jobs_poll")
                    },
                )
            })
        }
        ("GET", "/") => Ok((200, index_body(), RouteMeta::new("index"))),
        (_, "/healthz" | "/solve" | "/jobs" | "/" | "/metrics") => {
            Err(HttpError::new(405, "method not allowed"))
        }
        (_, path) if path.starts_with("/jobs/") => Err(HttpError::new(405, "method not allowed")),
        _ => Err(HttpError::new(404, "no such endpoint")),
    }
}

fn index_body() -> String {
    Json::Obj(vec![
        ("service".into(), Json::str("snc-router")),
        (
            "endpoints".into(),
            Json::Arr(
                [
                    "GET /healthz",
                    "GET /metrics",
                    "POST /solve",
                    "POST /jobs",
                    "GET /jobs/{id}",
                ]
                .into_iter()
                .map(Json::str)
                .collect(),
            ),
        ),
    ])
    .render()
}

/// The aggregated router health body: fleet status, per-backend state
/// and counters, and the global routed/retried/failed tallies.
fn healthz(shared: &Arc<Shared>) -> String {
    let backends: Vec<Json> = shared
        .cfg
        .backends
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let snap = shared.health.snapshot(i);
            Json::Obj(vec![
                ("addr".into(), Json::str(spec.addr.to_string())),
                ("weight".into(), Json::UInt(u64::from(spec.weight))),
                ("up".into(), Json::Bool(snap.up)),
                ("probes_ok".into(), Json::UInt(snap.probes_ok)),
                ("probes_failed".into(), Json::UInt(snap.probes_failed)),
                ("routed".into(), Json::UInt(snap.routed)),
                ("errors".into(), Json::UInt(snap.errors)),
                (
                    "pool_idle".into(),
                    Json::UInt(shared.pool.idle_count(i) as u64),
                ),
            ])
        })
        .collect();
    let pool = shared.pool.snapshot();
    let up = shared.health.up_count();
    let status = if up == shared.cfg.backends.len() {
        "ok"
    } else if up > 0 {
        "degraded"
    } else {
        "down"
    };
    Json::Obj(vec![
        ("status".into(), Json::str(status)),
        ("backends".into(), Json::Arr(backends)),
        ("backends_up".into(), Json::UInt(up as u64)),
        (
            "ring_points".into(),
            Json::UInt(shared.ring.points() as u64),
        ),
        (
            "routed".into(),
            Json::UInt(shared.health.routed.load(Ordering::Relaxed)),
        ),
        (
            "retried".into(),
            Json::UInt(shared.health.retried.load(Ordering::Relaxed)),
        ),
        (
            "failed".into(),
            Json::UInt(shared.health.failed.load(Ordering::Relaxed)),
        ),
        (
            "pool".into(),
            Json::Obj(vec![
                ("idle".into(), Json::UInt(pool.idle)),
                ("created".into(), Json::UInt(pool.created)),
                ("reused".into(), Json::UInt(pool.reused)),
                ("retired".into(), Json::UInt(pool.retired)),
                ("stale_retries".into(), Json::UInt(pool.stale_retries)),
            ]),
        ),
    ])
    .render()
}

/// Renders `GET /metrics`: mirrors the health table's tallies onto the
/// registry (read from the same sources `/healthz` reports, so the two
/// surfaces can never disagree), then renders the text exposition.
fn metrics_body(shared: &Arc<Shared>) -> String {
    let m = &shared.metrics;
    m.sync_totals(
        shared.health.routed.load(Ordering::Relaxed),
        shared.health.retried.load(Ordering::Relaxed),
        shared.health.failed.load(Ordering::Relaxed),
        shared.health.up_count() as u64,
    );
    for (i, spec) in shared.cfg.backends.iter().enumerate() {
        let snap = shared.health.snapshot(i);
        m.sync_backend(&spec.addr.to_string(), snap.up, snap.routed, snap.errors);
    }
    let pool = shared.pool.snapshot();
    m.sync_pool(pool.idle, pool.created, pool.reused, pool.retired, pool.stale_retries);
    m.registry.render()
}

/// Header bytes a backend response may spend before the parser calls it
/// hostile (`InvalidData`). Real backend heads are < 1 KiB.
const MAX_RESPONSE_HEAD_BYTES: usize = 16 * 1024;

fn invalid_data(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// One parsed backend response: status, body, and whether the stream is
/// positioned at a clean boundary (explicit length, no `Connection:
/// close`, nothing buffered past the body) and may be pooled.
#[derive(Debug)]
struct BackendResponse {
    status: u16,
    body: String,
    reusable: bool,
}

/// Reads one strictly-framed HTTP/1.1 response from a backend stream.
///
/// Framing rules (violations are `InvalidData` — never a guess):
///
/// * the status line must be `HTTP/1.1 ` + a 3-digit code in 100–599
///   (the malformed line is quoted in the error);
/// * header lines must contain `:`;
/// * `Content-Length` may appear at most once — duplicate headers are
///   rejected even when they agree, because a response carrying two
///   lengths is already evidence of desync or smuggling;
/// * a body without `Content-Length` is close-delimited **only** when
///   the backend explicitly sent `Connection: close`; otherwise there
///   is no sound way to find the next response's start, so the exchange
///   is rejected rather than read-to-end (PR 7 read to EOF here, which
///   was only ever safe because every connection was close-mode).
fn read_backend_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<BackendResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "backend closed before sending a status line",
        ));
    }
    let line = status_line.trim_end_matches(['\r', '\n']);
    let rest = line.strip_prefix("HTTP/1.1 ").ok_or_else(|| {
        invalid_data(format!("backend status line is not HTTP/1.1: {line:?}"))
    })?;
    let code = rest.as_bytes().get(..3).filter(|digits| {
        digits.iter().all(u8::is_ascii_digit) && rest.as_bytes().get(3).is_none_or(|&b| b == b' ')
    });
    let status: u16 = code
        .and_then(|digits| std::str::from_utf8(digits).ok())
        .and_then(|digits| digits.parse().ok())
        .ok_or_else(|| invalid_data(format!("malformed backend status line {line:?}")))?;
    if !(100..=599).contains(&status) {
        return Err(invalid_data(format!(
            "backend status code {status} out of range in {line:?}"
        )));
    }
    let mut content_length: Option<usize> = None;
    let mut connection_close = false;
    let mut head_bytes = status_line.len();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed mid-headers",
            ));
        }
        head_bytes += n;
        if head_bytes > MAX_RESPONSE_HEAD_BYTES {
            return Err(invalid_data("backend response head too large".to_string()));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(invalid_data(format!(
                "malformed backend header line {trimmed:?}"
            )));
        };
        let value = value.trim();
        if name.trim().eq_ignore_ascii_case("content-length") {
            let length: usize = value.parse().map_err(|_| {
                invalid_data(format!("bad backend content-length {value:?}"))
            })?;
            if let Some(previous) = content_length.replace(length) {
                return Err(invalid_data(format!(
                    "duplicate backend content-length headers ({previous} then {length})"
                )));
            }
        } else if name.trim().eq_ignore_ascii_case("connection")
            && value
                .split(',')
                .any(|token| token.trim().eq_ignore_ascii_case("close"))
        {
            connection_close = true;
        }
    }
    let body = match content_length {
        Some(length) => {
            let mut buf = vec![0u8; length];
            reader.read_exact(&mut buf)?;
            buf
        }
        None if connection_close => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
        None => {
            return Err(invalid_data(
                "backend response has no content-length and did not say connection: close"
                    .to_string(),
            ));
        }
    };
    let body = String::from_utf8(body).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "backend body is not UTF-8")
    })?;
    let reusable = content_length.is_some() && !connection_close && reader.buffer().is_empty();
    Ok(BackendResponse {
        status,
        body,
        reusable,
    })
}

/// Writes one proxied request and reads its strictly-framed response on
/// `conn`. `close` mode adds `Connection: close` (the PR 7 wire shape,
/// used when pooling is disabled); otherwise HTTP/1.1 keep-alive is
/// implied and the connection can go back to the pool.
fn exchange(
    conn: &mut BackendConn,
    method: &str,
    path: &str,
    body: &[u8],
    request_id: &str,
    close: bool,
) -> std::io::Result<BackendResponse> {
    let connection_header = if close { "Connection: close\r\n" } else { "" };
    conn.writer.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: snc-router\r\nx-snc-request-id: {request_id}\r\nContent-Length: {}\r\n{connection_header}\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    conn.writer.write_all(body)?;
    conn.writer.flush()?;
    read_backend_response(&mut conn.reader)
}

/// One forwarded HTTP round-trip to backend `backend`, through the
/// keep-alive pool. The full response is buffered before returning — so
/// a retry can never interleave with bytes already relayed to the
/// client — and the edge's request id rides along in
/// `x-snc-request-id` on every attempt.
///
/// Stale-connection rule: a transport error on a **reused** pooled
/// connection (the backend reaped or reset it while parked) is retried
/// exactly once on a **fresh** connection to the same backend, counted
/// in `stale_retries` — it reaches neither the health machine nor
/// failover. `InvalidData` (a malformed response) is *not* staleness
/// and propagates immediately; errors on a fresh connection are real
/// evidence and propagate too.
fn forward_once(
    pool: &ConnectionPool,
    backend: usize,
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    request_id: &str,
) -> std::io::Result<(u16, String)> {
    let close = !pool.enabled();
    let mut conn = pool.checkout(backend, addr)?;
    let first_was_reused = conn.reused;
    let response = match exchange(&mut conn, method, path, body, request_id, close) {
        Ok(response) => response,
        Err(e) if first_was_reused && e.kind() != std::io::ErrorKind::InvalidData => {
            drop(conn); // retire the stale socket before dialing anew
            pool.note_stale_retry();
            conn = pool.connect_fresh(addr)?;
            exchange(&mut conn, method, path, body, request_id, close)?
        }
        Err(e) => return Err(e),
    };
    if response.reusable && !close {
        pool.checkin(backend, conn);
    }
    Ok((response.status, response.body))
}

/// Parses a solve-bearing body, shards it by canonical fingerprint, and
/// forwards it with bounded failover. Returns `(status, body, backend)`
/// where `backend` is the index that produced the relayed response.
///
/// Failure taxonomy:
///
/// * transport errors (connect refused/timeout, read error) — the
///   backend may be dead: feed the health machine, try the next
///   candidate;
/// * `5xx` — the backend is alive but couldn't answer (queue full,
///   solver panic): try the next candidate *without* a health demotion
///   (the prober owns aliveness; one poisoned request must not take a
///   replica out of the ring). By determinism, a relayed retry is
///   byte-identical to what the first backend would eventually have
///   said, so failover never changes answers;
/// * `< 500` — relay.
fn proxy_keyed(
    body: &[u8],
    path: &str,
    request_id: &str,
    shared: &Arc<Shared>,
) -> Result<(u16, String, usize, &'static str), HttpError> {
    let workload =
        wire::parse_request(body, &shared.defaults).map_err(|e| HttpError::new(400, e.0))?;
    let family = workload_family(&workload);
    let key = wire::response_key(&workload).payload_fold();
    let candidates: Vec<usize> = shared
        .ring
        .candidates(key)
        .into_iter()
        .filter(|&b| shared.health.is_up(b))
        .collect();
    if candidates.is_empty() {
        shared.health.failed.fetch_add(1, Ordering::Relaxed);
        return Err(HttpError::new(503, "no live backends"));
    }
    let budget = candidates.len().min(shared.cfg.retries + 1);
    let mut last_5xx: Option<(u16, String, usize)> = None;
    let mut last_err: Option<std::io::Error> = None;
    for (attempt, &backend) in candidates.iter().take(budget).enumerate() {
        if attempt > 0 {
            shared.health.retried.fetch_add(1, Ordering::Relaxed);
        }
        let addr = shared.cfg.backends[backend].addr;
        match forward_once(&shared.pool, backend, addr, "POST", path, body, request_id) {
            Ok((status, reply)) if status < 500 => {
                shared.health.observe_success(backend, false);
                shared.health.count_routed(backend);
                return Ok((status, reply, backend, family));
            }
            Ok((status, reply)) => {
                shared.health.observe_success(backend, false);
                last_5xx = Some((status, reply, backend));
            }
            Err(e) => {
                // A demotion strands any sockets parked for the victim;
                // drain them so re-admission starts from fresh connects.
                if shared.health.observe_failure(backend, false) {
                    shared.pool.drain(backend);
                }
                last_err = Some(e);
            }
        }
    }
    // Out of budget: relay the last backend-authored 5xx if any (it is
    // a deterministic answer), otherwise the fleet was unreachable.
    if let Some((status, reply, backend)) = last_5xx {
        shared.health.count_routed(backend);
        return Ok((status, reply, backend, family));
    }
    shared.health.failed.fetch_add(1, Ordering::Relaxed);
    let detail = last_err.map_or_else(String::new, |e| format!(" (last error: {e})"));
    Err(HttpError::new(
        503,
        format!("all {budget} candidate backend(s) unreachable, retry later{detail}"),
    ))
}

/// Re-keys a backend-local job id into the router's id space.
fn encode_job_id(inner: u64, backend: usize, fleet: usize) -> Option<u64> {
    inner
        .checked_mul(fleet as u64)
        .and_then(|scaled| scaled.checked_add(backend as u64))
}

/// `POST /jobs`: forward by fingerprint, then re-key the returned job
/// id so `GET /jobs/{id}` can find the owning backend again.
fn submit_job(
    body: &[u8],
    request_id: &str,
    shared: &Arc<Shared>,
) -> Result<(u16, String, RouteMeta), HttpError> {
    let (status, reply, backend, family) = proxy_keyed(body, "/jobs", request_id, shared)?;
    let meta = RouteMeta {
        family,
        outcome: "relayed",
        ..RouteMeta::new("jobs")
    };
    if status != 202 {
        return Ok((status, reply, meta));
    }
    let doc = json::parse(&reply)
        .map_err(|_| HttpError::new(500, "backend job ack was not JSON"))?;
    let inner = doc
        .get("id")
        .and_then(json::Json::as_u64)
        .ok_or_else(|| HttpError::new(500, "backend job ack carried no id"))?;
    let routed_id = encode_job_id(inner, backend, shared.cfg.backends.len())
        .ok_or_else(|| HttpError::new(500, "job id overflow"))?;
    let Json::Obj(members) = doc else {
        return Err(HttpError::new(500, "backend job ack was not an object"));
    };
    let rewritten: Vec<(String, Json)> = members
        .into_iter()
        .map(|(k, v)| {
            if k == "id" {
                (k, Json::UInt(routed_id))
            } else {
                (k, v)
            }
        })
        .collect();
    Ok((202, Json::Obj(rewritten).render(), meta))
}

/// `GET /jobs/{id}`: decode the owning backend from the router-keyed
/// id, poll it directly (job affinity — no failover possible), and
/// re-key the id in the answer.
fn poll_job(
    path: &str,
    request_id: &str,
    shared: &Arc<Shared>,
) -> Result<(u16, String), HttpError> {
    let routed_id: u64 = path
        .strip_prefix("/jobs/")
        .and_then(|raw| raw.parse().ok())
        .ok_or_else(|| HttpError::new(400, "job id must be an integer"))?;
    let fleet = shared.cfg.backends.len() as u64;
    let backend = (routed_id % fleet) as usize;
    let inner = routed_id / fleet;
    if !shared.health.is_up(backend) {
        return Err(HttpError::new(
            503,
            format!("job {routed_id} lives on a backend that is down"),
        ));
    }
    let addr = shared.cfg.backends[backend].addr;
    let path = format!("/jobs/{inner}");
    match forward_once(&shared.pool, backend, addr, "GET", &path, b"", request_id) {
        Ok((200, reply)) => {
            let doc = json::parse(&reply)
                .map_err(|_| HttpError::new(500, "backend job record was not JSON"))?;
            let Json::Obj(members) = doc else {
                return Err(HttpError::new(500, "backend job record was not an object"));
            };
            let rewritten: Vec<(String, Json)> = members
                .into_iter()
                .map(|(k, v)| {
                    if k == "id" {
                        (k, Json::UInt(routed_id))
                    } else {
                        (k, v)
                    }
                })
                .collect();
            shared.health.observe_success(backend, false);
            Ok((200, Json::Obj(rewritten).render()))
        }
        Ok((404, _)) => Err(HttpError::new(
            404,
            format!("no job {routed_id} (expired or never existed)"),
        )),
        Ok((status, reply)) => Ok((status, reply)),
        Err(_) => {
            if shared.health.observe_failure(backend, false) {
                shared.pool.drain(backend);
            }
            Err(HttpError::new(
                503,
                format!("job {routed_id}'s backend did not answer"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serves `raw` bytes to one accepted connection, then closes —
    /// exactly what a hostile or buggy backend on the wire looks like.
    fn parse_raw(raw: &[u8]) -> std::io::Result<BackendResponse> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.write_all(&raw).unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut reader = BufReader::new(stream);
        let result = read_backend_response(&mut reader);
        server.join().unwrap();
        result
    }

    fn expect_invalid(raw: &[u8], needle: &str) {
        let e = parse_raw(raw).expect_err("parser accepted malformed response");
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "{e}");
        assert!(
            e.to_string().contains(needle),
            "error {e:?} does not mention {needle:?}"
        );
    }

    /// Reads one request head (through the blank line) off a fake
    /// backend's accepted socket. Proxied test requests carry empty
    /// bodies, so the head is the whole request.
    fn read_head(stream: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            if stream.read(&mut byte).unwrap() == 0 {
                break;
            }
            buf.push(byte[0]);
        }
        String::from_utf8(buf).unwrap()
    }

    fn test_pool(capacity: usize) -> ConnectionPool {
        ConnectionPool::new(
            1,
            capacity,
            Duration::from_secs(60),
            Duration::from_secs(2),
            Duration::from_secs(2),
        )
    }

    const KEEPALIVE_OK: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";

    #[test]
    fn duplicate_content_length_is_rejected_even_when_it_agrees() {
        expect_invalid(
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok",
            "duplicate backend content-length",
        );
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        expect_invalid(
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nok!",
            "(2 then 3)",
        );
    }

    #[test]
    fn missing_content_length_requires_explicit_connection_close() {
        // With `Connection: close` the body is close-delimited: legal.
        let ok = parse_raw(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nhello").unwrap();
        assert_eq!((ok.status, ok.body.as_str(), ok.reusable), (200, "hello", false));
        // Without it there is no sound framing — reject, never guess.
        expect_invalid(
            b"HTTP/1.1 200 OK\r\n\r\nhello",
            "no content-length",
        );
    }

    #[test]
    fn status_line_must_be_http11_with_a_code_in_range() {
        expect_invalid(b"HTTP/1.0 200 OK\r\nContent-Length: 0\r\n\r\n", "not HTTP/1.1");
        expect_invalid(
            b"HTTP/1.1 abc ok\r\nContent-Length: 0\r\n\r\n",
            "\"HTTP/1.1 abc ok\"",
        );
        expect_invalid(b"HTTP/1.1 99 low\r\nContent-Length: 0\r\n\r\n", "malformed");
        expect_invalid(b"HTTP/1.1 2000\r\nContent-Length: 0\r\n\r\n", "malformed");
        expect_invalid(
            b"HTTP/1.1 700 nope\r\nContent-Length: 0\r\n\r\n",
            "status code 700 out of range",
        );
        expect_invalid(b"garbage\r\nContent-Length: 0\r\n\r\n", "\"garbage\"");
        // Boundary codes parse; a bare code with no reason phrase too.
        let r = parse_raw(b"HTTP/1.1 599 oops\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(r.status, 599);
        let r = parse_raw(b"HTTP/1.1 100\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(r.status, 100);
    }

    #[test]
    fn header_line_without_a_colon_is_rejected() {
        expect_invalid(
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nbogus header line\r\n\r\nok",
            "\"bogus header line\"",
        );
    }

    #[test]
    fn reusable_only_with_explicit_length_and_no_close() {
        let r = parse_raw(KEEPALIVE_OK).unwrap();
        assert!(r.reusable, "length-framed keep-alive response is poolable");
        let r = parse_raw(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok")
            .unwrap();
        assert!(!r.reusable, "backend-requested close retires the socket");
    }

    #[test]
    fn stale_reused_connection_retries_once_on_a_fresh_one() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Connection 1: answer keep-alive, then close while parked —
            // the idle-reap shape.
            let (mut s, _) = listener.accept().unwrap();
            let head = read_head(&mut s);
            assert!(
                !head.to_ascii_lowercase().contains("connection:"),
                "pooled request must not ask for close: {head:?}"
            );
            s.write_all(KEEPALIVE_OK).unwrap();
            drop(s);
            // Connection 2: the fresh retry lands here.
            let (mut s, _) = listener.accept().unwrap();
            read_head(&mut s);
            s.write_all(KEEPALIVE_OK).unwrap();
        });
        let pool = test_pool(4);
        let (status, body) = forward_once(&pool, 0, addr, "GET", "/x", b"", "rid-1").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok"));
        // Give the backend's FIN time to land so the reuse is stale.
        std::thread::sleep(Duration::from_millis(50));
        let (status, body) = forward_once(&pool, 0, addr, "GET", "/x", b"", "rid-2").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok"), "retry is invisible");
        server.join().unwrap();
        let snap = pool.snapshot();
        assert_eq!(snap.stale_retries, 1, "exactly one stale retry");
        assert_eq!(snap.reused, 1, "the stale checkout still counts as a reuse");
        assert_eq!(snap.created, 2, "original + fresh retry connection");
    }

    #[test]
    fn invalid_data_on_a_reused_connection_does_not_retry() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_head(&mut s);
            s.write_all(KEEPALIVE_OK).unwrap();
            // Second request arrives on the same (reused) connection;
            // answer with a malformed head. No second accept: a retry
            // would hang the test instead of passing it.
            read_head(&mut s);
            s.write_all(b"HTTP/1.1 banana\r\nContent-Length: 0\r\n\r\n").unwrap();
        });
        let pool = test_pool(4);
        forward_once(&pool, 0, addr, "GET", "/x", b"", "rid-1").unwrap();
        let e = forward_once(&pool, 0, addr, "GET", "/x", b"", "rid-2")
            .expect_err("malformed response must propagate");
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        server.join().unwrap();
        assert_eq!(pool.snapshot().stale_retries, 0, "InvalidData is not staleness");
    }

    #[test]
    fn disabled_pool_sends_connection_close_and_never_parks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let head = read_head(&mut s);
                assert!(
                    head.contains("Connection: close\r\n"),
                    "disabled pool must keep the PR 7 wire shape: {head:?}"
                );
                // Close-delimited response: the PR 7 backend shape.
                s.write_all(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nok").unwrap();
            }
        });
        let pool = test_pool(0);
        for rid in ["rid-1", "rid-2"] {
            let (status, body) = forward_once(&pool, 0, addr, "GET", "/x", b"", rid).unwrap();
            assert_eq!((status, body.as_str()), (200, "ok"));
        }
        server.join().unwrap();
        let snap = pool.snapshot();
        assert_eq!(snap.idle, 0, "disabled pool never parks");
        assert_eq!(snap.reused, 0);
        assert_eq!((snap.created, snap.retired), (2, 2));
    }

    #[test]
    fn job_id_round_trips_through_the_router_keyspace() {
        for fleet in 1..5usize {
            for backend in 0..fleet {
                for inner in [0u64, 1, 7, 1_000_003] {
                    let routed = encode_job_id(inner, backend, fleet).unwrap();
                    assert_eq!((routed % fleet as u64) as usize, backend);
                    assert_eq!(routed / fleet as u64, inner);
                }
            }
        }
        assert_eq!(encode_job_id(u64::MAX, 1, 3), None, "overflow is caught");
    }
}
