//! The router's metric surface: one [`snc_metrics::Registry`] per edge
//! process, rendered by `GET /metrics`.
//!
//! Same split as the backend's `snc_server::metrics`: per-request
//! latency histograms are recorded live on the connection threads;
//! tallies that already live in the [`crate::health::HealthTable`]
//! (routed/retried/failed, per-backend traffic, up/down state) are
//! mirrored onto the registry at scrape time, keeping `/healthz` the
//! compatibility surface and the hot path free of double bookkeeping.
//!
//! Names follow the fleet convention `snc_<layer>_<name>_<unit>` with
//! layer `router`.

use snc_metrics::{Histogram, Registry};
use std::sync::Arc;

/// Per-process router metric state.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// The process-wide registry rendered by `GET /metrics`.
    pub registry: Registry,
}

impl RouterMetrics {
    /// Builds an empty registry (series appear on first use, so an idle
    /// router scrapes small).
    pub fn new() -> RouterMetrics {
        RouterMetrics {
            registry: Registry::new(),
        }
    }

    /// The edge-side request latency histogram for one `(route, family,
    /// outcome)` cell — end-to-end time including the backend hop.
    pub fn request_duration(
        &self,
        route: &'static str,
        family: &'static str,
        outcome: &'static str,
    ) -> Arc<Histogram> {
        self.registry.histogram(
            "snc_router_request_duration_us",
            "Edge request latency by route, circuit family, and proxy outcome",
            &[("route", route), ("family", family), ("outcome", outcome)],
        )
    }

    /// Mirrors the global proxy tallies onto the registry (scrape time).
    pub fn sync_totals(&self, routed: u64, retried: u64, failed: u64, backends_up: u64) {
        self.registry
            .counter(
                "snc_router_requests_routed_total",
                "Proxied requests answered by some backend",
                &[],
            )
            .set_total(routed);
        self.registry
            .counter(
                "snc_router_retries_total",
                "Second-and-later proxy attempts across all requests",
                &[],
            )
            .set_total(retried);
        self.registry
            .counter(
                "snc_router_requests_failed_total",
                "Requests the router itself had to fail (no backend answered)",
                &[],
            )
            .set_total(failed);
        self.registry
            .gauge(
                "snc_router_backends_up",
                "Backends the ring currently routes to",
                &[],
            )
            .set(i64::try_from(backends_up).unwrap_or(i64::MAX));
    }

    /// Mirrors the connection pool's accounting onto the registry
    /// (scrape time, same snapshot `/healthz` reports).
    pub fn sync_pool(&self, idle: u64, created: u64, reused: u64, retired: u64, stale_retries: u64) {
        self.registry
            .gauge(
                "snc_router_pool_idle",
                "Keep-alive backend connections currently parked in the pool",
                &[],
            )
            .set(i64::try_from(idle).unwrap_or(i64::MAX));
        self.registry
            .counter(
                "snc_router_pool_created_total",
                "Backend connections dialed (fresh connects)",
                &[],
            )
            .set_total(created);
        self.registry
            .counter(
                "snc_router_pool_reused_total",
                "Checkouts satisfied by a parked keep-alive connection",
                &[],
            )
            .set_total(reused);
        self.registry
            .counter(
                "snc_router_pool_retired_total",
                "Backend connections closed (expired, drained, or not poolable)",
                &[],
            )
            .set_total(retired);
        self.registry
            .counter(
                "snc_router_pool_stale_retries_total",
                "Transport errors on reused connections absorbed by a fresh-connection retry",
                &[],
            )
            .set_total(stale_retries);
    }

    /// Mirrors one backend's health-table counters onto the registry
    /// (scrape time), labelled by its ring-index-stable address.
    pub fn sync_backend(&self, addr: &str, up: bool, routed: u64, errors: u64) {
        // The label set is per-address, not &'static: the registry
        // copies label values, so a short-lived String is fine here.
        let labels = [("backend", addr)];
        self.registry
            .gauge(
                "snc_router_backend_up",
                "Whether the ring currently routes to this backend (1/0)",
                &labels,
            )
            .set(i64::from(up));
        self.registry
            .counter(
                "snc_router_backend_routed_total",
                "Requests answered by this backend through the proxy",
                &labels,
            )
            .set_total(routed);
        self.registry
            .counter(
                "snc_router_backend_errors_total",
                "Proxy attempts against this backend that failed",
                &labels,
            )
            .set_total(errors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_mirror_is_idempotent_per_scrape() {
        let m = RouterMetrics::new();
        m.sync_totals(10, 2, 1, 3);
        m.sync_totals(15, 2, 1, 2);
        let text = m.registry.render();
        assert!(text.contains("snc_router_requests_routed_total 15"));
        assert!(text.contains("snc_router_backends_up 2"));
    }

    #[test]
    fn backend_series_are_labelled_by_address() {
        let m = RouterMetrics::new();
        m.sync_backend("127.0.0.1:7878", true, 4, 0);
        m.sync_backend("127.0.0.1:7879", false, 1, 3);
        let text = m.registry.render();
        assert!(text.contains("snc_router_backend_up{backend=\"127.0.0.1:7878\"} 1"));
        assert!(text.contains("snc_router_backend_up{backend=\"127.0.0.1:7879\"} 0"));
        assert!(text.contains("snc_router_backend_errors_total{backend=\"127.0.0.1:7879\"} 3"));
    }

    #[test]
    fn pool_series_mirror_the_snapshot() {
        let m = RouterMetrics::new();
        m.sync_pool(2, 7, 5, 5, 1);
        let text = m.registry.render();
        assert!(text.contains("snc_router_pool_idle 2"));
        assert!(text.contains("snc_router_pool_created_total 7"));
        assert!(text.contains("snc_router_pool_reused_total 5"));
        assert!(text.contains("snc_router_pool_retired_total 5"));
        assert!(text.contains("snc_router_pool_stale_retries_total 1"));
    }

    #[test]
    fn request_histograms_record_per_cell() {
        let m = RouterMetrics::new();
        m.request_duration("solve", "lif-gw", "relayed").record(900);
        let text = m.registry.render();
        assert!(text.contains(
            "snc_router_request_duration_us_count{route=\"solve\",family=\"lif-gw\",outcome=\"relayed\"} 1"
        ));
    }
}
