//! Keep-alive connection pooling to the backends.
//!
//! PR 7's proxy opened a fresh TCP connection per forwarded request
//! (`Connection: close`), which costs ~3.5 ms/request on loopback —
//! over an order of magnitude more than a backend's warm cache hit.
//! [`ConnectionPool`] keeps a bounded stack of idle keep-alive
//! connections **per backend index**: the forward path checks a
//! connection out, runs one strictly-framed request/response exchange
//! on it, and checks it back in if (and only if) the response left the
//! stream positioned at a clean request boundary.
//!
//! ## The stale-connection rule
//!
//! A pooled connection can die while parked — the backend's idle reaper
//! (`--idle-timeout-ms`) closes it, the backend restarts, or the kernel
//! drops it. The checkout cannot see that without racing, so the
//! forward path applies the classic rule: a transport error on a
//! **reused** connection is retried exactly once on a **fresh**
//! connection to the *same* backend, before anything is reported to the
//! health machine or failover. A backend recycling idle sockets
//! therefore never looks down, and `stale_retries` counts how often the
//! rule fired. Errors on a *fresh* connection propagate immediately —
//! those are real evidence.
//!
//! ## Accounting
//!
//! Every connection the pool ever creates is counted in `created`, and
//! every connection that permanently leaves the pool's custody —
//! errored, non-reusable, displaced by a full stack, expired by
//! `--pool-idle-timeout-ms`, or drained on demotion — is counted in
//! `retired` (enforced by `Drop`, so no code path can leak one
//! uncounted). At rest, `created == retired + idle` exactly; the suites
//! assert it.
//!
//! Capacity 0 disables pooling: every checkout opens a fresh connection
//! configured exactly as PR 7 did (NODELAY + read timeout), the forward
//! path sends `Connection: close`, and nothing is ever parked.

use parking_lot::Mutex;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Monotonic pool counters (shared with every live [`BackendConn`] so
/// retirement is counted by `Drop`, never by hand).
#[derive(Debug, Default)]
struct PoolCounters {
    created: AtomicU64,
    reused: AtomicU64,
    retired: AtomicU64,
    stale_retries: AtomicU64,
}

/// A point-in-time snapshot of the pool for `/healthz` and `/metrics`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Idle connections currently parked, fleet-wide.
    pub idle: u64,
    /// Connections ever opened to a backend.
    pub created: u64,
    /// Checkouts satisfied by a parked connection.
    pub reused: u64,
    /// Connections permanently closed (errored, displaced, expired,
    /// drained, or used in `Connection: close` mode).
    pub retired: u64,
    /// Times the stale-connection rule replaced a dead reused
    /// connection with a fresh one mid-request.
    pub stale_retries: u64,
}

/// One checked-out backend connection: buffered reader + writer halves
/// of the same stream, plus whether it came out of the pool (`reused`)
/// — which is what arms the stale-retry rule.
#[derive(Debug)]
pub(crate) struct BackendConn {
    pub(crate) reader: BufReader<TcpStream>,
    pub(crate) writer: TcpStream,
    pub(crate) reused: bool,
    /// Suppresses the `Drop` retirement count while parked in the pool.
    parked: bool,
    counters: Arc<PoolCounters>,
}

impl Drop for BackendConn {
    fn drop(&mut self) {
        if !self.parked {
            self.counters.retired.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// An idle pooled connection and when it was parked.
#[derive(Debug)]
struct Idle {
    conn: BackendConn,
    parked_at: Instant,
}

/// Bounded per-backend stacks of idle keep-alive connections.
#[derive(Debug)]
pub struct ConnectionPool {
    stacks: Vec<Mutex<Vec<Idle>>>,
    capacity: usize,
    idle_timeout: Duration,
    connect_timeout: Duration,
    read_timeout: Duration,
    counters: Arc<PoolCounters>,
}

impl ConnectionPool {
    /// A pool over `backends` indices holding at most `capacity` idle
    /// connections per backend (0 disables pooling). `idle_timeout`
    /// retires parked connections at checkout; `connect_timeout` /
    /// `read_timeout` are applied once, at connection creation.
    pub fn new(
        backends: usize,
        capacity: usize,
        idle_timeout: Duration,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> ConnectionPool {
        ConnectionPool {
            stacks: (0..backends).map(|_| Mutex::new(Vec::new())).collect(),
            capacity,
            idle_timeout,
            connect_timeout,
            read_timeout,
            counters: Arc::new(PoolCounters::default()),
        }
    }

    /// Whether pooling is on (`--pool-idle-per-backend` > 0).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Opens a fresh connection to `addr`: connect timeout, NODELAY,
    /// and the backend read timeout set once — exactly the socket
    /// configuration PR 7 applied per request.
    pub(crate) fn connect_fresh(&self, addr: SocketAddr) -> std::io::Result<BackendConn> {
        let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        self.counters.created.fetch_add(1, Ordering::Relaxed);
        Ok(BackendConn {
            reader: BufReader::new(stream),
            writer,
            reused: false,
            parked: false,
            counters: Arc::clone(&self.counters),
        })
    }

    /// Checks a connection to backend `backend` out: the most recently
    /// parked idle connection if one is fresh enough (LIFO keeps warm
    /// sockets warm), else a new connection. Parked connections past the
    /// idle timeout are retired on the way.
    pub(crate) fn checkout(
        &self,
        backend: usize,
        addr: SocketAddr,
    ) -> std::io::Result<BackendConn> {
        if self.enabled() {
            let mut stack = self.stacks[backend].lock();
            let now = Instant::now();
            stack.retain_mut(|idle| {
                let keep = now.duration_since(idle.parked_at) <= self.idle_timeout;
                if !keep {
                    idle.conn.parked = false; // drop below counts it retired
                }
                keep
            });
            if let Some(mut idle) = stack.pop() {
                drop(stack);
                self.counters.reused.fetch_add(1, Ordering::Relaxed);
                idle.conn.parked = false;
                idle.conn.reused = true;
                return Ok(idle.conn);
            }
        }
        self.connect_fresh(addr)
    }

    /// Parks a connection for reuse. The caller vouches that the stream
    /// sits at a clean response boundary (strictly framed body fully
    /// read, no buffered bytes). A full stack or a disabled pool simply
    /// drops the connection (counted retired by `Drop`).
    pub(crate) fn checkin(&self, backend: usize, mut conn: BackendConn) {
        if !self.enabled() {
            return;
        }
        let mut stack = self.stacks[backend].lock();
        if stack.len() >= self.capacity {
            return;
        }
        conn.parked = true;
        stack.push(Idle {
            conn,
            parked_at: Instant::now(),
        });
    }

    /// Records one firing of the stale-connection rule.
    pub(crate) fn note_stale_retry(&self) {
        self.counters.stale_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Closes every idle connection parked for backend `backend` — the
    /// health machine calls this on demotion, so a down backend's
    /// sockets never linger to serve a first stale request after
    /// re-admission.
    pub fn drain(&self, backend: usize) {
        for mut idle in std::mem::take(&mut *self.stacks[backend].lock()) {
            idle.conn.parked = false; // drop below counts it retired
            drop(idle);
        }
    }

    /// Idle connections currently parked for backend `backend`.
    pub fn idle_count(&self, backend: usize) -> usize {
        self.stacks[backend].lock().len()
    }

    /// Fleet-wide snapshot for `/healthz` and the `/metrics` mirror.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            idle: self.stacks.iter().map(|s| s.lock().len() as u64).sum(),
            created: self.counters.created.load(Ordering::Relaxed),
            reused: self.counters.reused.load(Ordering::Relaxed),
            retired: self.counters.retired.load(Ordering::Relaxed),
            stale_retries: self.counters.stale_retries.load(Ordering::Relaxed),
        }
    }

    /// The configured idle capacity per backend (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> Duration {
        self.idle_timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pool_for(listener_count: usize, capacity: usize, idle_ms: u64) -> ConnectionPool {
        ConnectionPool::new(
            listener_count,
            capacity,
            Duration::from_millis(idle_ms),
            Duration::from_millis(1000),
            Duration::from_millis(1000),
        )
    }

    /// A listener that accepts (and holds) connections in a background
    /// thread so checkouts can complete their TCP handshake.
    fn sink_listener() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut held = Vec::new();
            // Accept until the test drops its side and the listener errs
            // out of scope; bounded so the thread always exits.
            listener
                .set_nonblocking(false)
                .expect("blocking listener");
            for _ in 0..64 {
                match listener.accept() {
                    Ok((stream, _)) => held.push(stream),
                    Err(_) => break,
                }
                if held.len() >= 16 {
                    break;
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn checkout_checkin_reuses_lifo_and_counts_exactly() {
        let (addr, _accepts) = sink_listener();
        let pool = pool_for(1, 2, 60_000);
        let a = pool.checkout(0, addr).unwrap();
        assert!(!a.reused, "first checkout must be fresh");
        pool.checkin(0, a);
        assert_eq!(pool.idle_count(0), 1);
        let b = pool.checkout(0, addr).unwrap();
        assert!(b.reused, "second checkout must reuse");
        pool.checkin(0, b);
        let s = pool.snapshot();
        assert_eq!((s.created, s.reused, s.idle, s.retired), (1, 1, 1, 0));
        assert_eq!(s.created, s.retired + s.idle, "conservation at rest");
    }

    #[test]
    fn capacity_bounds_the_stack_and_overflow_is_retired() {
        let (addr, _accepts) = sink_listener();
        let pool = pool_for(1, 1, 60_000);
        let a = pool.checkout(0, addr).unwrap();
        let b = pool.checkout(0, addr).unwrap();
        pool.checkin(0, a);
        pool.checkin(0, b); // stack full: b is dropped, counted retired
        let s = pool.snapshot();
        assert_eq!((s.created, s.idle, s.retired), (2, 1, 1));
    }

    #[test]
    fn expired_idle_connections_are_retired_at_checkout() {
        let (addr, _accepts) = sink_listener();
        let pool = pool_for(1, 4, 0); // everything expires instantly
        let a = pool.checkout(0, addr).unwrap();
        pool.checkin(0, a);
        std::thread::sleep(Duration::from_millis(5));
        let b = pool.checkout(0, addr).unwrap();
        assert!(!b.reused, "expired connection must not be reused");
        drop(b);
        let s = pool.snapshot();
        assert_eq!((s.created, s.reused, s.retired, s.idle), (2, 0, 2, 0));
    }

    #[test]
    fn drain_empties_one_backend_only() {
        let (addr_a, _aa) = sink_listener();
        let (addr_b, _ab) = sink_listener();
        let pool = pool_for(2, 2, 60_000);
        let a = pool.checkout(0, addr_a).unwrap();
        let b = pool.checkout(1, addr_b).unwrap();
        pool.checkin(0, a);
        pool.checkin(1, b);
        pool.drain(0);
        assert_eq!(pool.idle_count(0), 0);
        assert_eq!(pool.idle_count(1), 1);
        let s = pool.snapshot();
        assert_eq!((s.retired, s.idle), (1, 1));
    }

    #[test]
    fn disabled_pool_never_parks_and_counts_conservatively() {
        let (addr, _accepts) = sink_listener();
        let pool = pool_for(1, 0, 60_000);
        assert!(!pool.enabled());
        let a = pool.checkout(0, addr).unwrap();
        assert!(!a.reused);
        pool.checkin(0, a); // no-op park: dropped, counted retired
        let b = pool.checkout(0, addr).unwrap();
        assert!(!b.reused, "disabled pool must always connect fresh");
        drop(b);
        let s = pool.snapshot();
        assert_eq!((s.created, s.reused, s.idle, s.retired), (2, 0, 0, 2));
    }

    #[test]
    fn checkout_to_a_dead_port_propagates_the_connect_error() {
        let pool = pool_for(1, 2, 60_000);
        let addr = snc_server::process::reserve_port();
        assert!(pool.checkout(0, addr).is_err());
        assert_eq!(pool.snapshot().created, 0, "failed connects are not created");
    }
}
