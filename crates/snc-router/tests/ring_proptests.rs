//! Property-based pins on the consistent-hash ring: load balance across
//! weighted topologies, and the ≈1/N remap bound when one backend
//! leaves the ring.

use proptest::prelude::*;
use snc_graph::fingerprint::mix;
use snc_router::HashRing;

/// A deterministic, well-spread sample of the routing keyspace. The
/// real routing keys are `payload_fold` values (already mixed 64-bit
/// hashes), so mixed integers are a faithful stand-in.
fn sample_keys(count: usize, salt: u64) -> Vec<u64> {
    (0..count as u64).map(|i| mix(i ^ (salt << 17))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Key distribution stays within a balance bound: with ≥ 32 vnodes
    /// per weight unit, no backend's observed share exceeds 3× its
    /// weight-fair share, and every positive-weight backend receives
    /// *some* keys.
    #[test]
    fn load_stays_within_the_balance_bound(
        n in 2usize..7,
        weight_raw in proptest::collection::vec(1u32..4, 6),
        salt in 0u64..32,
    ) {
        let weights = &weight_raw[..n];
        let ring = HashRing::new(weights, 32);
        let keys = sample_keys(4096, salt);
        let mut hits = vec![0usize; n];
        for &key in &keys {
            hits[ring.route(key, |_| true).unwrap()] += 1;
        }
        let total_weight: u32 = weights.iter().sum();
        for (backend, (&hit, &weight)) in hits.iter().zip(weights).enumerate() {
            let fair = keys.len() as f64 * f64::from(weight) / f64::from(total_weight);
            prop_assert!(hit > 0, "backend {backend} (weight {weight}) starved");
            prop_assert!(
                (hit as f64) < 3.0 * fair,
                "backend {backend}: {hit} hits vs fair share {fair:.0} (weights {weights:?})"
            );
        }
    }

    /// Consistency: dropping one backend (weight → 0) remaps exactly the
    /// keys that backend owned — nothing else moves — and the moved
    /// fraction is small (≤ 3/N of the sampled keyspace).
    #[test]
    fn removal_remaps_only_the_departed_share(
        n in 2usize..7,
        victim_raw in 0usize..6,
        salt in 0u64..32,
    ) {
        let victim = victim_raw % n;
        let weights = vec![1u32; n];
        let mut reduced_weights = weights.clone();
        reduced_weights[victim] = 0;
        let full = HashRing::new(&weights, 32);
        let reduced = HashRing::new(&reduced_weights, 32);
        let keys = sample_keys(4096, salt);
        let mut moved = 0usize;
        for &key in &keys {
            let before = full.route(key, |_| true).unwrap();
            let after = reduced.route(key, |_| true).unwrap();
            if before == victim {
                moved += 1;
                prop_assert_ne!(after, victim);
                // The zero-weight rebuild and live-routing's dead-skip
                // agree on where orphaned keys land: the next candidate.
                prop_assert_eq!(after, full.candidates(key)[1]);
            } else {
                prop_assert_eq!(
                    before, after,
                    "key not owned by the departed backend moved"
                );
            }
        }
        prop_assert!(moved > 0, "victim owned no sampled keys");
        prop_assert!(
            (moved as f64) <= 3.0 * keys.len() as f64 / n as f64,
            "moved {moved} of {} keys with n = {n}", keys.len()
        );
    }

    /// Failover order is stable under churn: marking backends dead one
    /// at a time walks the candidate list in order, and candidates are
    /// a permutation of all backends.
    #[test]
    fn failover_walks_candidates_in_order(n in 2usize..6, key in any::<u64>()) {
        let ring = HashRing::new(&vec![1u32; n], 32);
        let candidates = ring.candidates(key);
        let mut sorted = candidates.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        for dead_prefix in 0..n {
            let expected = candidates[dead_prefix];
            let routed = ring
                .route(key, |b| !candidates[..dead_prefix].contains(&b))
                .unwrap();
            prop_assert_eq!(routed, expected);
        }
        prop_assert_eq!(ring.route(key, |_| false), None);
    }
}
