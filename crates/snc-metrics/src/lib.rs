//! Dependency-free observability primitives for the `snc` fleet.
//!
//! The build environment has no crates.io access (the same constraint
//! that produced the `shims/` crates), so this crate implements the
//! small subset of a metrics stack the serving tiers need, from
//! scratch, on `std` alone:
//!
//! * [`Counter`] / [`Gauge`] — single atomics with relaxed ordering;
//!   recording is a few nanoseconds and never takes a lock.
//! * [`Histogram`] — a fixed-bucket **log-linear** histogram (8 linear
//!   sub-buckets per power-of-two octave, HdrHistogram-style):
//!   [`Histogram::record`] is three relaxed atomic adds, snapshots are
//!   mergeable across histograms, and quantiles interpolate within
//!   bucket bounds (so an estimate is always bracketed by the bucket
//!   that holds the true rank).
//! * [`Registry`] — named metric families with label sets, rendered as
//!   Prometheus-style text exposition ([`Registry::render`]): `# HELP`
//!   and `# TYPE` precede samples, label values are escaped, histogram
//!   series emit cumulative `_bucket{le=…}` / `_sum` / `_count` lines.
//! * [`AccessLog`] — a line-oriented structured log writer (one flushed
//!   line per request), and [`RequestIds`] — a lock-free generator for
//!   the `x-snc-request-id` values that correlate one request across
//!   the router → backend hop.
//!
//! ## Naming convention
//!
//! Metric names follow `snc_<layer>_<name>_<unit>` — e.g.
//! `snc_server_request_duration_us`, `snc_router_requests_relayed_total`
//! — so a fleet-wide scrape groups by layer prefix and every duration
//! states its unit. Registration panics on names outside the
//! Prometheus grammar, so a typo fails the first test that touches it,
//! not a dashboard three weeks later.

mod access;
mod histogram;
mod registry;

pub use access::{valid_request_id, AccessLog, RequestIds};
pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{Counter, Gauge, Registry};

/// The 64-bit finalizer of SplitMix64 — the workspace's standard bit
/// mixer, reimplemented here so the crate stays dependency-free. Used
/// to turn a sequential counter into well-spread request ids.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_spreads_sequential_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        // Avalanche sanity: consecutive inputs differ in many bits.
        assert!((a ^ b).count_ones() > 16);
    }
}
