//! The log-linear histogram: lock-free recording, mergeable snapshots,
//! bucket-interpolated quantiles.
//!
//! ## Bucket layout
//!
//! Values are `u64` (the fleet records microseconds). The first 8
//! buckets are exact (`[0,1), [1,2), … [7,8)`); above that, every
//! power-of-two octave `[2^t, 2^{t+1})` splits into 8 equal linear
//! sub-buckets, so relative resolution is bounded at ~12.5% everywhere
//! while the whole `u64` range fits in [`NUM_BUCKETS`] = 496 buckets
//! (~4 KiB of atomics per histogram). This is the HdrHistogram scheme
//! with 3 significant bits.
//!
//! Recording is three `Relaxed` atomic adds (bucket, count, sum) — no
//! locks, no allocation — cheap enough for the reactor's warm-hit
//! inline path. Snapshots read the atomics without synchronization, so
//! a scrape concurrent with recording may be torn by a few in-flight
//! samples; every derived statistic uses the snapshot's own bucket
//! totals, so it is internally consistent.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave (8 ⇒ 3 significant bits,
/// ≤ 12.5% relative bucket width).
const SUB_BUCKETS: usize = 8;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 3;

/// Total bucket count covering the full `u64` range: 8 exact unit
/// buckets plus 8 sub-buckets for each octave `[2^3, 2^63]`.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Maps a value to its bucket index. Total over `u64` (no overflow
/// bucket needed: the top octave's sub-buckets cover up to `u64::MAX`).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // 2^top ≤ v < 2^{top+1}, top ≥ 3
    let octave = (top - SUB_BITS) as usize;
    let sub = ((v >> octave) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + octave * SUB_BUCKETS + sub
}

/// The half-open value range `[lo, hi)` a bucket covers (`hi` saturates
/// at `u64::MAX` for the topmost bucket).
pub(crate) fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        return (index as u64, index as u64 + 1);
    }
    let octave = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let lo = (SUB_BUCKETS as u64 + sub) << octave;
    let width = 1u64 << octave;
    (lo, lo.checked_add(width).map_or(u64::MAX, |hi| hi))
}

/// A fixed-bucket log-linear histogram with lock-free recording.
///
/// See the module docs for the bucket layout. All statistics
/// are read through [`Histogram::snapshot`].
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation: three relaxed atomic adds, no locks.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies the current state into an owned, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a histogram's buckets, mergeable across histograms
/// (e.g. the same latency metric from several processes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Total observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values in the snapshot.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Element-wise merge: afterwards `self` describes the union of both
    /// sample sets. Merging snapshots of two histograms is exactly
    /// recording both value streams into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        // Sum wraps, matching the recording side's `fetch_add`.
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The quantile estimate for `q ∈ [0, 1]`, or `None` for an empty
    /// snapshot.
    ///
    /// The rank is resolved to its bucket, then linearly interpolated
    /// within the bucket's bounds — so the estimate is always inside
    /// `[lo, hi]` of the bucket holding the true rank-order statistic
    /// (the bracketing property the proptest suite pins).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            if cumulative >= rank {
                let (lo, hi) = bucket_bounds(i);
                // Zero-based position of the rank inside its bucket, so
                // a unit bucket (or the first sample in any bucket)
                // resolves to `lo` — exact for values below 8.
                let into = (rank - (cumulative - n) - 1) as f64 / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * into;
                return Some((est as u64).clamp(lo, hi));
            }
        }
        unreachable!("rank ≤ total ⇒ the cumulative walk terminates");
    }

    /// Cumulative count of observations in buckets wholly below `limit`
    /// (i.e. observations with value `< limit`, when `limit` is a
    /// bucket boundary — every power of two is one). This is the
    /// exposition's `_bucket{le=…}` value.
    pub fn cumulative_below(&self, limit: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| bucket_bounds(*i).1 <= limit)
            .map(|(_, &n)| n)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every bucket's hi is the next bucket's lo, starting at 0.
        let mut expected_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i}");
            assert!(hi > lo, "bucket {i} is non-empty");
            if hi == u64::MAX {
                assert_eq!(i, NUM_BUCKETS - 1, "only the top bucket saturates");
                break;
            }
            expected_lo = hi;
        }
    }

    #[test]
    fn values_land_in_their_own_bounds() {
        for v in [
            0,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v, "{v}: lo {lo}");
            assert!(v < hi || hi == u64::MAX, "{v}: hi {hi}");
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        // Log-linear promise: above the exact range, width/lo ≤ 1/8.
        for i in SUB_BUCKETS..NUM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert!(
                (hi - lo) as f64 / lo as f64 <= 0.125 + 1e-12,
                "bucket {i}: [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn count_sum_and_small_quantiles_are_exact() {
        let h = Histogram::new();
        for v in [3u64, 3, 5, 7, 2] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 20);
        let snap = h.snapshot();
        // Values < 8 live in exact unit buckets, so quantiles are exact.
        assert_eq!(snap.quantile(0.0), Some(2));
        assert_eq!(snap.quantile(0.5), Some(3));
        assert_eq!(snap.quantile(1.0), Some(7));
        assert_eq!(snap.quantile(0.99), Some(7));
    }

    #[test]
    fn empty_snapshot_has_no_quantiles() {
        assert_eq!(Histogram::new().snapshot().quantile(0.5), None);
        assert_eq!(HistogramSnapshot::empty().quantile(0.99), None);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let union = Histogram::new();
        for v in [1u64, 9, 100, 5000] {
            a.record(v);
            union.record(v);
        }
        for v in [2u64, 9, 77, 1 << 40] {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn cumulative_below_matches_hand_count() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 8, 63, 64, 65, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.cumulative_below(1), 1); // just the 0
        assert_eq!(snap.cumulative_below(8), 3); // 0, 1, 7
        assert_eq!(snap.cumulative_below(64), 5); // … 8, 63
        assert_eq!(snap.cumulative_below(128), 7); // … 64, 65
        assert_eq!(snap.cumulative_below(u64::MAX), 8);
    }
}
