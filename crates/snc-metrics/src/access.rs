//! Structured access logging and request-id minting.
//!
//! [`AccessLog`] writes one flushed line per request so a crash (or a
//! SIGKILL from the fault suite) loses at most the line being written.
//! [`RequestIds`] mints the `x-snc-request-id` values that correlate a
//! request across the router → backend hop: ids must be unique within a
//! process and well-spread across processes, but need no cryptographic
//! strength — [`crate::mix64`] over a seeded counter is enough.

use crate::mix64;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// The open file handle plus how many bytes it currently holds (tracked
/// so rotation never has to stat the file on the write path).
#[derive(Debug)]
struct LogFile {
    file: File,
    bytes: u64,
}

/// An append-only, line-oriented log file shared across threads, with
/// optional size-based rotation.
///
/// Each [`AccessLog::write`] takes the mutex, writes `line` plus a
/// newline in a single `write_all`, and flushes — so lines from
/// concurrent writers never interleave and are durable as soon as the
/// call returns.
///
/// When opened via [`AccessLog::open_rotating`] with a non-zero byte
/// budget, a write that would push the current file past the budget
/// first renames it to `<path>.1` (replacing any previous rotation) and
/// reopens a fresh file at `path`. Rotation happens only at line
/// boundaries — a line is never split across the two files — and the
/// line that triggered the rotation lands whole in the fresh file. An
/// oversized single line (longer than the whole budget) is still
/// written intact rather than dropped.
#[derive(Debug)]
pub struct AccessLog {
    inner: Mutex<LogFile>,
    path: PathBuf,
    rotated_path: PathBuf,
    max_bytes: u64,
}

impl AccessLog {
    /// Opens (creating if needed) `path` for appending, without
    /// rotation.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<AccessLog> {
        AccessLog::open_rotating(path, 0)
    }

    /// Opens (creating if needed) `path` for appending, rotating to
    /// `<path>.1` whenever the file would grow past `max_bytes`
    /// (0 disables rotation — identical to [`AccessLog::open`]).
    pub fn open_rotating(path: impl AsRef<Path>, max_bytes: u64) -> std::io::Result<AccessLog> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        let mut rotated = path.clone().into_os_string();
        rotated.push(".1");
        Ok(AccessLog {
            inner: Mutex::new(LogFile { file, bytes }),
            rotated_path: PathBuf::from(rotated),
            path,
            max_bytes,
        })
    }

    /// Appends one line (a trailing newline is added). Write errors are
    /// swallowed: losing a log line must never fail a request. Rotation
    /// errors are equally swallowed — if the rename or reopen fails, the
    /// log keeps appending to the handle it has rather than dropping
    /// lines.
    pub fn write(&self, line: &str) {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if self.max_bytes > 0
            && inner.bytes > 0
            && inner.bytes + buf.len() as u64 > self.max_bytes
        {
            let _ = inner.file.flush();
            if std::fs::rename(&self.path, &self.rotated_path).is_ok() {
                if let Ok(file) = OpenOptions::new().create(true).append(true).open(&self.path) {
                    inner.file = file;
                    inner.bytes = 0;
                }
                // On reopen failure the old handle still points at the
                // renamed file: lines keep landing there, never lost.
            }
        }
        let _ = inner.file.write_all(&buf);
        let _ = inner.file.flush();
        inner.bytes += buf.len() as u64;
    }
}

/// A lock-free generator of request ids: 16 lowercase hex characters,
/// unique per process and seeded so concurrent processes diverge.
#[derive(Debug)]
pub struct RequestIds {
    seed: u64,
    next: AtomicU64,
}

impl RequestIds {
    /// Creates a generator whose stream is determined by `seed`.
    pub fn new(seed: u64) -> RequestIds {
        RequestIds { seed, next: AtomicU64::new(0) }
    }

    /// Creates a generator seeded from the process id and wall clock,
    /// so two fleet members started in the same instant still mint
    /// disjoint id streams.
    pub fn from_env() -> RequestIds {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        RequestIds::new(mix64(nanos ^ (u64::from(std::process::id()) << 32)))
    }

    /// Mints the next id: `mix64(seed ^ counter)` rendered as 16 hex
    /// characters. One relaxed `fetch_add`, no locks.
    pub fn mint(&self) -> String {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        format!("{:016x}", mix64(self.seed ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D)))
    }
}

/// Whether `s` is acceptable as a client-supplied `x-snc-request-id`:
/// 1–64 characters, each ASCII alphanumeric or `-` / `_` / `.`.
///
/// The fleet honours a valid incoming id (so the router's id survives
/// the hop to the backend, and external callers can bring their own)
/// and mints a fresh one otherwise — ids land in access logs and
/// response headers, so the charset keeps them shell- and
/// header-safe.
pub fn valid_request_id(s: &str) -> bool {
    (1..=64).contains(&s.len())
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_hex_and_valid() {
        let ids = RequestIds::new(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = ids.mint();
            assert_eq!(id.len(), 16);
            assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
            assert!(valid_request_id(&id));
            assert!(seen.insert(id), "duplicate id");
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        assert_ne!(RequestIds::new(1).mint(), RequestIds::new(2).mint());
    }

    #[test]
    fn request_id_validation_rejects_junk() {
        assert!(valid_request_id("abc-123_x.y"));
        assert!(valid_request_id("a"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"a".repeat(65)));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("newline\n"));
        assert!(!valid_request_id("quote\"d"));
    }

    #[test]
    fn rotation_preserves_every_line_and_never_splits() {
        let dir = std::env::temp_dir().join(format!("snc-metrics-rotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rotate.log");
        let rotated = dir.join("rotate.log.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
        // Each line is 20 bytes on disk ("line-NNN" padded + newline);
        // a 100-byte budget rotates after every 5 lines. Writing 9
        // lines triggers exactly one rotation, so nothing ages out of
        // the two retained generations and loss would be visible.
        let log = AccessLog::open_rotating(&path, 100).unwrap();
        let lines: Vec<String> = (0..9).map(|i| format!("line-{i:03}-{}", "x".repeat(10))).collect();
        for line in &lines {
            log.write(line);
        }
        let old = std::fs::read_to_string(&rotated).unwrap();
        let new = std::fs::read_to_string(&path).unwrap();
        let survived: Vec<&str> = old.lines().chain(new.lines()).collect();
        assert_eq!(
            survived,
            lines.iter().map(String::as_str).collect::<Vec<_>>(),
            "rotation lost, split, or reordered a line"
        );
        assert_eq!(old.len() as u64, 100, "rotation fired at the budget boundary");
        assert!(new.len() as u64 <= 100, "current file exceeds the budget");
        // An oversized single line still lands whole (in a fresh file).
        let huge = "h".repeat(300);
        log.write(&huge);
        let after = std::fs::read_to_string(&path).unwrap();
        assert!(after.contains(&huge), "oversized line was dropped or split");
        for p in [&path, &rotated] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn concurrent_rotation_keeps_lines_whole() {
        let dir = std::env::temp_dir().join(format!("snc-metrics-rotate-mt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mt.log");
        let rotated = dir.join("mt.log.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
        let log = AccessLog::open_rotating(&path, 400).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let log = &log;
                scope.spawn(move || {
                    for i in 0..50 {
                        log.write(&format!("t{t}-i{i:03}-{}", "y".repeat(12)));
                    }
                });
            }
        });
        // Older generations are deliberately discarded, but every line
        // that survives in either retained file must be intact — no
        // torn writes, no interleaving, no split across the boundary.
        let old = std::fs::read_to_string(&rotated).unwrap_or_default();
        let new = std::fs::read_to_string(&path).unwrap();
        for text in [&old, &new] {
            assert!(text.is_empty() || text.ends_with('\n'), "file ends mid-line");
            for line in text.lines() {
                assert_eq!(line.len(), 20, "torn line {line:?}");
                assert!(line.starts_with('t') && line.contains("-i"), "garbled line {line:?}");
            }
        }
        assert!(new.len() as u64 <= 400, "current file exceeds the budget");
        for p in [&path, &rotated] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn access_log_appends_flushed_lines() {
        let dir = std::env::temp_dir().join(format!("snc-metrics-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        let _ = std::fs::remove_file(&path);
        let log = AccessLog::open(&path).unwrap();
        log.write("first line");
        log.write("second line");
        // Reopen appends rather than truncating.
        let log2 = AccessLog::open(&path).unwrap();
        log2.write("third line");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "first line\nsecond line\nthird line\n");
        let _ = std::fs::remove_file(&path);
    }
}
