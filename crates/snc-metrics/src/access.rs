//! Structured access logging and request-id minting.
//!
//! [`AccessLog`] writes one flushed line per request so a crash (or a
//! SIGKILL from the fault suite) loses at most the line being written.
//! [`RequestIds`] mints the `x-snc-request-id` values that correlate a
//! request across the router → backend hop: ids must be unique within a
//! process and well-spread across processes, but need no cryptographic
//! strength — [`crate::mix64`] over a seeded counter is enough.

use crate::mix64;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// An append-only, line-oriented log file shared across threads.
///
/// Each [`AccessLog::write`] takes the mutex, writes `line` plus a
/// newline in a single `write_all`, and flushes — so lines from
/// concurrent writers never interleave and are durable as soon as the
/// call returns.
#[derive(Debug)]
pub struct AccessLog {
    file: Mutex<File>,
}

impl AccessLog {
    /// Opens (creating if needed) `path` for appending.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<AccessLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AccessLog { file: Mutex::new(file) })
    }

    /// Appends one line (a trailing newline is added). Write errors are
    /// swallowed: losing a log line must never fail a request.
    pub fn write(&self, line: &str) {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = file.write_all(&buf);
        let _ = file.flush();
    }
}

/// A lock-free generator of request ids: 16 lowercase hex characters,
/// unique per process and seeded so concurrent processes diverge.
#[derive(Debug)]
pub struct RequestIds {
    seed: u64,
    next: AtomicU64,
}

impl RequestIds {
    /// Creates a generator whose stream is determined by `seed`.
    pub fn new(seed: u64) -> RequestIds {
        RequestIds { seed, next: AtomicU64::new(0) }
    }

    /// Creates a generator seeded from the process id and wall clock,
    /// so two fleet members started in the same instant still mint
    /// disjoint id streams.
    pub fn from_env() -> RequestIds {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        RequestIds::new(mix64(nanos ^ (u64::from(std::process::id()) << 32)))
    }

    /// Mints the next id: `mix64(seed ^ counter)` rendered as 16 hex
    /// characters. One relaxed `fetch_add`, no locks.
    pub fn mint(&self) -> String {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        format!("{:016x}", mix64(self.seed ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D)))
    }
}

/// Whether `s` is acceptable as a client-supplied `x-snc-request-id`:
/// 1–64 characters, each ASCII alphanumeric or `-` / `_` / `.`.
///
/// The fleet honours a valid incoming id (so the router's id survives
/// the hop to the backend, and external callers can bring their own)
/// and mints a fresh one otherwise — ids land in access logs and
/// response headers, so the charset keeps them shell- and
/// header-safe.
pub fn valid_request_id(s: &str) -> bool {
    (1..=64).contains(&s.len())
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_hex_and_valid() {
        let ids = RequestIds::new(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = ids.mint();
            assert_eq!(id.len(), 16);
            assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
            assert!(valid_request_id(&id));
            assert!(seen.insert(id), "duplicate id");
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        assert_ne!(RequestIds::new(1).mint(), RequestIds::new(2).mint());
    }

    #[test]
    fn request_id_validation_rejects_junk() {
        assert!(valid_request_id("abc-123_x.y"));
        assert!(valid_request_id("a"));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"a".repeat(65)));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("newline\n"));
        assert!(!valid_request_id("quote\"d"));
    }

    #[test]
    fn access_log_appends_flushed_lines() {
        let dir = std::env::temp_dir().join(format!("snc-metrics-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        let _ = std::fs::remove_file(&path);
        let log = AccessLog::open(&path).unwrap();
        log.write("first line");
        log.write("second line");
        // Reopen appends rather than truncating.
        let log2 = AccessLog::open(&path).unwrap();
        log2.write("third line");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "first line\nsecond line\nthird line\n");
        let _ = std::fs::remove_file(&path);
    }
}
