//! Named metric families and Prometheus-style text exposition.
//!
//! A [`Registry`] owns metric *families* (one name + help + kind each);
//! a family owns *series* (one label set each) backed by a shared
//! [`Counter`], [`Gauge`], or [`Histogram`] handle. Registration is
//! get-or-create: asking for the same `(name, labels)` returns the same
//! `Arc` handle, so callers can register lazily on the hot path and hit
//! only a short mutex-guarded scan after the first request.
//!
//! [`Registry::render`] emits the text exposition format: `# HELP` and
//! `# TYPE` lines precede every family's samples, label values are
//! escaped (`\\`, `\"`, `\n`), families appear in registration order,
//! and histogram series render cumulative `_bucket{le=…}` lines (at
//! power-of-two boundaries), `_sum`, and `_count`.

use crate::histogram::Histogram;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotone counter (atomic `u64`, relaxed ordering).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value — for mirroring an *external* monotone
    /// tally (e.g. a cache's lifetime hit count) at scrape time.
    /// Monotonicity is inherited from the source; don't mix with
    /// [`Counter::inc`] on the same counter.
    pub fn set_total(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }
}

/// An instantaneous gauge (atomic `i64`, relaxed ordering).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Overwrites the value (scrape-time sync from an external source).
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The metric kinds a family can hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn type_name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One series' backing storage.
enum Source {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<(String, String)>,
    source: Source,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A collection of metric families, rendered as text exposition.
///
/// All registration methods are get-or-create and panic on misuse
/// (invalid names, or re-registering a name as a different kind) —
/// metric registration is program structure, not input.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("Registry")
            .field("families", &families.len())
            .finish()
    }
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the Prometheus metric-name grammar.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` — the label-name grammar (no colons).
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes a HELP text: `\` → `\\`, newline → `\n`.
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders `{k="v",…}` (empty string for no labels); `extra` appends a
/// pre-escaped pair (the histogram's `le`).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// The `le` boundaries rendered for histogram series: every power of
/// two from 1 µs up to 2²⁶ µs (≈ 67 s), then `+Inf`. A fixed list keeps
/// bucket series stable across scrapes (cumulative counts can only
/// grow), which the conformance suite pins. Boundaries are *exclusive*
/// upper bounds here (`value < le`): the underlying buckets are
/// half-open power-of-two ranges.
const LE_BOUNDARIES: [u64; 27] = {
    let mut b = [0u64; 27];
    let mut i = 0;
    while i < 27 {
        b[i] = 1 << i;
        i += 1;
    }
    b
};

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_create(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Source,
    ) -> Source {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
        }
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert_eq!(
                    family.kind, kind,
                    "metric {name} registered as {} and {}",
                    family.kind.type_name(),
                    kind.type_name()
                );
                family
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family
            .series
            .iter()
            .find(|s| s.labels.len() == labels.len() && s.labels.iter().zip(labels).all(|((k, v), (lk, lv))| k == lk && v == lv))
        {
            return clone_source(&series.source);
        }
        let source = make();
        family.series.push(Series {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            source: clone_source(&source),
        });
        source
    }

    /// Gets or creates a counter series.
    ///
    /// # Panics
    ///
    /// On an invalid metric/label name, or if `name` is already
    /// registered as a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_create(name, help, Kind::Counter, labels, || {
            Source::Counter(Arc::new(Counter::new()))
        }) {
            Source::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Gets or creates a gauge series (panics as [`Registry::counter`]).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_create(name, help, Kind::Gauge, labels, || {
            Source::Gauge(Arc::new(Gauge::new()))
        }) {
            Source::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Gets or creates a histogram series (panics as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_create(name, help, Kind::Histogram, labels, || {
            Source::Histogram(Arc::new(Histogram::new()))
        }) {
            Source::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Renders the full text exposition: families in registration
    /// order, `# HELP` then `# TYPE` then samples for each.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for family in families.iter() {
            out.push_str(&format!(
                "# HELP {} {}\n",
                family.name,
                escape_help(&family.help)
            ));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                family.name,
                family.kind.type_name()
            ));
            for series in &family.series {
                match &series.source {
                    Source::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            c.get()
                        ));
                    }
                    Source::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            g.get()
                        ));
                    }
                    Source::Histogram(h) => {
                        let snap = h.snapshot();
                        for le in LE_BOUNDARIES {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                family.name,
                                render_labels(&series.labels, Some(("le", &le.to_string()))),
                                snap.cumulative_below(le)
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            family.name,
                            render_labels(&series.labels, Some(("le", "+Inf"))),
                            snap.count()
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            snap.sum()
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            snap.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

fn clone_source(source: &Source) -> Source {
    match source {
        Source::Counter(c) => Source::Counter(Arc::clone(c)),
        Source::Gauge(g) => Source::Gauge(Arc::clone(g)),
        Source::Histogram(h) => Source::Histogram(Arc::clone(h)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("snc_test_total", "help", &[("route", "solve")]);
        let b = r.counter("snc_test_total", "help", &[("route", "solve")]);
        assert!(Arc::ptr_eq(&a, &b));
        let c = r.counter("snc_test_total", "help", &[("route", "jobs")]);
        assert!(!Arc::ptr_eq(&a, &c), "distinct label sets, distinct series");
        a.add(3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    #[should_panic(expected = "registered as counter and gauge")]
    fn kind_collision_panics() {
        let r = Registry::new();
        let _ = r.counter("snc_test_total", "help", &[]);
        let _ = r.gauge("snc_test_total", "help", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let _ = Registry::new().counter("0bad-name", "help", &[]);
    }

    #[test]
    fn render_is_ordered_and_escaped() {
        let r = Registry::new();
        r.counter("snc_a_total", "first\nfamily", &[("p", "a\\b\"c\nd")])
            .inc();
        r.gauge("snc_b_depth", "second", &[]).set(-2);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# HELP snc_a_total first\\nfamily");
        assert_eq!(lines[1], "# TYPE snc_a_total counter");
        assert_eq!(lines[2], "snc_a_total{p=\"a\\\\b\\\"c\\nd\"} 1");
        assert_eq!(lines[3], "# HELP snc_b_depth second");
        assert_eq!(lines[4], "# TYPE snc_b_depth gauge");
        assert_eq!(lines[5], "snc_b_depth -2");
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_consistent() {
        let r = Registry::new();
        let h = r.histogram("snc_lat_us", "latency", &[("route", "solve")]);
        for v in [3u64, 10, 100, 5000] {
            h.record(v);
        }
        let text = r.render();
        assert!(text.contains("# TYPE snc_lat_us histogram"));
        assert!(text.contains("snc_lat_us_bucket{route=\"solve\",le=\"4\"} 1"));
        assert!(text.contains("snc_lat_us_bucket{route=\"solve\",le=\"16\"} 2"));
        assert!(text.contains("snc_lat_us_bucket{route=\"solve\",le=\"128\"} 3"));
        assert!(text.contains("snc_lat_us_bucket{route=\"solve\",le=\"+Inf\"} 4"));
        assert!(text.contains("snc_lat_us_sum{route=\"solve\"} 5113"));
        assert!(text.contains("snc_lat_us_count{route=\"solve\"} 4"));
        // Bucket counts are non-decreasing in le.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("snc_lat_us_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }
}
