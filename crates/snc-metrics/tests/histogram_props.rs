//! Property tests for the log-linear histogram (ISSUE 9 satellite):
//! for arbitrary sample sets, recorded count/sum are exact, every
//! quantile estimate is bracketed by the bucket bounds of the true
//! rank-order statistic, and merging two snapshots equals recording
//! the union of both sample streams.

use proptest::collection::vec;
use proptest::prelude::*;
use snc_metrics::{Histogram, HistogramSnapshot};

/// Sample values spanning the interesting regimes: the exact unit
/// buckets, mid-range microsecond latencies, and huge outliers (the
/// shift folds `any::<u64>()` down by a value-dependent amount, so the
/// stream mixes all magnitudes up to `u64::MAX`).
fn sample_value() -> impl Strategy<Value = u64> {
    (0u8..3, 0u64..16, 16u64..100_000, any::<u64>()).prop_map(|(pick, small, mid, raw)| {
        match pick {
            0 => small,
            1 => mid,
            _ => raw >> (raw % 40),
        }
    })
}

fn record_all(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The widest half-open bucket containing `v` spans at most one eighth
/// of an octave, so its bounds lie within `v ± max(v/8, 1)` (plus one
/// for the closed upper end). Bracketing the quantile estimate against
/// the *sorted true value* with that slack is exactly the "inside the
/// bucket holding the true rank" property.
fn bucket_slack(v: u64) -> (u64, u64) {
    let width = (v / 8).max(1);
    (v.saturating_sub(width), v.saturating_add(width))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_and_sum_are_exact(values in vec(sample_value(), 0..200)) {
        let h = record_all(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        // The histogram's sum atomics wrap on overflow, so the oracle
        // wraps the same way (huge outliers can overflow u64 here).
        let expected_sum: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(h.sum(), expected_sum);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum(), expected_sum);
    }

    #[test]
    fn quantiles_are_bracketed_by_bucket_bounds(
        mut values in vec(sample_value(), 1..200),
        q in 0.0f64..1.0,
    ) {
        let snap = record_all(&values).snapshot();
        values.sort_unstable();
        // The true rank-order statistic the estimate must bracket.
        let total = values.len() as u64;
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let truth = values[(rank - 1) as usize];
        let est = snap.quantile(q).expect("non-empty");
        let (lo, hi) = bucket_slack(truth);
        prop_assert!(
            est >= lo && est <= hi,
            "q={} est={} truth={} allowed=[{}, {}]", q, est, truth, lo, hi
        );
    }

    #[test]
    fn merge_equals_recording_the_union(
        a in vec(sample_value(), 0..100),
        b in vec(sample_value(), 0..100),
    ) {
        let mut merged = record_all(&a).snapshot();
        merged.merge(&record_all(&b).snapshot());
        let union: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, record_all(&union).snapshot());
    }

    #[test]
    fn merge_is_commutative_with_empty_identity(
        a in vec(sample_value(), 0..60),
        b in vec(sample_value(), 0..60),
    ) {
        let sa = record_all(&a).snapshot();
        let sb = record_all(&b).snapshot();
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        let mut with_empty = sa.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(with_empty, sa);
    }

    #[test]
    fn cumulative_below_is_monotone_and_total(
        values in vec(sample_value(), 0..150),
    ) {
        let snap = record_all(&values).snapshot();
        let mut prev = 0u64;
        for shift in 0..27u32 {
            let cur = snap.cumulative_below(1u64 << shift);
            prop_assert!(cur >= prev, "le=2^{} dropped {} -> {}", shift, prev, cur);
            // At power-of-two boundaries the cumulative count is the
            // exact number of observations strictly below the limit.
            let exact = values.iter().filter(|&&v| v < (1u64 << shift)).count() as u64;
            prop_assert_eq!(cur, exact);
            prev = cur;
        }
        prop_assert_eq!(snap.cumulative_below(u64::MAX), snap.count());
    }
}
