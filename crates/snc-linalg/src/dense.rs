//! Row-major dense matrices.
//!
//! [`DMatrix`] is deliberately minimal: storage plus the operations the
//! workspace actually needs (matvec, matmul, Gram products, symmetry
//! checks). Row access returns slices so hot code can stay allocation-free.

use crate::error::LinalgError;
use crate::vector;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// A matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Takes ownership of a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copies column `j` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows`.
    pub fn column_into(&self, j: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self[(i, j)];
        }
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = vector::dot(self.row(i), x);
        }
    }

    /// Matrix–vector product, allocating the result.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix product `A · B`.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `self.cols != b.rows`.
    pub fn matmul(&self, b: &DMatrix) -> Result<DMatrix, LinalgError> {
        if self.cols != b.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                expected: self.cols,
                actual: b.rows,
            });
        }
        let mut out = DMatrix::zeros(self.rows, b.cols);
        // ikj loop order: stream over b's rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a_ik = self[(i, k)];
                if a_ik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let orow = out.row_mut(i);
                vector::axpy(a_ik, brow, orow);
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> DMatrix {
        DMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Gram matrix of the rows: `A Aᵀ` (size `rows × rows`).
    ///
    /// This is the covariance shape used throughout the paper: the LIF
    /// membrane covariance is proportional to the Gram matrix of the
    /// device-to-neuron weight vectors (§III.C).
    pub fn gram_rows(&self) -> DMatrix {
        let n = self.rows;
        let mut g = DMatrix::zeros(n, n);
        for i in 0..n {
            let ri = self.row(i);
            for j in i..n {
                let v = vector::dot(ri, self.row(j));
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        g
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        vector::norm(&self.data)
    }

    /// Maximum absolute entry difference with another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &DMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Whether the matrix is symmetric within tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i + 1..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, s: f64) {
        vector::scale(&mut self.data, s);
    }

    /// Returns `A + s·I`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_scaled_identity(&self, s: f64) -> DMatrix {
        assert!(self.is_square());
        let mut m = self.clone();
        for i in 0..self.rows {
            m[(i, i)] += s;
        }
        m
    }

    /// Quadratic form `xᵀ A x`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert!(self.is_square());
        assert_eq!(x.len(), self.rows);
        let mut acc = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            acc += xi * vector::dot(self.row(i), x);
        }
        acc
    }
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let id = DMatrix::identity(3);
        assert_eq!(id[(1, 1)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
    }

    #[test]
    fn matvec_known() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matmul_known_and_identity() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, DMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
        let id = DMatrix::identity(2);
        assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn matmul_shape_error() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = DMatrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(0, 2)], a[(2, 0)]);
    }

    #[test]
    fn gram_rows_is_symmetric_psd_diagonal() {
        let a = DMatrix::from_rows(&[&[1.0, 0.0], &[0.6, 0.8]]);
        let g = a.gram_rows();
        assert!(g.is_symmetric(0.0));
        assert!((g[(0, 0)] - 1.0).abs() < 1e-15);
        assert!((g[(1, 1)] - 1.0).abs() < 1e-15);
        assert!((g[(0, 1)] - 0.6).abs() < 1e-15);
    }

    #[test]
    fn quadratic_form_matches_matvec() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = [1.0, -2.0];
        let ax = a.matvec(&x);
        let expected = x[0] * ax[0] + x[1] * ax[1];
        assert!((a.quadratic_form(&x) - expected).abs() < 1e-14);
    }

    #[test]
    fn symmetry_check() {
        let mut a = DMatrix::identity(3);
        assert!(a.is_symmetric(0.0));
        a[(0, 1)] = 0.5;
        assert!(!a.is_symmetric(1e-9));
        a[(1, 0)] = 0.5;
        assert!(a.is_symmetric(0.0));
        assert!(!DMatrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn add_scaled_identity_shifts_diagonal() {
        let a = DMatrix::zeros(2, 2).add_scaled_identity(3.0);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn column_extraction() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut col = vec![0.0; 3];
        a.column_into(1, &mut col);
        assert_eq!(col, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn frobenius_norm() {
        let a = DMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.frobenius(), 5.0);
    }
}
