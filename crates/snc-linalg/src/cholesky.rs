//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used to sample multivariate Gaussians with a prescribed covariance when
//! only the covariance matrix (not a low-rank factor) is available: if
//! `C = L Lᵀ` then `x = L g` with `g ~ N(0, I)` has covariance `C`. This is
//! the generic path of the Bertsimas–Ye rounding; the LIF-GW circuit itself
//! uses the SDP factor matrix directly.

use crate::dense::DMatrix;
use crate::error::LinalgError;

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: DMatrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidArgument`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &DMatrix) -> Result<Self, LinalgError> {
        Self::with_jitter(a, 0.0)
    }

    /// Factors `a + jitter·I`, a standard regularization for covariance
    /// matrices that are PSD but numerically rank-deficient (as Gram
    /// matrices of rank-r factors with r < n always are).
    ///
    /// # Errors
    ///
    /// Same as [`Cholesky::new`].
    pub fn with_jitter(a: &DMatrix, jitter: f64) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidArgument("cholesky requires a square matrix"));
        }
        let n = a.rows();
        let mut l = DMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)] + jitter;
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in j + 1..n {
                let mut s = a[(i, j)] + if i == j { jitter } else { 0.0 };
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &DMatrix {
        &self.l
    }

    /// Reconstructs `L Lᵀ` (for testing round-trips).
    pub fn reconstruct(&self) -> DMatrix {
        self.l.matmul(&self.l.transpose()).expect("square factor")
    }

    /// Solves `A x = b` via forward/back substitution.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `b.len()` differs from the matrix size.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                expected: n,
                actual: b.len(),
            });
        }
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let row = self.l.row(i);
            let partial: f64 = row[..i].iter().zip(&y[..i]).map(|(l, v)| l * v).sum();
            y[i] = (b[i] - partial) / row[i];
        }
        // Backward: Lᵀ x = y (column access on L = row access on Lᵀ).
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let partial: f64 = (i + 1..n).map(|k| self.l[(k, i)] * x[k]).sum();
            x[i] = (y[i] - partial) / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Applies the factor to a vector: `out = L g` (correlating transform).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the matrix size.
    pub fn correlate_into(&self, g: &[f64], out: &mut [f64]) {
        let n = self.l.rows();
        assert_eq!(g.len(), n);
        assert_eq!(out.len(), n);
        for i in 0..n {
            let row = self.l.row(i);
            // Only the first i+1 entries of row i are nonzero.
            out[i] = row[..=i].iter().zip(&g[..=i]).map(|(a, b)| a * b).sum();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DMatrix {
        // A = Bᵀ B + I for a random-ish B, guaranteed SPD.
        DMatrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn roundtrip_llt() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        assert!(ch.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn identity_factor() {
        let ch = Cholesky::new(&DMatrix::identity(4)).unwrap();
        assert!(ch.factor().max_abs_diff(&DMatrix::identity(4)) < 1e-15);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let b = [1.0, -2.0, 0.5];
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (u, v) in ax.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rescues_singular() {
        // Rank-1 Gram matrix (singular) becomes factorizable with jitter.
        let a = DMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::new(&a).is_err());
        assert!(Cholesky::with_jitter(&a, 1e-9).is_ok());
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::new(&DMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn correlate_matches_matvec() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let g = [0.3, -1.2, 0.7];
        let mut out = vec![0.0; 3];
        ch.correlate_into(&g, &mut out);
        let direct = ch.factor().matvec(&g);
        for (u, v) in out.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_dimension_error() {
        let ch = Cholesky::new(&spd3()).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }
}
