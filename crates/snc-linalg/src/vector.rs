//! Free functions on `&[f64]` slices.
//!
//! Hot inner loops throughout the workspace (LIF stepping, Oja updates,
//! Riemannian gradients) are expressed through these helpers. They are
//! written as straight-line iterator chains so LLVM can vectorize them, and
//! they never allocate.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * x + beta * y`.
#[inline]
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// Scales a slice in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// Normalizes to unit Euclidean norm; returns the original norm.
///
/// Slices with norm below `1e-300` are left untouched (returns 0.0).
#[inline]
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm(a);
    if n > 1e-300 {
        scale(a, 1.0 / n);
        n
    } else {
        0.0
    }
}

/// Elementwise subtraction `out = a - b`.
#[inline]
pub fn sub_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// Fills a slice with a constant.
#[inline]
pub fn fill(a: &mut [f64], v: f64) {
    for x in a {
        *x = v;
    }
}

/// Maximum absolute entry (0.0 for the empty slice).
#[inline]
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Arithmetic mean (0.0 for the empty slice).
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Sample variance with Bessel's correction (0.0 for fewer than 2 samples).
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Removes from `v` its projection onto unit vector `u`: `v -= (v·u) u`.
#[inline]
pub fn orthogonalize_against(v: &mut [f64], u: &[f64]) {
    let c = dot(v, u);
    axpy(-c, u, v);
}

/// Cosine of the angle between two vectors (0.0 if either is null).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na <= 0.0 || nb <= 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// |cosine| — alignment ignoring sign, used to compare eigenvectors which
/// are only defined up to sign.
pub fn alignment(a: &[f64], b: &[f64]) -> f64 {
    cosine(a, b).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        axpby(1.0, &[1.0, 1.0], 0.5, &mut y);
        assert_eq!(y, vec![4.5, 5.5]);
    }

    #[test]
    fn normalize_unit() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!((norm(&v) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-15);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    fn orthogonalization() {
        let u = vec![1.0, 0.0];
        let mut v = vec![2.0, 5.0];
        orthogonalize_against(&mut v, &u);
        assert!(dot(&v, &u).abs() < 1e-15);
        assert_eq!(v, vec![0.0, 5.0]);
    }

    #[test]
    fn cosine_and_alignment() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-15);
        assert!((cosine(&[1.0, 1.0], &[2.0, 2.0]) - 1.0).abs() < 1e-15);
        assert!((alignment(&[1.0, 1.0], &[-1.0, -1.0]) - 1.0).abs() < 1e-15);
        assert_eq!(cosine(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn sub_into_works() {
        let mut out = vec![0.0; 2];
        sub_into(&[5.0, 7.0], &[2.0, 3.0], &mut out);
        assert_eq!(out, vec![3.0, 4.0]);
    }
}
