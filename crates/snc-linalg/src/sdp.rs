//! Low-rank (Burer–Monteiro) solver for the MAXCUT semidefinite program.
//!
//! The GW relaxation (§II.A of the paper) assigns a unit vector `w_i ∈ S^{r−1}`
//! to every vertex and maximizes `Σ_{ij∈E} A_ij (1 − w_i·w_j)/2`, which is
//! equivalent to *minimizing* the coupling energy `Σ_{ij∈E} w_ij ⟨v_i, v_j⟩`.
//! Burer–Monteiro replaces the PSD matrix variable with its rank-`r` factor
//! `V` (one row per vertex) and optimizes over the product of spheres — the
//! same "oblique manifold" formulation the paper hands to PyManOpt. We solve
//! it with Riemannian projected gradient descent plus Armijo backtracking.
//!
//! The paper fixes `r = 4` for all graphs (§IV.A); for rank-deficient optima
//! that is enough to get within a fraction of a percent of the true SDP
//! value on the instance sizes evaluated (n ≤ 700).
//!
//! The solver accepts arbitrary signed pairwise couplings so the MAX2SAT and
//! MAXDICUT extensions (§VI) reuse it unchanged.

use crate::dense::DMatrix;
use crate::error::LinalgError;
use crate::vector;
use snc_devices::{Rng64, SplitMix64, Xoshiro256pp};

/// One pairwise coupling term `w · ⟨v_i, v_j⟩` in the SDP energy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Coupling {
    /// First vertex index.
    pub i: u32,
    /// Second vertex index.
    pub j: u32,
    /// Coupling weight (positive = wants antipodal, negative = aligned).
    pub w: f64,
}

/// Configuration for the Burer–Monteiro solver.
#[derive(Clone, Copy, Debug)]
pub struct SdpConfig {
    /// Factorization rank `r` (the paper uses 4).
    pub rank: usize,
    /// Maximum gradient iterations per restart.
    pub max_iters: usize,
    /// Relative Riemannian-gradient tolerance for convergence.
    pub grad_tol: f64,
    /// Number of random restarts; the best energy wins.
    pub restarts: usize,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for SdpConfig {
    fn default() -> Self {
        Self {
            rank: 4,
            max_iters: 2000,
            grad_tol: 1e-7,
            restarts: 1,
            seed: 0x5d9,
        }
    }
}

/// The result of a Burer–Monteiro solve.
#[derive(Clone, Debug)]
pub struct SdpSolution {
    /// The `n × r` factor matrix; row `i` is the unit vector of vertex `i`.
    pub factors: DMatrix,
    /// Final coupling energy `Σ w_ij ⟨v_i, v_j⟩` (minimized).
    pub energy: f64,
    /// Total gradient iterations across restarts.
    pub iterations: usize,
    /// Final Riemannian gradient norm (Frobenius).
    pub grad_norm: f64,
}

impl SdpSolution {
    /// The MAXCUT SDP objective `Σ w_ij (1 − v_i·v_j)/2` implied by this
    /// solution, given the total coupling weight `Σ w_ij`.
    ///
    /// For an unweighted graph pass `total_weight = m`. For a (near-)optimal
    /// solution this upper-bounds the maximum cut.
    pub fn cut_upper_bound(&self, total_weight: f64) -> f64 {
        0.5 * (total_weight - self.energy)
    }

    /// The Gram matrix `V Vᵀ` of the factor rows (the covariance the LIF-GW
    /// circuit must realize).
    pub fn gram(&self) -> DMatrix {
        self.factors.gram_rows()
    }

    /// Consumes the solution and returns its factor matrix together with
    /// the implied MAXCUT upper bound (see [`SdpSolution::cut_upper_bound`]).
    ///
    /// This is the pair downstream caches retain — the factor is the
    /// expensive artifact of the offline stage, and moving it out avoids
    /// cloning an `n × r` matrix per cache insert.
    pub fn into_factor_and_bound(self, total_weight: f64) -> (DMatrix, f64) {
        let bound = self.cut_upper_bound(total_weight);
        (self.factors, bound)
    }
}

/// Solves `min Σ w ⟨v_i, v_j⟩` over unit vectors `v_i ∈ S^{r−1}`.
///
/// # Errors
///
/// * [`LinalgError::InvalidArgument`] for `n == 0`, zero rank, or a coupling
///   referencing an out-of-range vertex.
pub fn solve_weighted_sdp(
    n: usize,
    couplings: &[Coupling],
    cfg: &SdpConfig,
) -> Result<SdpSolution, LinalgError> {
    if n == 0 {
        return Err(LinalgError::InvalidArgument("sdp: n must be positive"));
    }
    if cfg.rank == 0 {
        return Err(LinalgError::InvalidArgument("sdp: rank must be positive"));
    }
    for c in couplings {
        if c.i as usize >= n || c.j as usize >= n {
            return Err(LinalgError::InvalidArgument("sdp: coupling vertex out of range"));
        }
    }

    // Symmetric adjacency list: each undirected coupling appears from both
    // endpoints so the gradient is a single pass.
    let mut degree = vec![0usize; n];
    for c in couplings {
        degree[c.i as usize] += 1;
        degree[c.j as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for d in &degree {
        offsets.push(offsets.last().unwrap() + d);
    }
    let mut neighbors: Vec<(u32, f64)> = vec![(0, 0.0); offsets[n]];
    let mut cursor = offsets.clone();
    for c in couplings {
        neighbors[cursor[c.i as usize]] = (c.j, c.w);
        cursor[c.i as usize] += 1;
        neighbors[cursor[c.j as usize]] = (c.i, c.w);
        cursor[c.j as usize] += 1;
    }

    let mut best: Option<SdpSolution> = None;
    let mut total_iters = 0usize;
    for restart in 0..cfg.restarts.max(1) {
        let seed = SplitMix64::derive(cfg.seed, restart as u64);
        let (sol, iters) = descend(n, &offsets, &neighbors, cfg, seed);
        total_iters += iters;
        match &best {
            Some(b) if b.energy <= sol.energy => {}
            _ => best = Some(sol),
        }
    }
    let mut best = best.expect("at least one restart");
    best.iterations = total_iters;
    Ok(best)
}

/// Convenience wrapper for an unweighted MAXCUT instance.
///
/// # Errors
///
/// Same as [`solve_weighted_sdp`].
pub fn solve_maxcut_sdp(
    n: usize,
    edges: &[(u32, u32)],
    cfg: &SdpConfig,
) -> Result<SdpSolution, LinalgError> {
    let couplings: Vec<Coupling> = edges
        .iter()
        .map(|&(i, j)| Coupling { i, j, w: 1.0 })
        .collect();
    solve_weighted_sdp(n, &couplings, cfg)
}

/// Riemannian gradient descent with Armijo backtracking from one random
/// initialization. Returns the solution and iteration count.
fn descend(
    n: usize,
    offsets: &[usize],
    neighbors: &[(u32, f64)],
    cfg: &SdpConfig,
    seed: u64,
) -> (SdpSolution, usize) {
    let r = cfg.rank;
    let mut rng = Xoshiro256pp::new(seed);
    let mut v = DMatrix::zeros(n, r);
    for i in 0..n {
        let row = v.row_mut(i);
        for x in row.iter_mut() {
            *x = rng.next_f64() - 0.5;
        }
        if vector::normalize(row) == 0.0 {
            row[0] = 1.0;
        }
    }

    let energy_of = |v: &DMatrix| -> f64 {
        // f = 1/2 Σ_i Σ_{j∈adj(i)} w_ij ⟨v_i, v_j⟩ (each edge twice).
        let mut e = 0.0;
        for i in 0..n {
            let vi = v.row(i);
            for &(j, w) in &neighbors[offsets[i]..offsets[i + 1]] {
                e += w * vector::dot(vi, v.row(j as usize));
            }
        }
        0.5 * e
    };

    let mut grad = DMatrix::zeros(n, r);
    let mut trial = DMatrix::zeros(n, r);
    let mut energy = energy_of(&v);
    let mut step = 0.5;
    let mut grad_norm = f64::INFINITY;
    let mut iters = 0usize;

    for _ in 0..cfg.max_iters {
        iters += 1;
        // Riemannian gradient: project Σ w v_j onto the tangent space of
        // each sphere.
        let mut gn2 = 0.0;
        for i in 0..n {
            // Euclidean gradient for row i.
            let mut g = vec![0.0; r];
            for &(j, w) in &neighbors[offsets[i]..offsets[i + 1]] {
                vector::axpy(w, v.row(j as usize), &mut g);
            }
            let vi = v.row(i);
            let c = vector::dot(&g, vi);
            vector::axpy(-c, vi, &mut g);
            gn2 += vector::norm_sq(&g);
            grad.row_mut(i).copy_from_slice(&g);
        }
        grad_norm = gn2.sqrt();
        let scale = 1.0 + energy.abs();
        if grad_norm <= cfg.grad_tol * scale {
            break;
        }

        // Armijo backtracking on the retracted step.
        let mut eta = step;
        let mut accepted = false;
        for _ in 0..40 {
            for i in 0..n {
                let t = trial.row_mut(i);
                t.copy_from_slice(v.row(i));
                vector::axpy(-eta, grad.row(i), t);
                if vector::normalize(t) == 0.0 {
                    t.copy_from_slice(v.row(i));
                }
            }
            let e_new = energy_of(&trial);
            if e_new <= energy - 1e-4 * eta * gn2 {
                std::mem::swap(&mut v, &mut trial);
                energy = e_new;
                step = (eta * 1.3).min(10.0);
                accepted = true;
                break;
            }
            eta *= 0.5;
        }
        if !accepted {
            // Stalled below line-search resolution.
            break;
        }
    }

    (
        SdpSolution {
            factors: v,
            energy,
            iterations: iters,
            grad_norm,
        },
        iters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rank: usize) -> SdpConfig {
        SdpConfig {
            rank,
            max_iters: 3000,
            grad_tol: 1e-9,
            restarts: 2,
            seed: 17,
        }
    }

    #[test]
    fn single_edge_goes_antipodal() {
        let sol = solve_maxcut_sdp(2, &[(0, 1)], &cfg(2)).unwrap();
        assert!((sol.energy + 1.0).abs() < 1e-6, "energy={}", sol.energy);
        let dot = vector::dot(sol.factors.row(0), sol.factors.row(1));
        assert!((dot + 1.0).abs() < 1e-5);
        assert!((sol.cut_upper_bound(1.0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn triangle_reaches_sdp_value() {
        // K3: optimal vectors at 120°, energy = 3·(−1/2) = −1.5,
        // SDP cut bound = (3 + 1.5)/2 = 2.25.
        let sol = solve_maxcut_sdp(3, &[(0, 1), (1, 2), (0, 2)], &cfg(2)).unwrap();
        assert!((sol.energy + 1.5).abs() < 1e-4, "energy={}", sol.energy);
        assert!((sol.cut_upper_bound(3.0) - 2.25).abs() < 1e-4);
    }

    #[test]
    fn k4_needs_rank_3() {
        // K4: tetrahedral optimum, v_i·v_j = −1/3, energy = −2.
        let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let sol = solve_maxcut_sdp(4, &edges, &cfg(4)).unwrap();
        assert!((sol.energy + 2.0).abs() < 1e-3, "energy={}", sol.energy);
    }

    #[test]
    fn bipartite_square_is_tight() {
        // C4 is bipartite: SDP = OPT = 4 (energy −4).
        let sol = solve_maxcut_sdp(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], &cfg(4)).unwrap();
        assert!((sol.energy + 4.0).abs() < 1e-4, "energy={}", sol.energy);
        assert!((sol.cut_upper_bound(4.0) - 4.0).abs() < 1e-4);
    }

    #[test]
    fn rows_are_unit_norm() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)];
        let sol = solve_maxcut_sdp(5, &edges, &cfg(4)).unwrap();
        for i in 0..5 {
            assert!((vector::norm(sol.factors.row(i)) - 1.0).abs() < 1e-9);
        }
        assert!(sol.grad_norm < 1e-5);
    }

    #[test]
    fn negative_coupling_aligns() {
        let sol = solve_weighted_sdp(
            2,
            &[Coupling { i: 0, j: 1, w: -2.0 }],
            &cfg(3),
        )
        .unwrap();
        let dot = vector::dot(sol.factors.row(0), sol.factors.row(1));
        assert!((dot - 1.0).abs() < 1e-5);
        assert!((sol.energy + 2.0).abs() < 1e-5);
    }

    #[test]
    fn isolated_vertices_are_harmless() {
        let sol = solve_maxcut_sdp(4, &[(0, 1)], &cfg(2)).unwrap();
        assert!((sol.energy + 1.0).abs() < 1e-5);
        for i in 0..4 {
            assert!((vector::norm(sol.factors.row(i)) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let edges = [(0, 1), (1, 2), (0, 2), (2, 3)];
        let a = solve_maxcut_sdp(4, &edges, &cfg(4)).unwrap();
        let b = solve_maxcut_sdp(4, &edges, &cfg(4)).unwrap();
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.factors, b.factors);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(solve_maxcut_sdp(0, &[], &cfg(2)).is_err());
        assert!(solve_maxcut_sdp(2, &[(0, 5)], &cfg(2)).is_err());
        let mut c = cfg(2);
        c.rank = 0;
        assert!(solve_maxcut_sdp(2, &[(0, 1)], &c).is_err());
    }

    #[test]
    fn into_factor_and_bound_matches_the_accessors() {
        let edges = [(0, 1), (1, 2), (0, 2)];
        let sol = solve_maxcut_sdp(3, &edges, &cfg(2)).unwrap();
        let bound = sol.cut_upper_bound(3.0);
        let factors = sol.factors.clone();
        let (extracted, extracted_bound) = sol.into_factor_and_bound(3.0);
        assert_eq!(extracted, factors);
        assert_eq!(extracted_bound, bound);
    }

    #[test]
    fn gram_diagonal_is_one() {
        let sol = solve_maxcut_sdp(3, &[(0, 1), (1, 2)], &cfg(4)).unwrap();
        let g = sol.gram();
        for i in 0..3 {
            assert!((g[(i, i)] - 1.0).abs() < 1e-9);
        }
        assert!(g.is_symmetric(1e-12));
    }
}
