//! Gaussian sampling.
//!
//! The Goemans–Williamson rounding step is, per Bertsimas–Ye (§II.A of the
//! paper), the sampling of dependent standard normals with covariance
//! `w_i · w_j` followed by a sign threshold. This module provides:
//!
//! * [`GaussianSampler`] — standard normals via the polar (Marsaglia)
//!   Box–Muller method over any [`Rng64`];
//! * factor-based correlated sampling `x = W g` (`W` the `n × r` SDP factor
//!   matrix, `g ~ N(0, I_r)`), which is exactly what the LIF-GW circuit
//!   implements in "hardware".

use crate::dense::DMatrix;
use snc_devices::{Rng64, Xoshiro256pp};

/// A standard-normal sampler over a deterministic RNG.
#[derive(Clone, Debug)]
pub struct GaussianSampler {
    rng: Xoshiro256pp,
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256pp::new(seed),
            spare: None,
        }
    }

    /// Draws one standard normal variate.
    #[inline]
    pub fn sample(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Marsaglia polar method: rejection-sample a point in the unit
        // disk, transform to two independent normals.
        loop {
            let u = 2.0 * self.rng.next_f64() - 1.0;
            let v = 2.0 * self.rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Fills a slice with independent standard normals.
    pub fn fill(&mut self, out: &mut [f64]) {
        for x in out {
            *x = self.sample();
        }
    }

    /// Draws a vector of `n` independent standard normals.
    pub fn standard_vec(&mut self, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        self.fill(&mut v);
        v
    }

    /// Samples `x = W g` with `g ~ N(0, I_r)`, writing into `out`.
    ///
    /// The result is a zero-mean Gaussian vector with covariance `W Wᵀ` —
    /// the Gram matrix of the rows of `W`. With `W` the GW SDP factor
    /// matrix this is the Bertsimas–Ye sampling step.
    ///
    /// `g_buf` must have length `w.cols()`; `out` must have length
    /// `w.rows()`.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths are inconsistent with `w`.
    pub fn correlated_from_factor_into(
        &mut self,
        w: &DMatrix,
        g_buf: &mut [f64],
        out: &mut [f64],
    ) {
        assert_eq!(g_buf.len(), w.cols());
        assert_eq!(out.len(), w.rows());
        self.fill(g_buf);
        w.matvec_into(g_buf, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn moments_match_standard_normal() {
        let mut s = GaussianSampler::new(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| s.sample()).collect();
        let mean = vector::mean(&xs);
        let var = vector::variance(&xs);
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
        // Skewness ~ 0, |P(X>0) - 0.5| small.
        let pos = xs.iter().filter(|&&x| x > 0.0).count() as f64 / n as f64;
        assert!((pos - 0.5).abs() < 0.01);
    }

    #[test]
    fn tail_mass_is_normal_like() {
        let mut s = GaussianSampler::new(2);
        let n = 200_000;
        let beyond2 = (0..n).filter(|_| s.sample().abs() > 2.0).count() as f64 / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((beyond2 - 0.0455).abs() < 0.006, "tail={beyond2}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<f64> = {
            let mut s = GaussianSampler::new(7);
            (0..32).map(|_| s.sample()).collect()
        };
        let b: Vec<f64> = {
            let mut s = GaussianSampler::new(7);
            (0..32).map(|_| s.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn factor_sampling_has_target_covariance() {
        // W rows: unit vectors at 60° — covariance (Gram) has 0.5 off-diag.
        let w = DMatrix::from_rows(&[&[1.0, 0.0], &[0.5, 3.0f64.sqrt() / 2.0]]);
        let mut s = GaussianSampler::new(3);
        let mut g = vec![0.0; 2];
        let mut x = vec![0.0; 2];
        let n = 100_000;
        let (mut c00, mut c01, mut c11) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            s.correlated_from_factor_into(&w, &mut g, &mut x);
            c00 += x[0] * x[0];
            c01 += x[0] * x[1];
            c11 += x[1] * x[1];
        }
        let nf = n as f64;
        assert!((c00 / nf - 1.0).abs() < 0.03);
        assert!((c11 / nf - 1.0).abs() < 0.03);
        assert!((c01 / nf - 0.5).abs() < 0.03);
    }
}
