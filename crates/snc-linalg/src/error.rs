//! Error types for linear-algebra operations.

use std::fmt;

/// Errors from decomposition, eigensolver, and SDP routines.
#[derive(Clone, Debug, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// A matrix required to be positive definite was not.
    NotPositiveDefinite {
        /// Index of the first failing pivot.
        pivot: usize,
    },
    /// An iterative method did not reach the requested tolerance.
    NotConverged {
        /// Name of the method.
        method: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Residual at termination.
        residual: f64,
    },
    /// An argument was invalid (zero rank, empty matrix, …).
    InvalidArgument(&'static str),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, expected, actual } => {
                write!(f, "{op}: dimension mismatch (expected {expected}, got {actual})")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NotConverged { method, iterations, residual } => {
                write!(f, "{method} did not converge after {iterations} iterations (residual {residual:.3e})")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::NotConverged { method: "lanczos", iterations: 10, residual: 1e-3 };
        let s = e.to_string();
        assert!(s.contains("lanczos") && s.contains("10"));
        assert!(LinalgError::NotPositiveDefinite { pivot: 2 }.to_string().contains("pivot 2"));
    }
}
