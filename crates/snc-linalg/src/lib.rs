//! Dense linear algebra substrate for the MAXCUT reproduction.
//!
//! The paper needs three pieces of numerical machinery:
//!
//! 1. **Goemans–Williamson SDP** (§II.A): solved here with a low-rank
//!    Burer–Monteiro factorization optimized by Riemannian projected
//!    gradient descent on a product of unit spheres ([`sdp`]). This plays
//!    the role of the generic PyManOpt solver in the paper, which optimizes
//!    the same manifold formulation. The rank is fixed (4 in the paper).
//! 2. **Minimum eigenvector of the Trevisan matrix** (§II.B): extreme
//!    eigenpairs via Lanczos with full reorthogonalization ([`eigen`]),
//!    plus dense Jacobi and power-iteration fallbacks used for testing and
//!    small systems.
//! 3. **Gaussian sampling with prescribed covariance** (§II.A, the
//!    Bertsimas–Ye rounding): [`gaussian`] provides a polar Box–Muller
//!    sampler and factor-based correlated sampling `x = W·g`.
//!
//! All matrix storage is plain `Vec<f64>` row-major; operations follow the
//! HPC guidance of the workspace (preallocate, write into caller buffers in
//! hot paths, iterate rather than index).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cholesky;
pub mod dense;
pub mod eigen;
pub mod error;
pub mod gaussian;
pub mod sdp;
pub mod vector;

pub use cholesky::Cholesky;
pub use dense::DMatrix;
pub use eigen::{EigenPair, LinOp, Which};
pub use error::LinalgError;
pub use gaussian::GaussianSampler;
pub use sdp::{solve_maxcut_sdp, SdpConfig, SdpSolution};
