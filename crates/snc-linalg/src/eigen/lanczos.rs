//! Lanczos iteration with full reorthogonalization and Ritz restarts.
//!
//! The production eigensolver for the Trevisan path: finds the largest
//! eigenpair of a symmetric operator (callers shift to reach the smallest
//! end). Full reorthogonalization keeps the Krylov basis numerically
//! orthogonal — the classic Lanczos failure mode is ghost eigenvalues from
//! lost orthogonality, unacceptable here because the spectral cut depends
//! on eigen*vector* quality, not just the eigenvalue.

use super::jacobi::symmetric_eigen;
use super::power::random_unit;
use super::{EigenConfig, EigenPair, LinOp};
use crate::dense::DMatrix;
use crate::error::LinalgError;
use crate::vector;

/// Finds the algebraically largest eigenpair of a symmetric operator.
///
/// Restarted Lanczos: builds a Krylov subspace of dimension at most
/// `cfg.max_subspace`, diagonalizes the projected tridiagonal matrix, and
/// restarts from the best Ritz vector until the residual
/// `‖A v − λ v‖ ≤ cfg.tol`.
///
/// # Errors
///
/// [`LinalgError::NotConverged`] after `cfg.max_restarts` cycles;
/// [`LinalgError::InvalidArgument`] for an empty operator.
pub fn lanczos_largest(op: &dyn LinOp, cfg: &EigenConfig) -> Result<EigenPair, LinalgError> {
    let n = op.dim();
    if n == 0 {
        return Err(LinalgError::InvalidArgument("operator dimension is zero"));
    }
    let m = cfg.max_subspace.clamp(2, n.max(2));

    let mut start = vec![0.0; n];
    random_unit(&mut start, cfg.seed);

    let mut best_residual = f64::INFINITY;
    let mut best: Option<EigenPair> = None;

    for restart in 0..cfg.max_restarts.max(1) {
        let (ritz_value, ritz_vector, residual) = lanczos_cycle(op, &start, m)?;
        if residual < best_residual {
            best_residual = residual;
            best = Some(EigenPair {
                value: ritz_value,
                vector: ritz_vector.clone(),
                residual,
            });
        }
        if residual <= cfg.tol {
            return Ok(best.expect("just set"));
        }
        start = ritz_vector;
        let _ = restart;
    }
    Err(LinalgError::NotConverged {
        method: "lanczos",
        iterations: cfg.max_restarts,
        residual: best_residual,
    })
}

/// One Lanczos build-and-extract cycle.
///
/// Returns `(ritz value, ritz vector, residual)` for the largest Ritz pair.
fn lanczos_cycle(
    op: &dyn LinOp,
    start: &[f64],
    m: usize,
) -> Result<(f64, Vec<f64>, f64), LinalgError> {
    let n = op.dim();
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);

    let mut q = start.to_vec();
    if vector::normalize(&mut q) == 0.0 {
        random_unit(&mut q, 0xF00D);
    }
    let mut w = vec![0.0; n];

    for j in 0..m {
        op.apply(&q, &mut w);
        let alpha = vector::dot(&q, &w);
        // w ← w − α q − β q_{j−1}
        vector::axpy(-alpha, &q, &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            vector::axpy(-beta_prev, &basis[j - 1], &mut w);
        }
        // Full reorthogonalization (two passes of modified Gram-Schmidt
        // against the whole basis, including q itself).
        for _ in 0..2 {
            for b in &basis {
                vector::orthogonalize_against(&mut w, b);
            }
            vector::orthogonalize_against(&mut w, &q);
        }
        alphas.push(alpha);
        basis.push(std::mem::take(&mut q));

        let beta = vector::norm(&w);
        if j + 1 == m || beta < 1e-12 {
            // Subspace complete (or invariant subspace found).
            if j + 1 < m {
                betas.push(0.0);
            }
            break;
        }
        betas.push(beta);
        q = w.clone();
        vector::scale(&mut q, 1.0 / beta);
    }

    let k = alphas.len();
    // Projected tridiagonal matrix T.
    let t = DMatrix::from_fn(k, k, |i, j| {
        if i == j {
            alphas[i]
        } else if j == i + 1 || i == j + 1 {
            betas[i.min(j)]
        } else {
            0.0
        }
    });
    let (tvals, tvecs) = symmetric_eigen(&t)?;
    // Largest Ritz pair is the last column.
    let ritz_value = tvals[k - 1];
    let mut ritz_vector = vec![0.0; n];
    for (i, b) in basis.iter().enumerate() {
        vector::axpy(tvecs[(i, k - 1)], b, &mut ritz_vector);
    }
    vector::normalize(&mut ritz_vector);

    // Exact residual (one extra matvec; worth it for a trustworthy stop).
    let mut av = vec![0.0; n];
    op.apply(&ritz_vector, &mut av);
    let mut res = 0.0f64;
    for (a, v) in av.iter().zip(&ritz_vector) {
        let d = a - ritz_value * v;
        res += d * d;
    }
    Ok((ritz_value, ritz_vector, res.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::jacobi::symmetric_eigen;

    fn random_symmetric(n: usize, seed: u64) -> DMatrix {
        use snc_devices::{Rng64, Xoshiro256pp};
        let mut rng = Xoshiro256pp::new(seed);
        let mut a = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = rng.next_f64() * 2.0 - 1.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn matches_jacobi_on_random_matrices() {
        for seed in 1..5u64 {
            let a = random_symmetric(30, seed);
            let (vals, _) = symmetric_eigen(&a).unwrap();
            let expect = vals[vals.len() - 1];
            let cfg = EigenConfig { seed, ..EigenConfig::default() };
            let p = lanczos_largest(&a, &cfg).unwrap();
            assert!(
                (p.value - expect).abs() < 1e-6,
                "seed={seed} got={} expect={expect}",
                p.value
            );
        }
    }

    #[test]
    fn subspace_smaller_than_matrix_still_converges() {
        let a = random_symmetric(60, 9);
        let cfg = EigenConfig {
            max_subspace: 12,
            max_restarts: 400,
            ..EigenConfig::default()
        };
        let p = lanczos_largest(&a, &cfg).unwrap();
        let (vals, _) = symmetric_eigen(&a).unwrap();
        assert!((p.value - vals[vals.len() - 1]).abs() < 1e-6);
    }

    #[test]
    fn handles_low_rank_operator() {
        // Rank-1 matrix u uᵀ with ‖u‖² = 14: λmax = 14, everything else 0.
        let u = [1.0, 2.0, 3.0];
        let a = DMatrix::from_fn(3, 3, |i, j| u[i] * u[j]);
        let p = lanczos_largest(&a, &EigenConfig::default()).unwrap();
        assert!((p.value - 14.0).abs() < 1e-8);
        assert!(vector::alignment(&p.vector, &u) > 0.999_999);
    }

    #[test]
    fn eigenvector_quality() {
        let a = random_symmetric(25, 33);
        let p = lanczos_largest(&a, &EigenConfig::default()).unwrap();
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        let k = vals.len() - 1;
        let reference: Vec<f64> = (0..25).map(|i| vecs[(i, k)]).collect();
        assert!(vector::alignment(&p.vector, &reference) > 0.999_99);
    }
}
