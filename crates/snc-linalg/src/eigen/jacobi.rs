//! Cyclic Jacobi eigendecomposition for dense symmetric matrices.
//!
//! Quadratically convergent, unconditionally stable, and simple enough to
//! trust as the reference solver: Lanczos' projected tridiagonal systems
//! and every unit test in the workspace validate against it. `O(n³)` per
//! sweep, perfectly adequate for the `n ≤ 700` graphs in the paper.

use crate::dense::DMatrix;
use crate::error::LinalgError;

/// Full eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted ascending
/// and eigenvectors as the *columns* of the returned matrix, in matching
/// order. The decomposition satisfies `A = V diag(λ) Vᵀ`.
///
/// # Errors
///
/// * [`LinalgError::InvalidArgument`] if `a` is not square or not symmetric.
/// * [`LinalgError::NotConverged`] if off-diagonal mass fails to vanish
///   (practically unreachable for finite inputs).
pub fn symmetric_eigen(a: &DMatrix) -> Result<(Vec<f64>, DMatrix), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::InvalidArgument("jacobi requires a square matrix"));
    }
    if !a.is_symmetric(1e-9 * (1.0 + a.frobenius())) {
        return Err(LinalgError::InvalidArgument("jacobi requires a symmetric matrix"));
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = DMatrix::identity(n);
    let max_sweeps = 100;

    for _sweep in 0..max_sweeps {
        let off = off_diagonal_norm(&m);
        if off < 1e-13 * (1.0 + m.frobenius()) {
            return Ok(sorted_pairs(m, v));
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // tan of the rotation angle, the numerically stable form.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                rotate(&mut m, &mut v, p, q, c, s);
            }
        }
    }
    Err(LinalgError::NotConverged {
        method: "jacobi",
        iterations: max_sweeps,
        residual: off_diagonal_norm(&m),
    })
}

/// Applies the Jacobi rotation `J(p, q, θ)` as `m ← Jᵀ m J`, `v ← v J`.
fn rotate(m: &mut DMatrix, v: &mut DMatrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    for k in 0..n {
        let mkp = m[(k, p)];
        let mkq = m[(k, q)];
        m[(k, p)] = c * mkp - s * mkq;
        m[(k, q)] = s * mkp + c * mkq;
    }
    for k in 0..n {
        let mpk = m[(p, k)];
        let mqk = m[(q, k)];
        m[(p, k)] = c * mpk - s * mqk;
        m[(q, k)] = s * mpk + c * mqk;
    }
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

fn off_diagonal_norm(m: &DMatrix) -> f64 {
    let n = m.rows();
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                acc += m[(i, j)] * m[(i, j)];
            }
        }
    }
    acc.sqrt()
}

/// Sorts eigenpairs ascending by eigenvalue.
fn sorted_pairs(m: DMatrix, v: DMatrix) -> (Vec<f64>, DMatrix) {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let values: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite eigenvalues"));
    let sorted_values: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let sorted_vectors = DMatrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    (sorted_values, sorted_vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = DMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        assert_eq!(vals, vec![1.0, 3.0]);
        // Columns are unit coordinate vectors (up to sign).
        assert!(vecs[(1, 0)].abs() > 0.999);
        assert!(vecs[(0, 1)].abs() > 0.999);
    }

    #[test]
    fn known_2x2() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, _) = symmetric_eigen(&a).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        // A fixed symmetric 5x5.
        let a = DMatrix::from_fn(5, 5, |i, j| {
            let (i, j) = (i.min(j), i.max(j));
            ((i * 5 + j) as f64 * 0.37).sin() + if i == j { 3.0 } else { 0.0 }
        });
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        // V diag(λ) Vᵀ = A.
        let lam = DMatrix::from_fn(5, 5, |i, j| if i == j { vals[i] } else { 0.0 });
        let recon = vecs
            .matmul(&lam)
            .unwrap()
            .matmul(&vecs.transpose())
            .unwrap();
        assert!(recon.max_abs_diff(&a) < 1e-10);
        // VᵀV = I.
        let vtv = vecs.transpose().matmul(&vecs).unwrap();
        assert!(vtv.max_abs_diff(&DMatrix::identity(5)) < 1e-12);
        // Eigenvalues ascending.
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-14);
        }
    }

    #[test]
    fn eigenvector_residuals() {
        let a = DMatrix::from_rows(&[
            &[4.0, 1.0, -0.5],
            &[1.0, 3.0, 0.25],
            &[-0.5, 0.25, 2.0],
        ]);
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        for (k, &lambda) in vals.iter().enumerate() {
            let v: Vec<f64> = (0..3).map(|i| vecs[(i, k)]).collect();
            let av = a.matvec(&v);
            let mut res = 0.0f64;
            for (x, y) in av.iter().zip(&v) {
                res += (x - lambda * y).powi(2);
            }
            assert!(res.sqrt() < 1e-11, "residual for λ={lambda}");
            assert!((vector::norm(&v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_and_det_invariants() {
        let a = DMatrix::from_rows(&[&[5.0, 2.0], &[2.0, 1.0]]);
        let (vals, _) = symmetric_eigen(&a).unwrap();
        assert!((vals.iter().sum::<f64>() - 6.0).abs() < 1e-12); // trace
        assert!((vals[0] * vals[1] - 1.0).abs() < 1e-12); // det = 5-4
    }

    #[test]
    fn rejects_asymmetric() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(symmetric_eigen(&a).is_err());
        assert!(symmetric_eigen(&DMatrix::zeros(2, 3)).is_err());
    }
}
