//! Power iteration.
//!
//! Used (a) as a simple baseline eigensolver for testing Lanczos, and
//! (b) to cheaply estimate spectral norms for the shift-and-invert-free
//! "smallest eigenvalue" path in [`super::extreme_eigenpair`].

use super::{EigenPair, LinOp};
use crate::error::LinalgError;
use crate::vector;
use snc_devices::{Rng64, Xoshiro256pp};

/// Fills `v` with a random unit vector.
pub(crate) fn random_unit(v: &mut [f64], seed: u64) {
    let mut rng = Xoshiro256pp::new(seed);
    for x in v.iter_mut() {
        *x = rng.next_f64() - 0.5;
    }
    if vector::normalize(v) == 0.0 {
        v[0] = 1.0;
    }
}

/// Estimates the dominant eigenpair (largest `|λ|`) by power iteration.
///
/// # Errors
///
/// Returns [`LinalgError::NotConverged`] if the residual does not fall
/// below `tol` within `max_iters` iterations, and
/// [`LinalgError::InvalidArgument`] for an empty operator.
pub fn dominant_eigenpair(
    op: &dyn LinOp,
    max_iters: usize,
    tol: f64,
    seed: u64,
) -> Result<EigenPair, LinalgError> {
    let n = op.dim();
    if n == 0 {
        return Err(LinalgError::InvalidArgument("operator dimension is zero"));
    }
    let mut v = vec![0.0; n];
    random_unit(&mut v, seed);
    let mut av = vec![0.0; n];
    let mut lambda = 0.0;
    for it in 0..max_iters {
        op.apply(&v, &mut av);
        lambda = vector::dot(&v, &av); // Rayleigh quotient (‖v‖ = 1)
        // residual = ‖Av − λv‖
        let mut res = 0.0f64;
        for (a, b) in av.iter().zip(&v) {
            let d = a - lambda * b;
            res += d * d;
        }
        let res = res.sqrt();
        if res <= tol {
            return Ok(EigenPair {
                value: lambda,
                vector: v,
                residual: res,
            });
        }
        std::mem::swap(&mut v, &mut av);
        if vector::normalize(&mut v) == 0.0 {
            // A v = 0: v is an eigenvector with eigenvalue 0.
            std::mem::swap(&mut v, &mut av);
            return Ok(EigenPair {
                value: 0.0,
                vector: v,
                residual: 0.0,
            });
        }
        let _ = it;
    }
    Err(LinalgError::NotConverged {
        method: "power iteration",
        iterations: max_iters,
        residual: {
            op.apply(&v, &mut av);
            let mut res = 0.0f64;
            for (a, b) in av.iter().zip(&v) {
                let d = a - lambda * b;
                res += d * d;
            }
            res.sqrt()
        },
    })
}

/// A quick over-estimate of the spectral norm `‖A‖₂` of a symmetric
/// operator: runs a fixed number of power iterations and inflates the final
/// Rayleigh quotient by the residual, giving a value `≥ λ_max` up to the
/// iteration's accuracy. Never fails; accuracy grows with `iters`.
pub fn spectral_norm_estimate(op: &dyn LinOp, iters: usize, seed: u64) -> f64 {
    let n = op.dim();
    if n == 0 {
        return 0.0;
    }
    let mut v = vec![0.0; n];
    random_unit(&mut v, seed);
    let mut av = vec![0.0; n];
    let mut norm_est = 0.0f64;
    for _ in 0..iters.max(1) {
        op.apply(&v, &mut av);
        let growth = vector::norm(&av);
        norm_est = norm_est.max(growth);
        std::mem::swap(&mut v, &mut av);
        if vector::normalize(&mut v) == 0.0 {
            return norm_est;
        }
    }
    // |Rayleigh| + residual is a rigorous upper bound on the distance to the
    // nearest eigenvalue; add it for safety.
    op.apply(&v, &mut av);
    let lambda = vector::dot(&v, &av);
    let mut res = 0.0f64;
    for (a, b) in av.iter().zip(&v) {
        let d = a - lambda * b;
        res += d * d;
    }
    norm_est.max(lambda.abs() + res.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DMatrix;

    #[test]
    fn finds_dominant_of_diagonal() {
        let a = DMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 9.0]]);
        let p = dominant_eigenpair(&a, 500, 1e-10, 1).unwrap();
        assert!((p.value - 9.0).abs() < 1e-8);
        assert!(p.vector[1].abs() > 0.9999);
    }

    #[test]
    fn dominant_negative_eigenvalue() {
        let a = DMatrix::from_rows(&[&[-5.0, 0.0], &[0.0, 2.0]]);
        let p = dominant_eigenpair(&a, 2000, 1e-9, 2).unwrap();
        assert!((p.value + 5.0).abs() < 1e-7, "value={}", p.value);
    }

    #[test]
    fn zero_operator_returns_zero() {
        let a = DMatrix::zeros(3, 3);
        let p = dominant_eigenpair(&a, 10, 1e-12, 3).unwrap();
        assert_eq!(p.value, 0.0);
    }

    #[test]
    fn norm_estimate_bounds_lambda_max() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]); // λmax = 3
        let est = spectral_norm_estimate(&a, 50, 4);
        assert!(est >= 3.0 - 1e-9, "est={est}");
        assert!(est <= 3.5, "est={est}");
    }

    #[test]
    fn nonconvergence_reported() {
        // Two equal dominant |λ| of opposite sign make power iteration
        // oscillate forever: [[0,1],[1,0]] has λ = ±1.
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let r = dominant_eigenpair(&a, 50, 1e-12, 5);
        assert!(matches!(r, Err(LinalgError::NotConverged { .. })));
    }
}
