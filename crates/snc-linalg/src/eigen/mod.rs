//! Symmetric eigensolvers.
//!
//! Three routes, matched to the three places the paper needs spectra:
//!
//! * [`jacobi`] — dense cyclic Jacobi, the gold standard for the small and
//!   moderate matrices used in tests and for diagonalizing Lanczos'
//!   tridiagonal projections.
//! * [`power`] — power iteration with Rayleigh-quotient estimates; used to
//!   bound spectra for shifting and as a simple, easily verified baseline.
//! * [`lanczos`] — Lanczos with full reorthogonalization and thick restart
//!   from the best Ritz vector; the production path for the Trevisan
//!   minimum-eigenvector computation on graphs (matrix-free through
//!   [`LinOp`]).

pub mod jacobi;
pub mod lanczos;
pub mod power;

use crate::error::LinalgError;

/// A symmetric linear operator `y = A x`, possibly matrix-free.
///
/// Graph operators (adjacency, normalized adjacency, Trevisan matrix) are
/// implemented against this trait in `snc-graph` so eigensolvers never
/// densify large graphs.
pub trait LinOp {
    /// Dimension `n` of the operator.
    fn dim(&self) -> usize;
    /// Computes `y = A x`. Implementations must not read `y`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl LinOp for crate::dense::DMatrix {
    fn dim(&self) -> usize {
        self.rows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

/// Which end of the spectrum to target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Which {
    /// The algebraically largest eigenvalue.
    Largest,
    /// The algebraically smallest eigenvalue.
    Smallest,
}

/// An (eigenvalue, eigenvector) pair with a residual estimate.
#[derive(Clone, Debug)]
pub struct EigenPair {
    /// The eigenvalue.
    pub value: f64,
    /// The unit-norm eigenvector.
    pub vector: Vec<f64>,
    /// `‖A v − λ v‖` at termination.
    pub residual: f64,
}

/// Configuration for the iterative eigensolvers.
#[derive(Clone, Copy, Debug)]
pub struct EigenConfig {
    /// Maximum Lanczos subspace dimension per restart cycle.
    pub max_subspace: usize,
    /// Maximum number of restart cycles.
    pub max_restarts: usize,
    /// Residual tolerance `‖A v − λ v‖ ≤ tol`.
    pub tol: f64,
    /// Seed for the random start vector.
    pub seed: u64,
}

impl Default for EigenConfig {
    fn default() -> Self {
        Self {
            max_subspace: 64,
            max_restarts: 200,
            tol: 1e-8,
            seed: 0x5eed,
        }
    }
}

/// Computes an extreme eigenpair of a symmetric operator.
///
/// `Largest` runs Lanczos directly. `Smallest` first estimates an upper
/// bound `σ ≥ λ_max` with a short power iteration, then finds the largest
/// eigenpair of the shifted operator `σI − A` and maps it back — this keeps
/// Lanczos working on the well-separated end of the spectrum, exactly the
/// trick needed for the Trevisan matrix whose spectrum lies in `[0, 2]`.
///
/// # Errors
///
/// Returns [`LinalgError::NotConverged`] if the residual tolerance is not
/// reached, and [`LinalgError::InvalidArgument`] for a zero-dimensional
/// operator.
pub fn extreme_eigenpair(
    op: &dyn LinOp,
    which: Which,
    cfg: &EigenConfig,
) -> Result<EigenPair, LinalgError> {
    let n = op.dim();
    if n == 0 {
        return Err(LinalgError::InvalidArgument("operator dimension is zero"));
    }
    if n == 1 {
        let mut y = [0.0];
        op.apply(&[1.0], &mut y);
        return Ok(EigenPair {
            value: y[0],
            vector: vec![1.0],
            residual: 0.0,
        });
    }
    match which {
        Which::Largest => lanczos::lanczos_largest(op, cfg),
        Which::Smallest => {
            // Conservative bound: ‖A‖₂ ≤ λ via power iteration estimate,
            // inflated by a safety margin.
            let bound = power::spectral_norm_estimate(op, 40, cfg.seed ^ 0xABCD);
            let sigma = bound * 1.05 + 1e-6;
            let shifted = Shifted { op, sigma };
            let pair = lanczos::lanczos_largest(&shifted, cfg)?;
            let mut residual_vec = vec![0.0; n];
            op.apply(&pair.vector, &mut residual_vec);
            let value = sigma - pair.value;
            let mut res = 0.0f64;
            for (r, v) in residual_vec.iter().zip(&pair.vector) {
                let d = r - value * v;
                res += d * d;
            }
            Ok(EigenPair {
                value,
                vector: pair.vector,
                residual: res.sqrt(),
            })
        }
    }
}

/// The operator `σI − A`.
struct Shifted<'a> {
    op: &'a dyn LinOp,
    sigma: f64,
}

impl LinOp for Shifted<'_> {
    fn dim(&self) -> usize {
        self.op.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.op.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = self.sigma * xi - *yi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DMatrix;

    fn diag(values: &[f64]) -> DMatrix {
        let n = values.len();
        DMatrix::from_fn(n, n, |i, j| if i == j { values[i] } else { 0.0 })
    }

    #[test]
    fn largest_of_diagonal() {
        let a = diag(&[1.0, 5.0, 3.0, -2.0]);
        let p = extreme_eigenpair(&a, Which::Largest, &EigenConfig::default()).unwrap();
        assert!((p.value - 5.0).abs() < 1e-7, "value={}", p.value);
        assert!(p.vector[1].abs() > 0.999);
    }

    #[test]
    fn smallest_of_diagonal() {
        let a = diag(&[1.0, 5.0, 3.0, -2.0]);
        let p = extreme_eigenpair(&a, Which::Smallest, &EigenConfig::default()).unwrap();
        assert!((p.value + 2.0).abs() < 1e-6, "value={}", p.value);
        assert!(p.vector[3].abs() > 0.999);
    }

    #[test]
    fn one_dimensional_operator() {
        let a = diag(&[7.5]);
        let p = extreme_eigenpair(&a, Which::Largest, &EigenConfig::default()).unwrap();
        assert_eq!(p.value, 7.5);
        assert_eq!(p.vector, vec![1.0]);
    }

    #[test]
    fn dense_symmetric_known_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let hi = extreme_eigenpair(&a, Which::Largest, &EigenConfig::default()).unwrap();
        let lo = extreme_eigenpair(&a, Which::Smallest, &EigenConfig::default()).unwrap();
        assert!((hi.value - 3.0).abs() < 1e-8);
        assert!((lo.value - 1.0).abs() < 1e-6);
        // Eigenvectors are (1,1)/√2 and (1,-1)/√2.
        assert!((hi.vector[0] - hi.vector[1]).abs() < 1e-5);
        assert!((lo.vector[0] + lo.vector[1]).abs() < 1e-5);
    }

    #[test]
    fn residuals_are_small() {
        let a = DMatrix::from_rows(&[
            &[4.0, 1.0, 0.0],
            &[1.0, 3.0, 1.0],
            &[0.0, 1.0, 2.0],
        ]);
        let p = extreme_eigenpair(&a, Which::Largest, &EigenConfig::default()).unwrap();
        assert!(p.residual < 1e-7, "residual={}", p.residual);
    }
}
