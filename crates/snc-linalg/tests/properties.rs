//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use snc_linalg::eigen::jacobi::symmetric_eigen;
use snc_linalg::{sdp, vector, Cholesky, DMatrix, GaussianSampler, SdpConfig};

/// Strategy: a random symmetric matrix with bounded entries.
fn symmetric(n: usize) -> impl Strategy<Value = DMatrix> {
    proptest::collection::vec(-1.0f64..1.0, n * (n + 1) / 2).prop_map(move |tri| {
        let mut m = DMatrix::zeros(n, n);
        let mut it = tri.into_iter();
        for i in 0..n {
            for j in i..n {
                let v = it.next().expect("enough entries");
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Jacobi reconstructs: V·diag(λ)·Vᵀ = A, VᵀV = I, trace preserved.
    #[test]
    fn jacobi_reconstruction(a in symmetric(5)) {
        let (vals, vecs) = symmetric_eigen(&a).expect("jacobi converges");
        let lam = DMatrix::from_fn(5, 5, |i, j| if i == j { vals[i] } else { 0.0 });
        let recon = vecs.matmul(&lam).unwrap().matmul(&vecs.transpose()).unwrap();
        prop_assert!(recon.max_abs_diff(&a) < 1e-9);
        let trace: f64 = (0..5).map(|i| a[(i, i)]).sum();
        prop_assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-9);
        // Sorted ascending.
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    /// Cholesky of A = BBᵀ + I round-trips and solves.
    #[test]
    fn cholesky_properties(b in symmetric(4)) {
        let a = b.matmul(&b.transpose()).unwrap().add_scaled_identity(1.0);
        let ch = Cholesky::new(&a).expect("SPD by construction");
        prop_assert!(ch.reconstruct().max_abs_diff(&a) < 1e-9);
        let rhs = [1.0, 2.0, -0.5, 0.25];
        let x = ch.solve(&rhs).unwrap();
        let ax = a.matvec(&x);
        for (u, v) in ax.iter().zip(&rhs) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    /// Gaussian sampler: moments of W·g match the Gram matrix diagonal.
    #[test]
    fn factor_sampling_variance(scale in 0.2f64..2.0, seed in any::<u64>()) {
        let w = DMatrix::from_rows(&[&[scale, 0.0], &[0.0, 2.0 * scale]]);
        let mut s = GaussianSampler::new(seed);
        let mut g = vec![0.0; 2];
        let mut x = vec![0.0; 2];
        let n = 20_000;
        let (mut v0, mut v1) = (0.0, 0.0);
        for _ in 0..n {
            s.correlated_from_factor_into(&w, &mut g, &mut x);
            v0 += x[0] * x[0];
            v1 += x[1] * x[1];
        }
        let nf = n as f64;
        prop_assert!((v0 / nf - scale * scale).abs() < 0.12 * scale * scale + 0.01);
        prop_assert!((v1 / nf - 4.0 * scale * scale).abs() < 0.12 * 4.0 * scale * scale + 0.01);
    }

    /// SDP solutions always have unit rows and respect the trivial energy
    /// bounds −Σ|w| ≤ E ≤ Σ|w|.
    #[test]
    fn sdp_feasibility(edge_bits in proptest::collection::vec(any::<bool>(), 10), seed in 0u64..50) {
        // Edges over K5 chosen by the bit mask.
        let all: Vec<(u32, u32)> = (0..5u32)
            .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
            .collect();
        let edges: Vec<(u32, u32)> = all
            .iter()
            .zip(&edge_bits)
            .filter(|(_, &b)| b)
            .map(|(&e, _)| e)
            .collect();
        let cfg = SdpConfig { seed, max_iters: 500, ..SdpConfig::default() };
        let sol = sdp::solve_maxcut_sdp(5, &edges, &cfg).expect("solves");
        for i in 0..5 {
            prop_assert!((vector::norm(sol.factors.row(i)) - 1.0).abs() < 1e-8);
        }
        let w_total = edges.len() as f64;
        prop_assert!(sol.energy >= -w_total - 1e-9);
        prop_assert!(sol.energy <= w_total + 1e-9);
        // The implied cut bound is at least half the edges (random cut).
        if !edges.is_empty() {
            prop_assert!(sol.cut_upper_bound(w_total) >= w_total / 2.0 - 1e-6);
        }
    }

    /// Matrix multiplication is associative on small random matrices.
    #[test]
    fn matmul_associative(a in symmetric(3), b in symmetric(3), c in symmetric(3)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }
}
