//! The `snc-server` binary: bind, print the address, serve until killed.
//!
//! ```text
//! snc-server [--addr HOST:PORT] [--threads N] [--replicas N]
//!            [--queue-depth N] [--store-capacity N]
//! ```
//!
//! `--threads`, `--replicas`, `--queue-depth`, and `--store-capacity`
//! must be ≥ 1 (0 is rejected with an error, matching the experiment
//! binaries). `--addr` with port 0 binds an ephemeral port; the actual
//! address is printed on startup.

use snc_experiments::config::parse_positive;
use snc_server::{serve, ServerConfig};

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                cfg.addr = it.next().ok_or("--addr needs a HOST:PORT value")?.clone();
            }
            "--threads" => cfg.threads = parse_positive(it.next(), "--threads")?,
            "--replicas" => cfg.replicas = parse_positive(it.next(), "--replicas")?,
            "--queue-depth" => cfg.queue_depth = parse_positive(it.next(), "--queue-depth")?,
            "--store-capacity" => {
                cfg.store_capacity = parse_positive(it.next(), "--store-capacity")?;
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}`\nusage: snc-server [--addr HOST:PORT] [--threads N] \
                     [--replicas N] [--queue-depth N] [--store-capacity N]"
                ));
            }
        }
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let (threads, replicas, queue_depth) = (cfg.threads, cfg.replicas, cfg.queue_depth);
    let handle = match serve(cfg) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "snc-server listening on {} ({threads} solver threads, replica width {replicas}, queue depth {queue_depth})",
        handle.addr()
    );
    handle.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides() {
        let cfg = parse_args(&[]).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:7878");
        let cfg = parse_args(&strs(&[
            "--addr", "0.0.0.0:9000", "--threads", "2", "--replicas", "8",
            "--queue-depth", "16", "--store-capacity", "32",
        ]))
        .unwrap();
        assert_eq!(cfg.addr, "0.0.0.0:9000");
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.replicas, 8);
        assert_eq!(cfg.queue_depth, 16);
        assert_eq!(cfg.store_capacity, 32);
    }

    #[test]
    fn rejects_zero_and_unknown_flags() {
        for flag in ["--threads", "--replicas", "--queue-depth", "--store-capacity"] {
            let err = parse_args(&strs(&[flag, "0"])).unwrap_err();
            assert!(err.contains("must be ≥ 1"), "{flag}: {err}");
        }
        assert!(parse_args(&strs(&["--bogus"])).is_err());
        assert!(parse_args(&strs(&["--addr"])).is_err());
    }
}
