//! The `snc-server` binary: bind, print the address, serve until killed.
//!
//! ```text
//! snc-server [--addr HOST:PORT] [--threads N] [--replicas N]
//!            [--queue-depth N] [--store-capacity N]
//!            [--sdp-cache-entries N] [--response-cache-bytes N]
//!            [--max-connections N] [--idle-timeout-ms N]
//!            [--access-log PATH] [--access-log-max-bytes N]
//! ```
//!
//! `--threads`, `--replicas`, `--queue-depth`, `--store-capacity`,
//! `--max-connections`, and `--idle-timeout-ms` must be ≥ 1 (0 is
//! rejected with an error, matching the experiment binaries). The cache
//! flags accept 0, which *disables* the cache in question
//! (`--sdp-cache-entries 0 --response-cache-bytes 0` reproduces the
//! uncached PR-4 request path bit for bit). `--max-connections` is the
//! reactor's connection budget (overflow accepts are shed with a fast
//! 503); `--idle-timeout-ms` is the per-request-cycle idle deadline the
//! reaper enforces. `--addr` with port 0 binds an ephemeral port; the
//! actual address is printed on startup. `--access-log PATH` appends
//! one structured line per routed request (request id, route, family,
//! cache outcome, status, elapsed µs) to PATH; omitted means no log.
//! `--access-log-max-bytes N` rotates the log (rename to `PATH.1`,
//! reopen) whenever it would grow past N bytes; 0 (the default)
//! disables rotation.

use snc_experiments::config::parse_positive;
use snc_server::{serve, ServerConfig};

/// Parses a non-negative flag value (0 is legal — it means "disabled"
/// for the cache flags, unlike the ≥ 1 knobs handled by
/// [`parse_positive`]).
fn parse_size(value: Option<&String>, flag: &str) -> Result<usize, String> {
    value
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag} must be a non-negative integer"))
}

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                cfg.addr = it.next().ok_or("--addr needs a HOST:PORT value")?.clone();
            }
            "--threads" => cfg.threads = parse_positive(it.next(), "--threads")?,
            "--replicas" => cfg.replicas = parse_positive(it.next(), "--replicas")?,
            "--queue-depth" => cfg.queue_depth = parse_positive(it.next(), "--queue-depth")?,
            "--store-capacity" => {
                cfg.store_capacity = parse_positive(it.next(), "--store-capacity")?;
            }
            "--sdp-cache-entries" => {
                cfg.sdp_cache_entries = parse_size(it.next(), "--sdp-cache-entries")?;
            }
            "--response-cache-bytes" => {
                cfg.response_cache_bytes = parse_size(it.next(), "--response-cache-bytes")?;
            }
            "--max-connections" => {
                cfg.max_connections = parse_positive(it.next(), "--max-connections")?;
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout_ms = parse_positive(it.next(), "--idle-timeout-ms")? as u64;
            }
            "--access-log" => {
                cfg.access_log = Some(it.next().ok_or("--access-log needs a PATH value")?.clone());
            }
            "--access-log-max-bytes" => {
                cfg.access_log_max_bytes = parse_size(it.next(), "--access-log-max-bytes")? as u64;
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}`\nusage: snc-server [--addr HOST:PORT] [--threads N] \
                     [--replicas N] [--queue-depth N] [--store-capacity N] \
                     [--sdp-cache-entries N] [--response-cache-bytes N] \
                     [--max-connections N] [--idle-timeout-ms N] [--access-log PATH] \
                     [--access-log-max-bytes N]"
                ));
            }
        }
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let (threads, replicas, queue_depth) = (cfg.threads, cfg.replicas, cfg.queue_depth);
    let handle = match serve(cfg) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "snc-server listening on {} ({threads} solver threads, replica width {replicas}, queue depth {queue_depth})",
        handle.addr()
    );
    handle.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides() {
        let cfg = parse_args(&[]).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:7878");
        assert_eq!(cfg.sdp_cache_entries, 128);
        assert_eq!(cfg.response_cache_bytes, 4 << 20);
        assert_eq!(cfg.max_connections, 1024);
        assert_eq!(cfg.idle_timeout_ms, 30_000);
        let cfg = parse_args(&strs(&[
            "--addr", "0.0.0.0:9000", "--threads", "2", "--replicas", "8",
            "--queue-depth", "16", "--store-capacity", "32",
            "--sdp-cache-entries", "7", "--response-cache-bytes", "65536",
            "--max-connections", "9", "--idle-timeout-ms", "2500",
        ]))
        .unwrap();
        assert_eq!(cfg.addr, "0.0.0.0:9000");
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.replicas, 8);
        assert_eq!(cfg.queue_depth, 16);
        assert_eq!(cfg.store_capacity, 32);
        assert_eq!(cfg.sdp_cache_entries, 7);
        assert_eq!(cfg.response_cache_bytes, 65536);
        assert_eq!(cfg.max_connections, 9);
        assert_eq!(cfg.idle_timeout_ms, 2500);
    }

    #[test]
    fn rejects_zero_and_unknown_flags() {
        for flag in [
            "--threads",
            "--replicas",
            "--queue-depth",
            "--store-capacity",
            "--max-connections",
            "--idle-timeout-ms",
        ] {
            let err = parse_args(&strs(&[flag, "0"])).unwrap_err();
            assert!(err.contains("must be ≥ 1"), "{flag}: {err}");
        }
        assert!(parse_args(&strs(&["--bogus"])).is_err());
        assert!(parse_args(&strs(&["--addr"])).is_err());
    }

    #[test]
    fn access_log_flag_parses() {
        let cfg = parse_args(&[]).unwrap();
        assert_eq!(cfg.access_log, None);
        assert_eq!(cfg.access_log_max_bytes, 0, "rotation defaults off");
        let cfg = parse_args(&strs(&["--access-log", "/tmp/snc-access.log"])).unwrap();
        assert_eq!(cfg.access_log.as_deref(), Some("/tmp/snc-access.log"));
        assert!(parse_args(&strs(&["--access-log"])).is_err());
        let cfg = parse_args(&strs(&[
            "--access-log", "/tmp/snc-access.log", "--access-log-max-bytes", "65536",
        ]))
        .unwrap();
        assert_eq!(cfg.access_log_max_bytes, 65536);
        assert!(parse_args(&strs(&["--access-log-max-bytes", "x"])).is_err());
        assert!(parse_args(&strs(&["--access-log-max-bytes"])).is_err());
    }

    #[test]
    fn cache_flags_accept_zero_as_disabled() {
        let cfg = parse_args(&strs(&[
            "--sdp-cache-entries", "0", "--response-cache-bytes", "0",
        ]))
        .unwrap();
        assert_eq!(cfg.sdp_cache_entries, 0);
        assert_eq!(cfg.response_cache_bytes, 0);
        for flag in ["--sdp-cache-entries", "--response-cache-bytes"] {
            assert!(parse_args(&strs(&[flag, "-1"])).is_err(), "{flag}");
            assert!(parse_args(&strs(&[flag, "x"])).is_err(), "{flag}");
            assert!(parse_args(&strs(&[flag])).is_err(), "{flag}");
        }
    }
}
