//! `snc-server` — a concurrent MAXCUT solve service over the batched
//! neuromorphic samplers.
//!
//! A dependency-free HTTP/1.1 server on a readiness-driven event loop
//! (one reactor thread multiplexing every connection via epoll on Linux,
//! portable `poll` elsewhere — see [`sys`] and [`event`]) that accepts
//! solve requests — graph, circuit family (LIF-GW / LIF-Trevisan),
//! sample budget, replica width, seed — schedules cache misses onto a
//! bounded [`snc_experiments::runner::WorkerPool`] whose workers step
//! the batched `ReplicaBatch` circuits through [`snc_maxcut::solve()`]
//! (cache hits and `/healthz` answer inline on the reactor, zero thread
//! handoff), and answers with deterministic JSON: best cut, partition,
//! trace checkpoints. Timing is reported in the `x-snc-elapsed-us`
//! response header so that identical seeded requests yield
//! **byte-identical bodies** at any concurrency — the service inherits
//! the workspace's per-replica RNG-stream contract. Connections are
//! bounded by `--max-connections` (overflow accepts get a fast 503) and
//! idle-reaped after `--idle-timeout-ms`.
//!
//! This mirrors how neuromorphic accelerators are consumed in practice:
//! batch submission of jobs against a fixed device budget, with a job
//! queue in front of the hardware.
//!
//! ## Endpoints
//!
//! | Endpoint         | Semantics                                        |
//! |------------------|--------------------------------------------------|
//! | `POST /solve`    | Synchronous solve; blocks until the result       |
//! | `POST /jobs`     | Async submit; answers `202 {"id": …}`            |
//! | `GET /jobs/{id}` | Poll an async job (`queued/running/done/failed`) |
//! | `GET /healthz`   | Liveness + queue gauge                           |
//! | `GET /metrics`   | Prometheus-style text exposition ([`metrics`])   |
//!
//! ## Quickstart
//!
//! ```no_run
//! use snc_server::{serve, ServerConfig};
//!
//! let handle = serve(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! println!("listening on {}", handle.addr());
//! // … drive it over TCP, then:
//! handle.shutdown(); // graceful: drains in-flight work
//! ```
//!
//! The request/response schema lives in [`wire`]; the HTTP subset in
//! [`http`]; the async job records in [`jobs`]; the deterministic
//! full-response cache in [`cache`]; acceptor/routing in [`server`].
//!
//! ## Caching
//!
//! Two deterministic caches sit on the solve path (both bounded, both
//! disabled by passing `0`):
//!
//! * the per-graph [`snc_maxcut::SdpCache`] (`--sdp-cache-entries`)
//!   memoizes the LIF-GW offline SDP factor/bound by
//!   `(graph fingerprint, sdp seed, rank)`;
//! * the [`cache::ResponseCache`] (`--response-cache-bytes`) stores
//!   byte-exact response bodies keyed by the full canonical request and
//!   short-circuits `/solve` and `/jobs`.
//!
//! Because responses are byte-identical for identical requests by the
//! PR-4 wire contract, cached and computed responses are
//! indistinguishable; hit/miss/eviction counters are reported on
//! `GET /healthz`.

// `unsafe_code` is denied workspace-wide (not forbidden): the audited
// syscall layer in [`sys`] — and only it — carries a scoped
// `#![allow(unsafe_code)]`. CI asserts the token `unsafe` appears
// nowhere else in the workspace.
#![warn(missing_docs)]

pub mod cache;
pub mod event;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod process;
pub mod server;
pub mod sys;
pub mod wire;

pub use cache::{ResponseCache, ResponseCacheStats, ResponseKey};
pub use server::{serve, ServerConfig, ServerHandle};
