//! Spawn-for-test helpers: launch real server/router **processes** and
//! talk to them over TCP.
//!
//! The multi-process suites (router integration, fault injection, the
//! `router_throughput` bench) need actual OS processes — a killed
//! backend must take its sockets, caches, and job store with it, which
//! an in-process [`crate::serve`] handle cannot simulate. These helpers
//! centralize the three fragile parts so every suite shares one
//! implementation:
//!
//! * **Binary discovery** ([`binary_path`]): workspace binaries land
//!   next to the test executable's `deps/` directory; when a suite runs
//!   before the binary target was linked (e.g. `cargo test --test …` on
//!   a cold target dir), the helper builds it via the `cargo` that
//!   invoked us rather than flaking.
//! * **Port allocation**: processes bind `127.0.0.1:0` and *report*
//!   their actual address on stdout ([`spawn_listening`] parses it), so
//!   concurrent suites can never collide on a port. For the one case
//!   that needs an address *before* the process exists (a backend that
//!   starts late, to exercise probe re-admission), [`reserve_port`]
//!   leases an ephemeral port from the kernel; a port that was only
//!   ever bound-and-closed by a listener has no lingering sockets, so
//!   the later bind cannot hit `EADDRINUSE`.
//! * **Cleanup** ([`SpawnedProcess`]): kill-on-drop, so a panicking
//!   test never leaks a child process into the next suite.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// A child process spawned by [`spawn_listening`], killed on drop.
#[derive(Debug)]
pub struct SpawnedProcess {
    child: Option<Child>,
    addr: SocketAddr,
    name: &'static str,
}

impl SpawnedProcess {
    /// The address the process reported it is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The child's OS process id (for healthz cross-checks).
    pub fn pid(&self) -> u32 {
        self.child.as_ref().map_or(0, Child::id)
    }

    /// Kills the process immediately (SIGKILL) and reaps it. Idempotent;
    /// also what `Drop` does. This is the fault-injection primitive: the
    /// process gets no chance to drain, flush, or answer in-flight
    /// requests.
    pub fn kill(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

impl Drop for SpawnedProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Locates (building if necessary) a workspace binary by crate/bin name.
///
/// Test executables run from `target/<profile>/deps/`, so the sibling
/// `target/<profile>/<name>` is the binary built alongside this suite.
/// If it does not exist yet, fall back to invoking `cargo build` for
/// exactly that binary in the matching profile — slower, but it turns a
/// would-be flake (suite scheduled before the binary target) into a
/// deterministic wait.
///
/// # Panics
///
/// Panics if the binary cannot be located or built — the caller is a
/// test or bench, and a missing binary is a setup error worth failing
/// loudly on.
pub fn binary_path(name: &str) -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    // target/<profile>/deps/<suite>-<hash> → target/<profile>/<name>
    let profile_dir = exe
        .parent()
        .and_then(|deps| {
            if deps.file_name().is_some_and(|f| f == "deps") {
                deps.parent()
            } else {
                // Binaries under `cargo run` live in the profile dir
                // directly.
                Some(deps)
            }
        })
        .expect("test executable has a profile directory");
    let candidate = profile_dir.join(name);
    if candidate.exists() {
        return candidate;
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut build = Command::new(cargo);
    build.args(["build", "-p", name, "--bin", name]);
    if profile_dir.file_name().is_some_and(|f| f == "release") {
        build.arg("--release");
    }
    let status = build.status().expect("spawn cargo build");
    assert!(status.success(), "cargo build -p {name} failed");
    assert!(
        candidate.exists(),
        "built {name} but {} still does not exist",
        candidate.display()
    );
    candidate
}

/// Spawns workspace binary `name` with `args` and waits until it prints
/// its listening address (`"… listening on ADDR …"`) on stdout.
///
/// Pass `--addr 127.0.0.1:0` (or none — both binaries print their bound
/// address regardless) to let the kernel pick the port; the parsed
/// address is what the caller connects to, so there is no window where
/// a guessed port can be stolen.
///
/// # Panics
///
/// Panics if the process cannot be spawned or exits before announcing
/// an address.
pub fn spawn_listening(name: &'static str, args: &[&str]) -> SpawnedProcess {
    let path = binary_path(name);
    let mut child = Command::new(&path)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", path.display()));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = match lines.next() {
            Some(Ok(line)) => line,
            other => panic!("{name} exited before announcing an address: {other:?}"),
        };
        if let Some(rest) = line.split("listening on ").nth(1) {
            let addr = rest
                .split_whitespace()
                .next()
                .and_then(|raw| raw.parse().ok())
                .unwrap_or_else(|| panic!("unparsable address in {line:?}"));
            break addr;
        }
    };
    // Keep draining stdout in the background so the child never blocks
    // on a full pipe.
    std::thread::spawn(move || for _line in lines {});
    SpawnedProcess {
        child: Some(child),
        addr,
        name,
    }
}

/// Spawns a backend `snc-server` process on an ephemeral port with the
/// given extra flags (`--addr` is supplied here).
pub fn spawn_server(extra_args: &[&str]) -> SpawnedProcess {
    let mut args = vec!["--addr", "127.0.0.1:0"];
    args.extend_from_slice(extra_args);
    spawn_listening("snc-server", &args)
}

/// Leases an ephemeral port: binds `127.0.0.1:0`, records the address,
/// and closes the listener. The kernel will not hand the same port to
/// another `:0` bind while ephemeral ports remain plentiful, and since
/// nothing ever connected, no `TIME_WAIT` socket can block the real
/// bind later. Use only for processes that must be *configured before
/// they exist* (late-started backends in re-admission tests); everything
/// else should bind `:0` itself via [`spawn_listening`].
pub fn reserve_port() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve ephemeral port");
    listener.local_addr().expect("reserved address")
}

impl std::fmt::Display for SpawnedProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (pid {}) at {}", self.name, self.pid(), self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_ports_are_distinct_and_bindable() {
        let a = reserve_port();
        let b = reserve_port();
        assert_ne!(a, b, "kernel leases distinct ephemeral ports");
        // The reservation is immediately re-bindable (no TIME_WAIT).
        let l = TcpListener::bind(a).expect("rebind reserved port");
        assert_eq!(l.local_addr().unwrap(), a);
    }
}
