//! The in-memory job store behind the async submit/poll endpoints.
//!
//! `POST /jobs` inserts a record and returns its id; the worker closure
//! advances the record through `queued → running → done/failed`;
//! `GET /jobs/{id}` snapshots it. The store is bounded: past its
//! capacity the oldest *finished* record is evicted first (falling back
//! to the oldest record of any state), so a long-running server cannot
//! accumulate results without bound. A worker finishing an evicted job
//! is a harmless no-op.

use parking_lot::Mutex;
use snc_experiments::json::Json;
use std::collections::{HashMap, VecDeque};

/// Lifecycle state of an async job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished; the deterministic result body is stored as a JSON tree.
    Done(Json),
    /// Rejected or failed with a message.
    Failed(String),
}

impl JobStatus {
    /// Wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
        }
    }

    fn is_finished(&self) -> bool {
        matches!(self, JobStatus::Done(_) | JobStatus::Failed(_))
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, JobStatus>,
    /// Insertion order, for eviction.
    order: VecDeque<u64>,
    next_id: u64,
}

/// Bounded, thread-safe id → status map.
#[derive(Debug)]
pub struct JobStore {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl JobStore {
    /// Creates a store that retains at most `capacity` records
    /// (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Inserts a fresh `Queued` record, evicting if at capacity, and
    /// returns its id (ids are sequential from 1).
    pub fn insert(&self) -> u64 {
        let mut inner = self.inner.lock();
        if inner.map.len() >= self.capacity {
            // Oldest finished record first; otherwise the oldest record.
            let victim = inner
                .order
                .iter()
                .copied()
                .find(|id| inner.map.get(id).is_some_and(JobStatus::is_finished))
                .or_else(|| inner.order.front().copied());
            if let Some(victim) = victim {
                inner.map.remove(&victim);
                inner.order.retain(|&id| id != victim);
            }
        }
        inner.next_id += 1;
        let id = inner.next_id;
        inner.map.insert(id, JobStatus::Queued);
        inner.order.push_back(id);
        id
    }

    /// Marks `id` as running (no-op if evicted).
    pub fn set_running(&self, id: u64) {
        let mut inner = self.inner.lock();
        if let Some(status) = inner.map.get_mut(&id) {
            *status = JobStatus::Running;
        }
    }

    /// Finishes `id` with a result body or an error (no-op if evicted).
    pub fn finish(&self, id: u64, result: Result<Json, String>) {
        let mut inner = self.inner.lock();
        if let Some(status) = inner.map.get_mut(&id) {
            *status = match result {
                Ok(body) => JobStatus::Done(body),
                Err(message) => JobStatus::Failed(message),
            };
        }
    }

    /// Drops `id` entirely (used when queue submission fails after the
    /// record was created).
    pub fn remove(&self, id: u64) {
        let mut inner = self.inner.lock();
        inner.map.remove(&id);
        inner.order.retain(|&other| other != id);
    }

    /// Snapshots the status of `id`.
    pub fn get(&self, id: u64) -> Option<JobStatus> {
        self.inner.lock().map.get(&id).cloned()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_roundtrip() {
        let store = JobStore::new(8);
        let id = store.insert();
        assert_eq!(store.get(id), Some(JobStatus::Queued));
        store.set_running(id);
        assert_eq!(store.get(id), Some(JobStatus::Running));
        store.finish(id, Ok(Json::UInt(7)));
        assert_eq!(store.get(id), Some(JobStatus::Done(Json::UInt(7))));
        store.finish(id, Err("late".into()));
        assert_eq!(store.get(id), Some(JobStatus::Failed("late".into())));
        assert_eq!(store.get(id + 1), None);
    }

    #[test]
    fn ids_are_sequential_and_removal_works() {
        let store = JobStore::new(8);
        assert_eq!(store.insert(), 1);
        assert_eq!(store.insert(), 2);
        store.remove(1);
        assert_eq!(store.get(1), None);
        assert_eq!(store.len(), 1);
        assert_eq!(store.insert(), 3, "removal does not recycle ids");
    }

    #[test]
    fn eviction_prefers_finished_records() {
        let store = JobStore::new(3);
        let a = store.insert();
        let b = store.insert();
        let c = store.insert();
        store.finish(b, Ok(Json::Null));
        let d = store.insert();
        // b (oldest finished) was evicted, not a (older but unfinished).
        assert_eq!(store.get(b), None);
        assert!(store.get(a).is_some());
        assert!(store.get(c).is_some());
        assert!(store.get(d).is_some());
        assert_eq!(store.len(), 3);
        // With nothing finished, the oldest record goes.
        let e = store.insert();
        assert_eq!(store.get(a), None);
        assert!(store.get(e).is_some());
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn finishing_an_evicted_job_is_a_noop() {
        let store = JobStore::new(1);
        let a = store.insert();
        let b = store.insert();
        assert_eq!(store.get(a), None);
        store.finish(a, Ok(Json::Null));
        assert_eq!(store.get(a), None, "eviction is final");
        assert!(store.get(b).is_some());
    }

    #[test]
    fn capacity_zero_clamps_to_one_and_never_panics() {
        // The documented contract: capacity is clamped to ≥ 1 (the
        // binary separately rejects `--store-capacity 0`), so a zero
        // capacity must behave exactly like one — not panic on insert,
        // not retain unboundedly.
        let store = JobStore::new(0);
        let a = store.insert();
        assert_eq!(store.get(a), Some(JobStatus::Queued));
        assert_eq!(store.len(), 1);
        let b = store.insert();
        assert_eq!(store.get(a), None, "the single slot was recycled");
        assert_eq!(store.get(b), Some(JobStatus::Queued));
        assert_eq!(store.len(), 1);
        store.finish(b, Ok(Json::Null));
        let c = store.insert();
        assert_eq!(store.get(b), None, "finished record evicted first");
        assert!(store.get(c).is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn capacity_one_cycles_through_every_lifecycle_state() {
        let store = JobStore::new(1);
        // Evicting an unfinished sole record must work (fallback arm).
        let a = store.insert();
        store.set_running(a);
        let b = store.insert();
        assert_eq!(store.get(a), None, "running record was the only victim");
        // Late transitions aimed at the evicted id must not resurrect it.
        store.set_running(a);
        store.finish(a, Err("late".into()));
        assert_eq!(store.get(a), None);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(b), Some(JobStatus::Queued));
        // Removal on the sole record empties the store; the next insert
        // does not evict anything.
        store.remove(b);
        assert!(store.is_empty());
        let c = store.insert();
        assert_eq!(store.get(c), Some(JobStatus::Queued));
        assert_eq!(store.len(), 1);
    }
}
