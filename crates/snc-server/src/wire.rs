//! The service wire format: JSON solve requests in, JSON results out.
//!
//! A request names exactly one workload. MAXCUT requests name a graph
//! (inline edges, weighted triples, edge-list text, a Figure-4 dataset,
//! or a seeded Erdős–Rényi generator), a circuit family, a sample
//! budget, an optional replica width, and a seed:
//!
//! ```json
//! {
//!   "graph": "road-chesapeake",
//!   "circuit": "lif-gw",
//!   "budget": 512,
//!   "replicas": 4,
//!   "seed": 42
//! }
//! ```
//!
//! The annealed family accepts a cooling schedule and Hopfield a step
//! count — each knob is valid only with its own family:
//!
//! ```json
//! {
//!   "graph": {"gnp": {"n": 40, "p": 0.3, "seed": 7}},
//!   "circuit": "lif-annealed",
//!   "schedule": {"kind": "geometric", "start": 1.0, "end": 0.05},
//!   "budget": 256,
//!   "seed": 42
//! }
//! ```
//!
//! ```json
//! {
//!   "graph": {"weighted_edges": [[0, 1, 2.5], [1, 2, -0.5]]},
//!   "circuit": "hopfield",
//!   "steps": 16,
//!   "budget": 64,
//!   "seed": 42
//! }
//! ```
//!
//! MAX2SAT and MAXDICUT requests carry their instance under a
//! `"max2sat"` / `"maxdicut"` key instead of `"graph"` (literals are
//! signed 1-based variable ids; `budget` counts rounding draws):
//!
//! ```json
//! {"max2sat": {"vars": 3, "clauses": [[1, -2], [2, 3], [-1]]}, "budget": 32, "seed": 7}
//! ```
//!
//! ```json
//! {"maxdicut": {"n": 4, "arcs": [[0, 1], [1, 2], [2, 3]]}, "budget": 32, "seed": 7}
//! ```
//!
//! Everything renders through [`snc_experiments::json`] — the same
//! escaper the experiment reports use — and response rendering is a
//! pure function of the solve outcome, so identical requests produce
//! byte-identical bodies no matter which worker or connection served
//! them. Timing never enters the body (it travels in the
//! `x-snc-elapsed-us` response header).

use crate::cache::ResponseKey;
use snc_experiments::json::{self, Json};
use snc_graph::generators::erdos_renyi::gnp;
use snc_graph::io::edgelist;
use snc_graph::{EmpiricalDataset, Graph, WeightedGraph};
use snc_maxcut::extensions::max2sat::{Clause, Literal, Max2Sat, Max2SatSolution};
use snc_maxcut::extensions::maxdicut::{DiGraph, MaxDicutSolution};
use snc_maxcut::{
    CircuitFamily, CoolingSchedule, ScheduleKind, SolveOutcome, SolveSpec, WeightedSolveOutcome,
};
use snc_neuro::LifParams;

/// Largest accepted weight magnitude anywhere on the wire (edge weights,
/// clause weights). Keeps every downstream accumulation far from the
/// overflow-to-infinity regime while accepting any plausible instance.
pub const MAX_ABS_WEIGHT: f64 = 1e12;

/// Server-side defaults and limits applied while parsing requests.
#[derive(Clone, Debug)]
pub struct RequestDefaults {
    /// Replica width when the request omits `"replicas"`.
    pub replicas: usize,
    /// SDP rank for the SDP-backed families (the paper's 4).
    pub sdp_rank: usize,
    /// Membrane parameters for the LIF circuit families.
    pub lif: LifParams,
    /// Largest accepted `"budget"`.
    pub max_budget: u64,
    /// Largest accepted vertex/variable count (guards the dense SDP
    /// stage).
    ///
    /// Enforced *before* any instance is materialized: inline edge ids,
    /// declared `"n"`/`"vars"`, and generator sizes are all bounded
    /// pre-allocation, so a tiny request body cannot trigger a huge
    /// allocation.
    pub max_vertices: usize,
    /// Largest accepted `"replicas"` (per-replica circuit state is
    /// O(n), so an uncapped width is an allocation amplifier).
    pub max_replicas: usize,
    /// Largest accepted Hopfield `"steps"` per sample (each Euler step
    /// is O(n + m) work, so the knob multiplies the budget).
    pub max_hopfield_steps: u64,
}

/// A parsed, validated unweighted solve request: the graph to cut and
/// the fully resolved spec to dispatch.
#[derive(Clone, Debug)]
pub struct SolveJob {
    /// The graph built from the request body.
    pub graph: Graph,
    /// The resolved solve spec ([`snc_maxcut::solve()`]'s input).
    pub spec: SolveSpec,
    /// A deterministic label of the graph source, echoed in responses.
    pub graph_label: String,
}

/// A parsed weighted solve request ([`snc_maxcut::solve_weighted()`]'s
/// input).
#[derive(Clone, Debug)]
pub struct WeightedSolveJob {
    /// The weighted graph built from the request body.
    pub graph: WeightedGraph,
    /// The resolved solve spec.
    pub spec: SolveSpec,
    /// A deterministic label of the graph source, echoed in responses.
    pub graph_label: String,
}

impl WeightedSolveJob {
    /// A canonical string rendering of the weighted graph for cache
    /// keying: weights by their exact bit pattern, so byte-equality of
    /// the string ⇔ bit-equality of the instance.
    pub fn canonical_graph(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("wgraph:n={};", self.graph.n());
        for (u, v, w) in self.graph.edges() {
            let _ = write!(s, "{u}-{v}:{:016x};", w.to_bits());
        }
        s
    }
}

/// A parsed MAX2SAT request
/// ([`snc_maxcut::extensions::max2sat::solve_gw_max2sat`]'s input).
#[derive(Clone, Debug)]
pub struct Max2SatJob {
    /// The clause system.
    pub instance: Max2Sat,
    /// Rounding draws (the request's `budget`).
    pub samples: u64,
    /// Master seed.
    pub seed: u64,
}

impl Max2SatJob {
    /// A canonical string rendering of the instance for cache keying.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("max2sat:vars={};", self.instance.n_vars);
        let lit = |l: Literal| format!("{}{}", if l.negated { '-' } else { '+' }, l.var);
        for c in &self.instance.clauses {
            s.push_str(&lit(c.a));
            if let Some(b) = c.b {
                s.push_str(&lit(b));
            }
            let _ = write!(s, ":{:016x};", c.weight.to_bits());
        }
        s
    }
}

/// A parsed MAXDICUT request
/// ([`snc_maxcut::extensions::maxdicut::solve_gw_maxdicut`]'s input).
#[derive(Clone, Debug)]
pub struct MaxDicutJob {
    /// The directed graph.
    pub graph: DiGraph,
    /// Rounding draws (the request's `budget`).
    pub samples: u64,
    /// Master seed.
    pub seed: u64,
}

impl MaxDicutJob {
    /// A canonical string rendering of the instance for cache keying.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("maxdicut:n={};", self.graph.n);
        for &(u, v) in &self.graph.arcs {
            let _ = write!(s, "{u}-{v};");
        }
        s
    }
}

/// Every workload the wire format accepts, fully parsed and validated.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Unweighted MAXCUT through the circuit families.
    MaxCut(SolveJob),
    /// Weighted MAXCUT through the circuit families.
    WeightedMaxCut(WeightedSolveJob),
    /// MAX2SAT via the GW SDP + rounding extension.
    Max2Sat(Max2SatJob),
    /// MAXDICUT via the GW SDP + rounding extension.
    MaxDicut(MaxDicutJob),
}

/// A request-rejection message (answered as HTTP 400).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for WireError {}

fn err(message: impl Into<String>) -> WireError {
    WireError(message.into())
}

/// The canonical rendering of family-specific solver knobs for cache
/// keying: non-empty exactly when the family reads a knob beyond the
/// common five, with floats by bit pattern.
pub fn spec_extras(spec: &SolveSpec) -> String {
    match spec.family {
        CircuitFamily::LifAnnealed => format!(
            "schedule={}:{:016x}:{:016x}",
            spec.schedule.kind().name(),
            spec.schedule.start().to_bits(),
            spec.schedule.end().to_bits()
        ),
        CircuitFamily::Hopfield => format!("steps={}", spec.hopfield_steps),
        CircuitFamily::LifGw | CircuitFamily::LifTrevisan => String::new(),
    }
}

/// The canonical cache key for a parsed workload (the full request:
/// family, budget, replicas, seed, instance, family-specific knobs).
/// Non-graph instances key on their canonical string; the extension
/// workloads have no circuit family or replica width, so they pin the
/// placeholder `(LifGw, 1)` — distinct labels and canonical prefixes
/// keep them from ever colliding with a real graph request.
///
/// Shared by the server (response-cache lookups) and the scale-out
/// router (whose shard key is [`ResponseKey::payload_fold`]): both
/// derive the key from the same parse, so the slice of the keyspace a
/// backend sees from the router is exactly the slice its own caches
/// key on.
pub fn response_key(workload: &Workload) -> ResponseKey {
    match workload {
        Workload::MaxCut(job) => ResponseKey::new(
            job.spec.family,
            job.spec.budget,
            job.spec.replicas,
            job.spec.seed,
            job.graph_label.clone(),
            job.graph.clone(),
        )
        .with_extras(spec_extras(&job.spec)),
        Workload::WeightedMaxCut(job) => ResponseKey::new_canonical(
            job.spec.family,
            job.spec.budget,
            job.spec.replicas,
            job.spec.seed,
            job.graph_label.clone(),
            job.canonical_graph(),
        )
        .with_extras(spec_extras(&job.spec)),
        Workload::Max2Sat(job) => ResponseKey::new_canonical(
            CircuitFamily::LifGw,
            job.samples,
            1,
            job.seed,
            "max2sat".to_string(),
            job.canonical(),
        ),
        Workload::MaxDicut(job) => ResponseKey::new_canonical(
            CircuitFamily::LifGw,
            job.samples,
            1,
            job.seed,
            "maxdicut".to_string(),
            job.canonical(),
        ),
    }
}

/// Parses and validates any request body into its workload.
///
/// # Errors
///
/// Returns [`WireError`] (→ HTTP 400) for malformed JSON, unknown keys,
/// missing/invalid fields, empty instances, or limit violations.
pub fn parse_request(body: &[u8], defaults: &RequestDefaults) -> Result<Workload, WireError> {
    let text = std::str::from_utf8(body).map_err(|_| err("body is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| err(e.to_string()))?;
    if doc.as_object().is_none() {
        return Err(err("request body must be a JSON object"));
    }
    let named: Vec<&str> = ["graph", "max2sat", "maxdicut"]
        .into_iter()
        .filter(|k| doc.get(k).is_some())
        .collect();
    match named.as_slice() {
        ["graph"] => parse_maxcut_request(&doc, defaults),
        ["max2sat"] => parse_max2sat_request(&doc, defaults).map(Workload::Max2Sat),
        ["maxdicut"] => parse_maxdicut_request(&doc, defaults).map(Workload::MaxDicut),
        [] => Err(err(
            "request must name a workload: one of `graph`, `max2sat`, `maxdicut`",
        )),
        _ => Err(err(
            "request must contain exactly one of `graph`, `max2sat`, `maxdicut`",
        )),
    }
}

/// Parses and validates an unweighted MAXCUT solve-request body.
///
/// Thin wrapper over [`parse_request`] for callers that only speak the
/// original graph workload (the batch CLI, older tests).
///
/// # Errors
///
/// Everything [`parse_request`] rejects, plus any non-unweighted
/// workload.
pub fn parse_solve_request(
    body: &[u8],
    defaults: &RequestDefaults,
) -> Result<SolveJob, WireError> {
    match parse_request(body, defaults)? {
        Workload::MaxCut(job) => Ok(job),
        _ => Err(err("expected an unweighted MAXCUT `graph` request")),
    }
}

/// The graph workload: unweighted or weighted MAXCUT.
fn parse_maxcut_request(
    doc: &Json,
    defaults: &RequestDefaults,
) -> Result<Workload, WireError> {
    let members = doc.as_object().expect("checked by parse_request");
    for (key, _) in members {
        if !matches!(
            key.as_str(),
            "graph" | "circuit" | "budget" | "replicas" | "seed" | "schedule" | "steps"
        ) {
            return Err(err(format!(
                "unknown key `{key}` (expected graph, circuit, budget, replicas, seed, schedule, steps)"
            )));
        }
    }

    let family = match doc.get("circuit") {
        None => CircuitFamily::LifGw,
        Some(v) => {
            let name = v.as_str().ok_or_else(|| err("`circuit` must be a string"))?;
            CircuitFamily::from_name(name).ok_or_else(|| {
                err(format!(
                    "unknown circuit `{name}` (expected lif-gw, lif-trevisan, lif-annealed, or hopfield)"
                ))
            })?
        }
    };

    // Family-specific knobs: each is valid only with its own family, so
    // a knob on the wrong family is a rejection, not silent drift.
    let schedule = match doc.get("schedule") {
        None => None,
        Some(_) if family != CircuitFamily::LifAnnealed => {
            return Err(err(format!(
                "`schedule` is only valid with circuit `lif-annealed` (got `{}`)",
                family.name()
            )))
        }
        Some(v) => Some(parse_schedule(v)?),
    };
    let hopfield_steps = match doc.get("steps") {
        None => None,
        Some(_) if family != CircuitFamily::Hopfield => {
            return Err(err(format!(
                "`steps` is only valid with circuit `hopfield` (got `{}`)",
                family.name()
            )))
        }
        Some(v) => {
            let steps = v
                .as_u64()
                .ok_or_else(|| err("`steps` must be a non-negative integer"))?;
            if steps == 0 {
                return Err(err("`steps` must be ≥ 1"));
            }
            if steps > defaults.max_hopfield_steps {
                return Err(err(format!(
                    "`steps` {steps} exceeds the server limit of {}",
                    defaults.max_hopfield_steps
                )));
            }
            Some(steps)
        }
    };

    let budget = parse_budget(doc, defaults)?;
    let replicas = match doc.get("replicas") {
        None => defaults.replicas,
        Some(v) => {
            let r = v
                .as_usize()
                .ok_or_else(|| err("`replicas` must be a non-negative integer"))?;
            if r == 0 {
                return Err(err("`replicas` must be ≥ 1"));
            }
            if r > defaults.max_replicas {
                return Err(err(format!(
                    "`replicas` {r} exceeds the server limit of {}",
                    defaults.max_replicas
                )));
            }
            r
        }
    };
    let seed = parse_seed(doc)?;

    let mut spec = SolveSpec {
        replicas,
        sdp_rank: defaults.sdp_rank,
        lif: defaults.lif,
        ..SolveSpec::new(family, budget, seed)
    };
    if let Some(schedule) = schedule {
        spec.schedule = schedule;
    }
    if let Some(steps) = hopfield_steps {
        spec.hopfield_steps = steps;
    }

    match parse_graph(
        doc.get("graph").ok_or_else(|| err("missing `graph`"))?,
        defaults,
    )? {
        ParsedGraph::Unweighted(graph, graph_label) => {
            if graph.m() == 0 {
                return Err(err("graph has no edges; MAXCUT needs at least one"));
            }
            Ok(Workload::MaxCut(SolveJob { graph, spec, graph_label }))
        }
        ParsedGraph::Weighted(graph, graph_label) => {
            if graph.m() == 0 {
                return Err(err("graph has no edges; MAXCUT needs at least one"));
            }
            if family == CircuitFamily::LifTrevisan && !graph.is_nonnegative() {
                return Err(err("lif-trevisan requires non-negative edge weights"));
            }
            Ok(Workload::WeightedMaxCut(WeightedSolveJob { graph, spec, graph_label }))
        }
    }
}

/// `{"kind": …, "start": …, "end": …}` → a validated cooling schedule.
fn parse_schedule(value: &Json) -> Result<CoolingSchedule, WireError> {
    let members = value
        .as_object()
        .ok_or_else(|| err("`schedule` must be an object with kind, start, end"))?;
    for (key, _) in members {
        if !matches!(key.as_str(), "kind" | "start" | "end") {
            return Err(err(format!(
                "unknown key `{key}` in `schedule` (expected kind, start, end)"
            )));
        }
    }
    let kind_name = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| err("`schedule.kind` must be a string"))?;
    let kind = ScheduleKind::from_name(kind_name).ok_or_else(|| {
        err(format!(
            "unknown schedule kind `{kind_name}` (expected geometric or linear)"
        ))
    })?;
    let start = value
        .get("start")
        .and_then(Json::as_f64)
        .ok_or_else(|| err("`schedule.start` must be a number"))?;
    let end = value
        .get("end")
        .and_then(Json::as_f64)
        .ok_or_else(|| err("`schedule.end` must be a number"))?;
    CoolingSchedule::new(kind, start, end).map_err(|e| err(format!("invalid schedule: {e}")))
}

/// The shared `budget` field (samples for the extensions, circuit
/// samples for MAXCUT).
fn parse_budget(doc: &Json, defaults: &RequestDefaults) -> Result<u64, WireError> {
    let budget = doc
        .get("budget")
        .ok_or_else(|| err("missing `budget`"))?
        .as_u64()
        .ok_or_else(|| err("`budget` must be a non-negative integer"))?;
    if budget == 0 {
        return Err(err("`budget` must be ≥ 1"));
    }
    if budget > defaults.max_budget {
        return Err(err(format!(
            "`budget` {budget} exceeds the server limit of {}",
            defaults.max_budget
        )));
    }
    Ok(budget)
}

/// The shared optional `seed` field (defaults to 0).
fn parse_seed(doc: &Json) -> Result<u64, WireError> {
    match doc.get("seed") {
        None => Ok(0),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| err("`seed` must be a non-negative integer")),
    }
}

/// `Json::Int`/`Json::UInt` → `i64` (the JSON layer has no signed
/// accessor; MAX2SAT literals are the only signed integers on the wire).
fn json_as_i64(v: &Json) -> Option<i64> {
    match v {
        Json::Int(i) => Some(*i),
        Json::UInt(u) => i64::try_from(*u).ok(),
        _ => None,
    }
}

/// The `max2sat` workload.
fn parse_max2sat_request(
    doc: &Json,
    defaults: &RequestDefaults,
) -> Result<Max2SatJob, WireError> {
    let members = doc.as_object().expect("checked by parse_request");
    for (key, _) in members {
        if !matches!(key.as_str(), "max2sat" | "budget" | "seed") {
            return Err(err(format!(
                "unknown key `{key}` (expected max2sat, budget, seed)"
            )));
        }
    }
    let inst = doc.get("max2sat").expect("checked by parse_request");
    let inst_members = inst
        .as_object()
        .ok_or_else(|| err("`max2sat` must be an object with vars, clauses"))?;
    for (key, _) in inst_members {
        if !matches!(key.as_str(), "vars" | "clauses" | "weights") {
            return Err(err(format!(
                "unknown key `{key}` in `max2sat` (expected vars, clauses, weights)"
            )));
        }
    }
    let vars = inst
        .get("vars")
        .and_then(Json::as_usize)
        .ok_or_else(|| err("`max2sat.vars` must be a non-negative integer"))?;
    if vars == 0 {
        return Err(err("`max2sat.vars` must be ≥ 1"));
    }
    if vars > defaults.max_vertices {
        return Err(err(format!(
            "`max2sat.vars` is {vars}, exceeding the server limit of {}",
            defaults.max_vertices
        )));
    }
    let clause_items = inst
        .get("clauses")
        .and_then(Json::as_array)
        .ok_or_else(|| err("`max2sat.clauses` must be an array of clauses"))?;
    if clause_items.is_empty() {
        return Err(err("`max2sat.clauses` must not be empty"));
    }
    let weights: Option<Vec<f64>> = match inst.get("weights") {
        None => None,
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| err("`max2sat.weights` must be an array of numbers"))?;
            if items.len() != clause_items.len() {
                return Err(err(format!(
                    "`max2sat.weights` has {} entries for {} clauses",
                    items.len(),
                    clause_items.len()
                )));
            }
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let w = item
                    .as_f64()
                    .ok_or_else(|| err("clause weights must be numbers"))?;
                if !w.is_finite() {
                    return Err(err("clause weights must be finite"));
                }
                if w <= 0.0 {
                    return Err(err(format!("clause weights must be positive (got {w})")));
                }
                if w > MAX_ABS_WEIGHT {
                    return Err(err(format!(
                        "clause weight {w} exceeds the magnitude limit of {MAX_ABS_WEIGHT:e}"
                    )));
                }
                out.push(w);
            }
            Some(out)
        }
    };
    let mut clauses = Vec::with_capacity(clause_items.len());
    for (idx, item) in clause_items.iter().enumerate() {
        let lits = item
            .as_array()
            .filter(|l| matches!(l.len(), 1 | 2))
            .ok_or_else(|| err("each clause must be an array of 1 or 2 literals"))?;
        let mut parsed = [None, None];
        for (slot, lit) in lits.iter().enumerate() {
            let signed = json_as_i64(lit)
                .ok_or_else(|| err("literals must be signed integers (1-based variable ids)"))?;
            if signed == 0 {
                return Err(err("literal 0 is invalid (literals are 1-based)"));
            }
            let var = signed.unsigned_abs();
            if var > vars as u64 {
                return Err(err(format!(
                    "literal {signed} names a variable out of range (vars = {vars})"
                )));
            }
            let var = (var - 1) as u32;
            parsed[slot] = Some(if signed < 0 {
                Literal::neg(var)
            } else {
                Literal::pos(var)
            });
        }
        clauses.push(Clause {
            a: parsed[0].expect("clauses have ≥ 1 literal"),
            b: parsed[1],
            weight: weights.as_ref().map_or(1.0, |w| w[idx]),
        });
    }
    Ok(Max2SatJob {
        instance: Max2Sat { n_vars: vars, clauses },
        samples: parse_budget(doc, defaults)?,
        seed: parse_seed(doc)?,
    })
}

/// The `maxdicut` workload.
fn parse_maxdicut_request(
    doc: &Json,
    defaults: &RequestDefaults,
) -> Result<MaxDicutJob, WireError> {
    let members = doc.as_object().expect("checked by parse_request");
    for (key, _) in members {
        if !matches!(key.as_str(), "maxdicut" | "budget" | "seed") {
            return Err(err(format!(
                "unknown key `{key}` (expected maxdicut, budget, seed)"
            )));
        }
    }
    let inst = doc.get("maxdicut").expect("checked by parse_request");
    let inst_members = inst
        .as_object()
        .ok_or_else(|| err("`maxdicut` must be an object with n, arcs"))?;
    for (key, _) in inst_members {
        if !matches!(key.as_str(), "n" | "arcs") {
            return Err(err(format!(
                "unknown key `{key}` in `maxdicut` (expected n, arcs)"
            )));
        }
    }
    let n = inst
        .get("n")
        .and_then(Json::as_usize)
        .ok_or_else(|| err("`maxdicut.n` must be a non-negative integer"))?;
    if n == 0 {
        return Err(err("`maxdicut.n` must be ≥ 1"));
    }
    if n > defaults.max_vertices {
        return Err(err(format!(
            "`maxdicut.n` is {n}, exceeding the server limit of {}",
            defaults.max_vertices
        )));
    }
    let arc_items = inst
        .get("arcs")
        .and_then(Json::as_array)
        .ok_or_else(|| err("`maxdicut.arcs` must be an array of [u, v] arcs"))?;
    if arc_items.is_empty() {
        return Err(err("`maxdicut.arcs` must not be empty"));
    }
    let mut arcs = Vec::with_capacity(arc_items.len());
    for item in arc_items {
        let pair = item
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| err("each arc must be a [u, v] pair"))?;
        let u = pair[0]
            .as_u64()
            .ok_or_else(|| err("arc endpoints must be non-negative integers"))?;
        let v = pair[1]
            .as_u64()
            .ok_or_else(|| err("arc endpoints must be non-negative integers"))?;
        // Bound-check *before* `DiGraph::new` — it panics on
        // out-of-range endpoints, and a panic must never be reachable
        // from the wire.
        for endpoint in [u, v] {
            if endpoint >= n as u64 {
                return Err(err(format!(
                    "arc endpoint {endpoint} is out of range (n = {n})"
                )));
            }
        }
        arcs.push((u as u32, v as u32));
    }
    let graph = DiGraph::new(n, &arcs);
    if graph.arcs.is_empty() {
        return Err(err("maxdicut instance has no arcs after dropping self-loops"));
    }
    Ok(MaxDicutJob {
        graph,
        samples: parse_budget(doc, defaults)?,
        seed: parse_seed(doc)?,
    })
}

/// A parsed `"graph"` value: the seed's unweighted sources plus inline
/// weighted triples.
enum ParsedGraph {
    Unweighted(Graph, String),
    Weighted(WeightedGraph, String),
}

/// Builds the graph named by the request's `"graph"` value.
fn parse_graph(value: &Json, defaults: &RequestDefaults) -> Result<ParsedGraph, WireError> {
    let parsed = match value {
        Json::Str(name) => {
            let dataset = EmpiricalDataset::all()
                .into_iter()
                .find(|d| d.name() == name)
                .ok_or_else(|| err(format!("unknown dataset `{name}`")))?;
            let graph = dataset
                .load()
                .map_err(|e| err(format!("failed to build dataset `{name}`: {e}")))?;
            ParsedGraph::Unweighted(graph, format!("dataset:{name}"))
        }
        Json::Obj(members) => {
            // Strict like the top level: an unknown (or misplaced) key is
            // a rejection, not silent drift — a mis-cased `"N"` must not
            // quietly solve a differently-shaped graph.
            let sized = value.get("edges").is_some() || value.get("weighted_edges").is_some();
            for (key, _) in members {
                match key.as_str() {
                    "edges" | "edgelist" | "gnp" | "weighted_edges" => {}
                    "n" if sized => {}
                    "n" => {
                        return Err(err(
                            "`n` is only valid alongside `edges` or `weighted_edges` (edge lists and gnp carry their own size)",
                        ))
                    }
                    other => {
                        return Err(err(format!(
                            "unknown key `{other}` in `graph` (expected edges, weighted_edges, edgelist, gnp, or n with edges)"
                        )))
                    }
                }
            }
            let keys: Vec<&str> = ["edges", "edgelist", "gnp", "weighted_edges"]
                .into_iter()
                .filter(|k| value.get(k).is_some())
                .collect();
            match keys.as_slice() {
                ["edges"] => {
                    let pairs = parse_edge_pairs(value.get("edges").expect("key present"))?;
                    let declared_n = parse_declared_n(value)?;
                    // Bound *before* building: a tiny body naming a huge
                    // id (or declaring a huge n) must not allocate.
                    let max_id = pairs.iter().map(|&(u, v)| u.max(v)).max().unwrap_or(0);
                    let implied_n = declared_n
                        .unwrap_or_else(|| max_id.saturating_add(1).min(usize::MAX as u64) as usize);
                    check_vertices(implied_n, defaults)?;
                    let graph = edgelist::from_pairs(&pairs, declared_n)
                        .map_err(|e| err(format!("invalid edges: {e}")))?;
                    ParsedGraph::Unweighted(graph, "edges".to_string())
                }
                ["weighted_edges"] => {
                    let triples =
                        parse_weighted_triples(value.get("weighted_edges").expect("key present"))?;
                    let declared_n = parse_declared_n(value)?;
                    let max_id = triples.iter().map(|&(u, v, _)| u.max(v)).max().unwrap_or(0);
                    let implied_n = declared_n
                        .unwrap_or_else(|| max_id.saturating_add(1).min(usize::MAX as u64) as usize);
                    check_vertices(implied_n, defaults)?;
                    let edges: Vec<(u32, u32, f64)> = triples
                        .into_iter()
                        .map(|(u, v, w)| (u as u32, v as u32, w))
                        .collect();
                    let graph = WeightedGraph::from_weighted_edges(implied_n, &edges)
                        .map_err(|e| err(format!("invalid weighted edges: {e}")))?;
                    ParsedGraph::Weighted(graph, "weighted-edges".to_string())
                }
                ["edgelist"] => {
                    let text = value
                        .get("edgelist")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("`edgelist` must be a string"))?;
                    // Scan first (no allocation), bound-check the implied
                    // vertex count, then build.
                    let raw = edgelist::scan(text)
                        .map_err(|e| err(format!("invalid edge list: {e}")))?;
                    check_vertices(raw.n(), defaults)?;
                    let graph = raw
                        .into_graph()
                        .map_err(|e| err(format!("invalid edge list: {e}")))?;
                    ParsedGraph::Unweighted(graph, "edgelist".to_string())
                }
                ["gnp"] => {
                    let spec = value.get("gnp").expect("key present");
                    for (key, _) in spec.as_object().unwrap_or(&[]) {
                        if !matches!(key.as_str(), "n" | "p" | "seed") {
                            return Err(err(format!(
                                "unknown key `{key}` in `gnp` (expected n, p, seed)"
                            )));
                        }
                    }
                    let n = spec
                        .get("n")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| err("`gnp.n` must be a non-negative integer"))?;
                    let p = spec
                        .get("p")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| err("`gnp.p` must be a number"))?;
                    let seed = match spec.get("seed") {
                        None => 0,
                        Some(v) => v
                            .as_u64()
                            .ok_or_else(|| err("`gnp.seed` must be a non-negative integer"))?,
                    };
                    // Bound *before* generating: a huge `n` must not
                    // allocate anything.
                    check_vertices(n, defaults)?;
                    let graph = gnp(n, p, seed)
                        .map_err(|e| err(format!("invalid gnp parameters: {e}")))?;
                    // `p` formats deterministically (shortest round-trip).
                    ParsedGraph::Unweighted(graph, format!("gnp(n={n},p={p},seed={seed})"))
                }
                [] => {
                    return Err(err(
                        "`graph` object must contain one of `edges`, `weighted_edges`, `edgelist`, `gnp`",
                    ))
                }
                _ => {
                    return Err(err(
                        "`graph` object must contain exactly one of `edges`, `weighted_edges`, `edgelist`, `gnp`",
                    ))
                }
            }
        }
        _ => {
            return Err(err(
                "`graph` must be a dataset name or an object with `edges`, `weighted_edges`, `edgelist`, or `gnp`",
            ))
        }
    };
    // Backstop; every arm above already bound-checked pre-allocation.
    match &parsed {
        ParsedGraph::Unweighted(g, _) => check_vertices(g.n(), defaults)?,
        ParsedGraph::Weighted(g, _) => check_vertices(g.n(), defaults)?,
    }
    Ok(parsed)
}

/// The optional `"n"` alongside inline edges.
fn parse_declared_n(value: &Json) -> Result<Option<usize>, WireError> {
    match value.get("n") {
        None => Ok(None),
        Some(v) => Ok(Some(
            v.as_usize()
                .ok_or_else(|| err("`n` must be a non-negative integer"))?,
        )),
    }
}

/// The shared pre-allocation vertex bound.
fn check_vertices(n: usize, defaults: &RequestDefaults) -> Result<(), WireError> {
    if n > defaults.max_vertices {
        return Err(err(format!(
            "graph has {n} vertices, exceeding the server limit of {}",
            defaults.max_vertices
        )));
    }
    Ok(())
}

fn parse_edge_pairs(value: &Json) -> Result<Vec<(u64, u64)>, WireError> {
    let items = value
        .as_array()
        .ok_or_else(|| err("`edges` must be an array of [u, v] pairs"))?;
    items
        .iter()
        .map(|item| {
            let pair = item
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| err("each edge must be a [u, v] pair"))?;
            let u = pair[0]
                .as_u64()
                .ok_or_else(|| err("edge endpoints must be non-negative integers"))?;
            let v = pair[1]
                .as_u64()
                .ok_or_else(|| err("edge endpoints must be non-negative integers"))?;
            Ok((u, v))
        })
        .collect()
}

fn parse_weighted_triples(value: &Json) -> Result<Vec<(u64, u64, f64)>, WireError> {
    let items = value
        .as_array()
        .ok_or_else(|| err("`weighted_edges` must be an array of [u, v, w] triples"))?;
    items
        .iter()
        .map(|item| {
            let triple = item
                .as_array()
                .filter(|t| t.len() == 3)
                .ok_or_else(|| err("each weighted edge must be a [u, v, w] triple"))?;
            let u = triple[0]
                .as_u64()
                .ok_or_else(|| err("edge endpoints must be non-negative integers"))?;
            let v = triple[1]
                .as_u64()
                .ok_or_else(|| err("edge endpoints must be non-negative integers"))?;
            let w = triple[2]
                .as_f64()
                .ok_or_else(|| err("edge weights must be numbers"))?;
            // `1e999` parses to infinity, so "is a number" is not enough.
            if !w.is_finite() {
                return Err(err("edge weights must be finite"));
            }
            if w.abs() > MAX_ABS_WEIGHT {
                return Err(err(format!(
                    "edge weight {w} exceeds the magnitude limit of {MAX_ABS_WEIGHT:e}"
                )));
            }
            Ok((u, v, w))
        })
        .collect()
}

/// Renders an unweighted solve outcome as the deterministic response
/// body.
///
/// Pure function of `(job, outcome)`: no timestamps, ids, or timing —
/// identical seeded requests render byte-identical bodies.
pub fn solve_response(job: &SolveJob, outcome: &SolveOutcome) -> Json {
    let partition: Vec<Json> = outcome
        .best_cut
        .sides()
        .iter()
        .map(|&s| Json::UInt(u64::from(s == 1)))
        .collect();
    Json::Obj(vec![
        ("circuit".into(), Json::str(job.spec.family.name())),
        ("graph".into(), Json::str(job.graph_label.clone())),
        ("n".into(), Json::UInt(job.graph.n() as u64)),
        ("m".into(), Json::UInt(job.graph.m() as u64)),
        ("budget".into(), Json::UInt(job.spec.budget)),
        ("replicas".into(), Json::UInt(outcome.replicas as u64)),
        ("samples".into(), Json::UInt(outcome.samples)),
        ("seed".into(), Json::UInt(job.spec.seed)),
        ("best_cut".into(), Json::UInt(outcome.best_value)),
        ("partition".into(), Json::Arr(partition)),
        (
            "sdp_bound".into(),
            outcome.sdp_bound.map_or(Json::Null, Json::Num),
        ),
        (
            "trace".into(),
            Json::Obj(vec![
                (
                    "checkpoints".into(),
                    Json::Arr(
                        outcome
                            .trace
                            .checkpoints
                            .iter()
                            .map(|&c| Json::UInt(c))
                            .collect(),
                    ),
                ),
                (
                    "best".into(),
                    Json::Arr(outcome.trace.best.iter().map(|&b| Json::UInt(b)).collect()),
                ),
            ]),
        ),
    ])
}

/// Renders a weighted solve outcome as the deterministic response body
/// (same shape as [`solve_response`] with float-valued cuts and a
/// `"weighted": true` marker).
pub fn weighted_solve_response(job: &WeightedSolveJob, outcome: &WeightedSolveOutcome) -> Json {
    let partition: Vec<Json> = outcome
        .best_cut
        .sides()
        .iter()
        .map(|&s| Json::UInt(u64::from(s == 1)))
        .collect();
    Json::Obj(vec![
        ("circuit".into(), Json::str(job.spec.family.name())),
        ("graph".into(), Json::str(job.graph_label.clone())),
        ("n".into(), Json::UInt(job.graph.n() as u64)),
        ("m".into(), Json::UInt(job.graph.m() as u64)),
        ("weighted".into(), Json::Bool(true)),
        ("budget".into(), Json::UInt(job.spec.budget)),
        ("replicas".into(), Json::UInt(outcome.replicas as u64)),
        ("samples".into(), Json::UInt(outcome.samples)),
        ("seed".into(), Json::UInt(job.spec.seed)),
        ("best_cut".into(), Json::Num(outcome.best_value)),
        ("partition".into(), Json::Arr(partition)),
        (
            "sdp_bound".into(),
            outcome.sdp_bound.map_or(Json::Null, Json::Num),
        ),
        (
            "trace".into(),
            Json::Obj(vec![
                (
                    "checkpoints".into(),
                    Json::Arr(
                        outcome
                            .trace
                            .checkpoints
                            .iter()
                            .map(|&c| Json::UInt(c))
                            .collect(),
                    ),
                ),
                (
                    "best".into(),
                    Json::Arr(outcome.trace.best.iter().map(|&b| Json::Num(b)).collect()),
                ),
            ]),
        ),
    ])
}

/// Renders a MAX2SAT solution as the deterministic response body.
pub fn max2sat_response(job: &Max2SatJob, solution: &Max2SatSolution) -> Json {
    let assignment: Vec<Json> = solution
        .assignment
        .iter()
        .map(|&b| Json::UInt(u64::from(b)))
        .collect();
    Json::Obj(vec![
        ("workload".into(), Json::str("max2sat")),
        ("vars".into(), Json::UInt(job.instance.n_vars as u64)),
        ("clauses".into(), Json::UInt(job.instance.clauses.len() as u64)),
        ("budget".into(), Json::UInt(job.samples)),
        ("seed".into(), Json::UInt(job.seed)),
        ("value".into(), Json::Num(solution.value)),
        ("sdp_bound".into(), Json::Num(solution.sdp_bound)),
        ("assignment".into(), Json::Arr(assignment)),
    ])
}

/// Renders a MAXDICUT solution as the deterministic response body.
pub fn maxdicut_response(job: &MaxDicutJob, solution: &MaxDicutSolution) -> Json {
    let in_s: Vec<Json> = solution
        .in_s
        .iter()
        .map(|&b| Json::UInt(u64::from(b)))
        .collect();
    Json::Obj(vec![
        ("workload".into(), Json::str("maxdicut")),
        ("n".into(), Json::UInt(job.graph.n as u64)),
        ("arcs".into(), Json::UInt(job.graph.arcs.len() as u64)),
        ("budget".into(), Json::UInt(job.samples)),
        ("seed".into(), Json::UInt(job.seed)),
        ("value".into(), Json::UInt(solution.value)),
        ("sdp_bound".into(), Json::Num(solution.sdp_bound)),
        ("in_s".into(), Json::Arr(in_s)),
    ])
}

/// Renders an error body (`{"error": …}`).
pub fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::str(message))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> RequestDefaults {
        RequestDefaults {
            replicas: 2,
            sdp_rank: 4,
            lif: LifParams::default(),
            max_budget: 1 << 20,
            max_vertices: 10_000,
            max_replicas: 64,
            max_hopfield_steps: 4096,
        }
    }

    #[test]
    fn parses_a_dataset_request() {
        let body = br#"{"graph": "road-chesapeake", "circuit": "lif-gw", "budget": 64, "seed": 9}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!(job.graph.n(), 39);
        assert_eq!(job.spec.family, CircuitFamily::LifGw);
        assert_eq!(job.spec.budget, 64);
        assert_eq!(job.spec.seed, 9);
        assert_eq!(job.spec.replicas, 2, "server default fills in");
        assert_eq!(job.graph_label, "dataset:road-chesapeake");
    }

    #[test]
    fn parses_inline_edges_and_edgelist_and_gnp() {
        let body = br#"{"graph": {"edges": [[0,1],[1,2],[2,0]]}, "budget": 8}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!((job.graph.n(), job.graph.m()), (3, 3));
        assert_eq!(job.spec.family, CircuitFamily::LifGw, "default circuit");

        let body = br#"{"graph": {"edges": [[0,1]], "n": 4}, "budget": 8}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!((job.graph.n(), job.graph.m()), (4, 1));

        let body = br#"{"graph": {"edgelist": "0 1\n1 2\n"}, "budget": 8, "circuit": "lif-trevisan"}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!((job.graph.n(), job.graph.m()), (3, 2));
        assert_eq!(job.spec.family, CircuitFamily::LifTrevisan);

        let body = br#"{"graph": {"gnp": {"n": 20, "p": 0.5, "seed": 3}}, "budget": 8}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!(job.graph.n(), 20);
        assert_eq!(job.graph_label, "gnp(n=20,p=0.5,seed=3)");
    }

    #[test]
    fn parses_the_annealed_family_with_a_schedule() {
        let body = br#"{"graph": {"gnp": {"n": 10, "p": 0.5}}, "circuit": "lif-annealed",
                        "schedule": {"kind": "linear", "start": 2.0, "end": 0.5}, "budget": 8}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!(job.spec.family, CircuitFamily::LifAnnealed);
        assert_eq!(job.spec.schedule.kind(), ScheduleKind::Linear);
        assert_eq!(job.spec.schedule.start(), 2.0);
        assert_eq!(job.spec.schedule.end(), 0.5);

        // Without a schedule the solve-spec default applies.
        let body = br#"{"graph": {"gnp": {"n": 10, "p": 0.5}}, "circuit": "lif-annealed", "budget": 8}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!(job.spec.schedule, CoolingSchedule::default());
    }

    #[test]
    fn parses_the_hopfield_family_with_steps() {
        let body = br#"{"graph": {"gnp": {"n": 10, "p": 0.5}}, "circuit": "hopfield",
                        "steps": 16, "budget": 8}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!(job.spec.family, CircuitFamily::Hopfield);
        assert_eq!(job.spec.hopfield_steps, 16);

        let body = br#"{"graph": {"gnp": {"n": 10, "p": 0.5}}, "circuit": "hopfield", "budget": 8}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!(job.spec.hopfield_steps, SolveSpec::new(CircuitFamily::Hopfield, 8, 0).hopfield_steps);
    }

    #[test]
    fn parses_weighted_edges_into_a_weighted_workload() {
        let body = br#"{"graph": {"weighted_edges": [[0, 1, 2.5], [1, 2, -0.5]]}, "budget": 8}"#;
        let job = match parse_request(body, &defaults()).unwrap() {
            Workload::WeightedMaxCut(job) => job,
            other => panic!("expected a weighted workload, got {other:?}"),
        };
        assert_eq!((job.graph.n(), job.graph.m()), (3, 2));
        assert_eq!(job.graph_label, "weighted-edges");
        let canonical = job.canonical_graph();
        assert!(canonical.starts_with("wgraph:n=3;"));
        assert!(canonical.contains(&format!("{:016x}", 2.5f64.to_bits())));

        // Declared n pads isolated vertices, same as unweighted edges.
        let body = br#"{"graph": {"weighted_edges": [[0, 1, 1.0]], "n": 5}, "budget": 8}"#;
        match parse_request(body, &defaults()).unwrap() {
            Workload::WeightedMaxCut(job) => assert_eq!(job.graph.n(), 5),
            other => panic!("expected a weighted workload, got {other:?}"),
        }
    }

    #[test]
    fn parses_max2sat_and_maxdicut_workloads() {
        let body = br#"{"max2sat": {"vars": 3, "clauses": [[1, -2], [2, 3], [-1]],
                        "weights": [1.0, 2.0, 0.5]}, "budget": 16, "seed": 7}"#;
        let job = match parse_request(body, &defaults()).unwrap() {
            Workload::Max2Sat(job) => job,
            other => panic!("expected max2sat, got {other:?}"),
        };
        assert_eq!(job.instance.n_vars, 3);
        assert_eq!(job.instance.clauses.len(), 3);
        assert_eq!(job.instance.clauses[0].a, Literal::pos(0));
        assert_eq!(job.instance.clauses[0].b, Some(Literal::neg(1)));
        assert_eq!(job.instance.clauses[2].b, None);
        assert_eq!(job.instance.clauses[1].weight, 2.0);
        assert_eq!((job.samples, job.seed), (16, 7));
        assert!(job.canonical().starts_with("max2sat:vars=3;+0-1:"));

        let body = br#"{"maxdicut": {"n": 4, "arcs": [[0, 1], [1, 2], [2, 2]]}, "budget": 16}"#;
        let job = match parse_request(body, &defaults()).unwrap() {
            Workload::MaxDicut(job) => job,
            other => panic!("expected maxdicut, got {other:?}"),
        };
        assert_eq!(job.graph.n, 4);
        assert_eq!(job.graph.arcs.len(), 2, "self-loop dropped");
        assert_eq!(job.canonical(), "maxdicut:n=4;0-1;1-2;");
    }

    #[test]
    fn rejects_bad_requests_with_messages() {
        let cases: &[(&[u8], &str)] = &[
            (b"not json", "invalid JSON"),
            (br#"[1,2]"#, "must be a JSON object"),
            (br#"{"budget": 8}"#, "must name a workload"),
            (br#"{"graph": "road-chesapeake"}"#, "missing `budget`"),
            (br#"{"graph": "no-such-graph", "budget": 8}"#, "unknown dataset"),
            (br#"{"graph": "road-chesapeake", "budget": 0}"#, "`budget` must be ≥ 1"),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "replicas": 0}"#,
                "`replicas` must be ≥ 1",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "circuit": "gw"}"#,
                "unknown circuit",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "bogus": 1}"#,
                "unknown key `bogus`",
            ),
            (
                br#"{"graph": {"edges": []}, "budget": 8}"#,
                "no edges",
            ),
            (
                br#"{"graph": {"edges": [[0,1]], "edgelist": "0 1"}, "budget": 8}"#,
                "exactly one of",
            ),
            (
                br#"{"graph": {"edges": [[0]]}, "budget": 8}"#,
                "[u, v] pair",
            ),
            (
                br#"{"graph": {"gnp": {"n": 99999999, "p": 0.5}}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 99999999999}"#,
                "exceeds the server limit",
            ),
            // Allocation-amplifier guards: all of these must be rejected
            // *before* any graph/circuit state is materialized.
            (
                br#"{"graph": {"edges": [[0, 4294967294]]}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"graph": {"edges": [[0, 1]], "n": 4000000000}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"graph": {"edgelist": "0 4294967294\n"}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 1048576, "replicas": 1048576}"#,
                "`replicas` 1048576 exceeds",
            ),
            // Strict keys inside the graph object too: a mis-cased "N"
            // must not be silently dropped.
            (
                br#"{"graph": {"edges": [[0,1]], "N": 4}, "budget": 8}"#,
                "unknown key `N` in `graph`",
            ),
            (
                br#"{"graph": {"gnp": {"n": 10, "p": 0.5}, "n": 10}, "budget": 8}"#,
                "`n` is only valid alongside `edges`",
            ),
            (
                br#"{"graph": {"gnp": {"n": 10, "p": 0.5, "Seed": 3}}, "budget": 8}"#,
                "unknown key `Seed` in `gnp`",
            ),
            // Family knobs: valid only with their own family, strict at
            // every nesting level, bounded like everything else.
            (
                br#"{"graph": "road-chesapeake", "budget": 8,
                     "schedule": {"kind": "geometric", "start": 1.0, "end": 0.1}}"#,
                "`schedule` is only valid with circuit `lif-annealed`",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "circuit": "lif-annealed",
                     "schedule": {"kind": "cosine", "start": 1.0, "end": 0.1}}"#,
                "unknown schedule kind `cosine`",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "circuit": "lif-annealed",
                     "schedule": {"kind": "linear", "start": 1.0, "end": 0.1, "warmup": 2}}"#,
                "unknown key `warmup` in `schedule`",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "circuit": "lif-annealed",
                     "schedule": {"kind": "linear", "start": -1.0, "end": 0.1}}"#,
                "invalid schedule",
            ),
            // Overflowing numeric literals die in the JSON layer, so a
            // non-finite schedule endpoint (or edge weight) can never
            // reach the parsers; the in-parser finite checks behind this
            // are defense in depth.
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "circuit": "lif-annealed",
                     "schedule": {"kind": "linear", "start": 1e999, "end": 0.1}}"#,
                "invalid number",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "steps": 4}"#,
                "`steps` is only valid with circuit `hopfield`",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "circuit": "hopfield", "steps": 0}"#,
                "`steps` must be ≥ 1",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "circuit": "hopfield", "steps": 99999999}"#,
                "`steps` 99999999 exceeds the server limit",
            ),
            // Weighted-edge guards: finiteness, magnitude, shape, and
            // the family constraint all reject before any solve starts.
            (
                br#"{"graph": {"weighted_edges": [[0, 1, 1e999]]}, "budget": 8}"#,
                "invalid number",
            ),
            (
                br#"{"graph": {"weighted_edges": [[0, 1, 1e13]]}, "budget": 8}"#,
                "exceeds the magnitude limit",
            ),
            (
                br#"{"graph": {"weighted_edges": [[0, 1]]}, "budget": 8}"#,
                "[u, v, w] triple",
            ),
            (
                br#"{"graph": {"weighted_edges": [[0, 1, "x"]]}, "budget": 8}"#,
                "edge weights must be numbers",
            ),
            (
                br#"{"graph": {"weighted_edges": [[0, 4294967294, 1.0]]}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"graph": {"weighted_edges": []}, "budget": 8}"#,
                "no edges",
            ),
            (
                br#"{"graph": {"weighted_edges": [[0, 1, -1.0]]}, "budget": 8, "circuit": "lif-trevisan"}"#,
                "lif-trevisan requires non-negative edge weights",
            ),
            // MAX2SAT guards.
            (
                br#"{"max2sat": {"vars": 2, "clauses": []}, "budget": 8}"#,
                "`max2sat.clauses` must not be empty",
            ),
            (
                br#"{"max2sat": {"vars": 2, "clauses": [[0]]}, "budget": 8}"#,
                "literal 0 is invalid",
            ),
            (
                br#"{"max2sat": {"vars": 2, "clauses": [[3]]}, "budget": 8}"#,
                "out of range",
            ),
            (
                br#"{"max2sat": {"vars": 2, "clauses": [[1, -2, 1]]}, "budget": 8}"#,
                "1 or 2 literals",
            ),
            (
                br#"{"max2sat": {"vars": 2, "clauses": [[1]], "weights": [1.0, 2.0]}, "budget": 8}"#,
                "2 entries for 1 clauses",
            ),
            (
                br#"{"max2sat": {"vars": 2, "clauses": [[1]], "weights": [0.0]}, "budget": 8}"#,
                "clause weights must be positive",
            ),
            (
                br#"{"max2sat": {"vars": 2, "clauses": [[1]], "weights": [1e999]}, "budget": 8}"#,
                "invalid number",
            ),
            (
                br#"{"max2sat": {"vars": 99999999, "clauses": [[1]]}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"max2sat": {"vars": 2, "clauses": [[1]], "extra": 1}, "budget": 8}"#,
                "unknown key `extra` in `max2sat`",
            ),
            (
                br#"{"max2sat": {"vars": 2, "clauses": [[1]]}, "budget": 8, "circuit": "lif-gw"}"#,
                "unknown key `circuit` (expected max2sat, budget, seed)",
            ),
            (
                br#"{"max2sat": {"vars": 2, "clauses": [[1]]}, "graph": "road-chesapeake", "budget": 8}"#,
                "exactly one of `graph`, `max2sat`, `maxdicut`",
            ),
            // MAXDICUT guards — out-of-range arcs reject *before* the
            // panicking constructor.
            (
                br#"{"maxdicut": {"n": 3, "arcs": [[0, 5]]}, "budget": 8}"#,
                "arc endpoint 5 is out of range",
            ),
            (
                br#"{"maxdicut": {"n": 3, "arcs": []}, "budget": 8}"#,
                "`maxdicut.arcs` must not be empty",
            ),
            (
                br#"{"maxdicut": {"n": 3, "arcs": [[1, 1]]}, "budget": 8}"#,
                "no arcs after dropping self-loops",
            ),
            (
                br#"{"maxdicut": {"n": 99999999, "arcs": [[0, 1]]}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"maxdicut": {"n": 3, "arcs": [[0, 1]], "p": 0.5}, "budget": 8}"#,
                "unknown key `p` in `maxdicut`",
            ),
            (
                br#"{"maxdicut": {"n": 3, "arcs": [[0, 1]]}, "budget": 8, "replicas": 2}"#,
                "unknown key `replicas` (expected maxdicut, budget, seed)",
            ),
        ];
        for (body, needle) in cases {
            let e = parse_request(body, &defaults()).unwrap_err();
            assert!(
                e.0.contains(needle),
                "expected {needle:?} in error for {:?}, got {:?}",
                String::from_utf8_lossy(body),
                e.0
            );
        }
    }

    #[test]
    fn duplicate_keys_resolve_to_the_first_occurrence() {
        // The JSON layer keeps duplicate members and `get` returns the
        // first; the wire layer therefore solves with the first value.
        // Locked here because the response cache keys on the *parsed*
        // request: two bodies differing only in a shadowed duplicate
        // parse to the same job, share a cache entry, and get the same
        // (correct) body.
        let body =
            br#"{"graph": "road-chesapeake", "budget": 8, "budget": 16, "seed": 1, "seed": 2}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!(job.spec.budget, 8, "first `budget` wins");
        assert_eq!(job.spec.seed, 1, "first `seed` wins");
    }

    #[test]
    fn response_rendering_is_deterministic_and_consistent() {
        let body = br#"{"graph": {"gnp": {"n": 12, "p": 0.5, "seed": 1}}, "budget": 16, "seed": 5}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        let outcome = snc_maxcut::solve(&job.graph, &job.spec).unwrap();
        let a = solve_response(&job, &outcome).render();
        let b = solve_response(&job, &snc_maxcut::solve(&job.graph, &job.spec).unwrap()).render();
        assert_eq!(a, b, "identical request ⇒ identical body");
        let parsed = snc_experiments::json::parse(&a).unwrap();
        assert_eq!(parsed.get("best_cut").unwrap().as_u64(), Some(outcome.best_value));
        let partition = parsed.get("partition").unwrap().as_array().unwrap();
        assert_eq!(partition.len(), 12);
        assert!(partition.iter().all(|s| matches!(s.as_u64(), Some(0 | 1))));
        // The partition in the body achieves the reported cut value.
        let sides: Vec<i8> = partition
            .iter()
            .map(|s| if s.as_u64() == Some(1) { 1 } else { -1 })
            .collect();
        let cut = snc_graph::CutAssignment::from_sides(sides);
        assert_eq!(cut.cut_value(&job.graph), outcome.best_value);
    }

    #[test]
    fn weighted_response_rendering_is_deterministic_and_consistent() {
        let body = br#"{"graph": {"weighted_edges": [[0,1,2.0],[1,2,0.5],[2,0,1.25],[2,3,3.0]]},
                        "budget": 16, "seed": 5}"#;
        let job = match parse_request(body, &defaults()).unwrap() {
            Workload::WeightedMaxCut(job) => job,
            other => panic!("expected weighted, got {other:?}"),
        };
        let outcome = snc_maxcut::solve_weighted(&job.graph, &job.spec).unwrap();
        let a = weighted_solve_response(&job, &outcome).render();
        let b = weighted_solve_response(
            &job,
            &snc_maxcut::solve_weighted(&job.graph, &job.spec).unwrap(),
        )
        .render();
        assert_eq!(a, b, "identical request ⇒ identical body");
        let parsed = snc_experiments::json::parse(&a).unwrap();
        assert_eq!(parsed.get("weighted").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed.get("best_cut").unwrap().as_f64(),
            Some(outcome.best_value)
        );
        // The partition in the body achieves the reported weighted value.
        let sides: Vec<i8> = parsed
            .get("partition")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| if s.as_u64() == Some(1) { 1 } else { -1 })
            .collect();
        let cut = snc_graph::CutAssignment::from_sides(sides);
        assert!((job.graph.cut_value(&cut) - outcome.best_value).abs() <= 1e-9);
    }

    #[test]
    fn extension_responses_are_deterministic() {
        use snc_linalg::SdpConfig;

        let body = br#"{"max2sat": {"vars": 3, "clauses": [[1, -2], [2, 3], [-1]]},
                        "budget": 8, "seed": 7}"#;
        let job = match parse_request(body, &defaults()).unwrap() {
            Workload::Max2Sat(job) => job,
            other => panic!("expected max2sat, got {other:?}"),
        };
        let cfg = SdpConfig { rank: 4, seed: 1, ..SdpConfig::default() };
        let sol = snc_maxcut::extensions::max2sat::solve_gw_max2sat(
            &job.instance,
            &cfg,
            job.samples as usize,
            job.seed,
        )
        .unwrap();
        let a = max2sat_response(&job, &sol).render();
        let sol2 = snc_maxcut::extensions::max2sat::solve_gw_max2sat(
            &job.instance,
            &cfg,
            job.samples as usize,
            job.seed,
        )
        .unwrap();
        assert_eq!(a, max2sat_response(&job, &sol2).render());
        let parsed = snc_experiments::json::parse(&a).unwrap();
        assert_eq!(parsed.get("workload").and_then(Json::as_str), Some("max2sat"));
        assert_eq!(
            parsed.get("assignment").unwrap().as_array().unwrap().len(),
            3
        );

        let body = br#"{"maxdicut": {"n": 4, "arcs": [[0,1],[1,2],[2,3],[3,0]]}, "budget": 8}"#;
        let job = match parse_request(body, &defaults()).unwrap() {
            Workload::MaxDicut(job) => job,
            other => panic!("expected maxdicut, got {other:?}"),
        };
        let sol = snc_maxcut::extensions::maxdicut::solve_gw_maxdicut(
            &job.graph,
            &cfg,
            job.samples as usize,
            job.seed,
        )
        .unwrap();
        let rendered = maxdicut_response(&job, &sol).render();
        let parsed = snc_experiments::json::parse(&rendered).unwrap();
        assert_eq!(parsed.get("value").unwrap().as_u64(), Some(sol.value));
        assert_eq!(parsed.get("in_s").unwrap().as_array().unwrap().len(), 4);
    }

    #[test]
    fn spec_extras_distinguish_family_knobs() {
        let base = SolveSpec::new(CircuitFamily::LifGw, 8, 0);
        assert_eq!(spec_extras(&base), "", "common families carry no extras");

        let mut annealed = SolveSpec::new(CircuitFamily::LifAnnealed, 8, 0);
        let default_extras = spec_extras(&annealed);
        assert!(default_extras.starts_with("schedule=geometric:"));
        annealed.schedule = CoolingSchedule::linear(1.0, 0.05).unwrap();
        assert_ne!(spec_extras(&annealed), default_extras, "kind is keyed");
        annealed.schedule = CoolingSchedule::geometric(1.0, 0.06).unwrap();
        assert_ne!(spec_extras(&annealed), default_extras, "endpoints are keyed");

        let mut hopfield = SolveSpec::new(CircuitFamily::Hopfield, 8, 0);
        assert_eq!(spec_extras(&hopfield), "steps=8");
        hopfield.hopfield_steps = 9;
        assert_eq!(spec_extras(&hopfield), "steps=9");
    }

    #[test]
    fn error_bodies_are_json() {
        assert_eq!(
            error_body("bad \"stuff\""),
            "{\"error\":\"bad \\\"stuff\\\"\"}"
        );
    }
}
