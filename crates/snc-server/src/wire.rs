//! The service wire format: JSON solve requests in, JSON results out.
//!
//! Requests name a graph (inline edges, edge-list text, a Figure-4
//! dataset, or a seeded Erdős–Rényi generator), a circuit family, a
//! sample budget, an optional replica width, and a seed:
//!
//! ```json
//! {
//!   "graph": "road-chesapeake",
//!   "circuit": "lif-gw",
//!   "budget": 512,
//!   "replicas": 4,
//!   "seed": 42
//! }
//! ```
//!
//! Everything renders through [`snc_experiments::json`] — the same
//! escaper the experiment reports use — and response rendering is a
//! pure function of the solve outcome, so identical requests produce
//! byte-identical bodies no matter which worker or connection served
//! them. Timing never enters the body (it travels in the
//! `x-snc-elapsed-us` response header).

use snc_experiments::json::{self, Json};
use snc_graph::generators::erdos_renyi::gnp;
use snc_graph::io::edgelist;
use snc_graph::{EmpiricalDataset, Graph};
use snc_maxcut::{CircuitFamily, SolveOutcome, SolveSpec};
use snc_neuro::LifParams;

/// Server-side defaults and limits applied while parsing requests.
#[derive(Clone, Debug)]
pub struct RequestDefaults {
    /// Replica width when the request omits `"replicas"`.
    pub replicas: usize,
    /// SDP rank for LIF-GW (the paper's 4).
    pub sdp_rank: usize,
    /// Membrane parameters for both circuit families.
    pub lif: LifParams,
    /// Largest accepted `"budget"`.
    pub max_budget: u64,
    /// Largest accepted vertex count (guards the dense SDP stage).
    ///
    /// Enforced *before* any graph is materialized: inline edge ids,
    /// declared `"n"`, and generator sizes are all bounded pre-allocation,
    /// so a tiny request body cannot trigger a huge allocation.
    pub max_vertices: usize,
    /// Largest accepted `"replicas"` (per-replica circuit state is
    /// O(n), so an uncapped width is an allocation amplifier).
    pub max_replicas: usize,
}

/// A parsed, validated solve request: the graph to cut and the fully
/// resolved spec to dispatch.
#[derive(Clone, Debug)]
pub struct SolveJob {
    /// The graph built from the request body.
    pub graph: Graph,
    /// The resolved solve spec ([`snc_maxcut::solve()`]'s input).
    pub spec: SolveSpec,
    /// A deterministic label of the graph source, echoed in responses.
    pub graph_label: String,
}

/// A request-rejection message (answered as HTTP 400).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for WireError {}

fn err(message: impl Into<String>) -> WireError {
    WireError(message.into())
}

/// Parses and validates a solve-request body.
///
/// # Errors
///
/// Returns [`WireError`] (→ HTTP 400) for malformed JSON, unknown keys,
/// missing/invalid fields, graphs without edges, or limit violations.
pub fn parse_solve_request(
    body: &[u8],
    defaults: &RequestDefaults,
) -> Result<SolveJob, WireError> {
    let text = std::str::from_utf8(body).map_err(|_| err("body is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| err(e.to_string()))?;
    let members = doc
        .as_object()
        .ok_or_else(|| err("request body must be a JSON object"))?;
    for (key, _) in members {
        if !matches!(key.as_str(), "graph" | "circuit" | "budget" | "replicas" | "seed") {
            return Err(err(format!(
                "unknown key `{key}` (expected graph, circuit, budget, replicas, seed)"
            )));
        }
    }

    let (graph, graph_label) = parse_graph(
        doc.get("graph").ok_or_else(|| err("missing `graph`"))?,
        defaults,
    )?;
    if graph.m() == 0 {
        return Err(err("graph has no edges; MAXCUT needs at least one"));
    }

    let family = match doc.get("circuit") {
        None => CircuitFamily::LifGw,
        Some(v) => {
            let name = v.as_str().ok_or_else(|| err("`circuit` must be a string"))?;
            CircuitFamily::from_name(name).ok_or_else(|| {
                err(format!("unknown circuit `{name}` (expected lif-gw or lif-trevisan)"))
            })?
        }
    };

    let budget = doc
        .get("budget")
        .ok_or_else(|| err("missing `budget`"))?
        .as_u64()
        .ok_or_else(|| err("`budget` must be a non-negative integer"))?;
    if budget == 0 {
        return Err(err("`budget` must be ≥ 1"));
    }
    if budget > defaults.max_budget {
        return Err(err(format!(
            "`budget` {budget} exceeds the server limit of {}",
            defaults.max_budget
        )));
    }

    let replicas = match doc.get("replicas") {
        None => defaults.replicas,
        Some(v) => {
            let r = v
                .as_usize()
                .ok_or_else(|| err("`replicas` must be a non-negative integer"))?;
            if r == 0 {
                return Err(err("`replicas` must be ≥ 1"));
            }
            if r > defaults.max_replicas {
                return Err(err(format!(
                    "`replicas` {r} exceeds the server limit of {}",
                    defaults.max_replicas
                )));
            }
            r
        }
    };

    let seed = match doc.get("seed") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| err("`seed` must be a non-negative integer"))?,
    };

    Ok(SolveJob {
        graph,
        spec: SolveSpec {
            family,
            budget,
            replicas,
            seed,
            sdp_rank: defaults.sdp_rank,
            lif: defaults.lif,
        },
        graph_label,
    })
}

/// Builds the graph named by the request's `"graph"` value.
fn parse_graph(
    value: &Json,
    defaults: &RequestDefaults,
) -> Result<(Graph, String), WireError> {
    let (graph, label) = match value {
        Json::Str(name) => {
            let dataset = EmpiricalDataset::all()
                .into_iter()
                .find(|d| d.name() == name)
                .ok_or_else(|| err(format!("unknown dataset `{name}`")))?;
            let graph = dataset
                .load()
                .map_err(|e| err(format!("failed to build dataset `{name}`: {e}")))?;
            (graph, format!("dataset:{name}"))
        }
        Json::Obj(members) => {
            // Strict like the top level: an unknown (or misplaced) key is
            // a rejection, not silent drift — a mis-cased `"N"` must not
            // quietly solve a differently-shaped graph.
            for (key, _) in members {
                match key.as_str() {
                    "edges" | "edgelist" | "gnp" => {}
                    "n" if value.get("edges").is_some() => {}
                    "n" => {
                        return Err(err(
                            "`n` is only valid alongside `edges` (edge lists and gnp carry their own size)",
                        ))
                    }
                    other => {
                        return Err(err(format!(
                            "unknown key `{other}` in `graph` (expected edges, edgelist, gnp, or n with edges)"
                        )))
                    }
                }
            }
            let keys: Vec<&str> = ["edges", "edgelist", "gnp"]
                .into_iter()
                .filter(|k| value.get(k).is_some())
                .collect();
            match keys.as_slice() {
                ["edges"] => {
                    let pairs = parse_edge_pairs(value.get("edges").expect("key present"))?;
                    let declared_n = match value.get("n") {
                        None => None,
                        Some(v) => Some(
                            v.as_usize()
                                .ok_or_else(|| err("`n` must be a non-negative integer"))?,
                        ),
                    };
                    // Bound *before* building: a tiny body naming a huge
                    // id (or declaring a huge n) must not allocate.
                    let max_id = pairs.iter().map(|&(u, v)| u.max(v)).max().unwrap_or(0);
                    let implied_n = declared_n
                        .unwrap_or_else(|| max_id.saturating_add(1).min(usize::MAX as u64) as usize);
                    check_vertices(implied_n, defaults)?;
                    let graph = edgelist::from_pairs(&pairs, declared_n)
                        .map_err(|e| err(format!("invalid edges: {e}")))?;
                    (graph, "edges".to_string())
                }
                ["edgelist"] => {
                    let text = value
                        .get("edgelist")
                        .and_then(Json::as_str)
                        .ok_or_else(|| err("`edgelist` must be a string"))?;
                    // Scan first (no allocation), bound-check the implied
                    // vertex count, then build.
                    let raw = edgelist::scan(text)
                        .map_err(|e| err(format!("invalid edge list: {e}")))?;
                    check_vertices(raw.n(), defaults)?;
                    let graph = raw
                        .into_graph()
                        .map_err(|e| err(format!("invalid edge list: {e}")))?;
                    (graph, "edgelist".to_string())
                }
                ["gnp"] => {
                    let spec = value.get("gnp").expect("key present");
                    for (key, _) in spec.as_object().unwrap_or(&[]) {
                        if !matches!(key.as_str(), "n" | "p" | "seed") {
                            return Err(err(format!(
                                "unknown key `{key}` in `gnp` (expected n, p, seed)"
                            )));
                        }
                    }
                    let n = spec
                        .get("n")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| err("`gnp.n` must be a non-negative integer"))?;
                    let p = spec
                        .get("p")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| err("`gnp.p` must be a number"))?;
                    let seed = match spec.get("seed") {
                        None => 0,
                        Some(v) => v
                            .as_u64()
                            .ok_or_else(|| err("`gnp.seed` must be a non-negative integer"))?,
                    };
                    // Bound *before* generating: a huge `n` must not
                    // allocate anything.
                    check_vertices(n, defaults)?;
                    let graph = gnp(n, p, seed)
                        .map_err(|e| err(format!("invalid gnp parameters: {e}")))?;
                    // `p` formats deterministically (shortest round-trip).
                    (graph, format!("gnp(n={n},p={p},seed={seed})"))
                }
                [] => {
                    return Err(err(
                        "`graph` object must contain one of `edges`, `edgelist`, `gnp`",
                    ))
                }
                _ => {
                    return Err(err(
                        "`graph` object must contain exactly one of `edges`, `edgelist`, `gnp`",
                    ))
                }
            }
        }
        _ => {
            return Err(err(
                "`graph` must be a dataset name or an object with `edges`, `edgelist`, or `gnp`",
            ))
        }
    };
    // Backstop; every arm above already bound-checked pre-allocation.
    check_vertices(graph.n(), defaults)?;
    Ok((graph, label))
}

/// The shared pre-allocation vertex bound.
fn check_vertices(n: usize, defaults: &RequestDefaults) -> Result<(), WireError> {
    if n > defaults.max_vertices {
        return Err(err(format!(
            "graph has {n} vertices, exceeding the server limit of {}",
            defaults.max_vertices
        )));
    }
    Ok(())
}

fn parse_edge_pairs(value: &Json) -> Result<Vec<(u64, u64)>, WireError> {
    let items = value
        .as_array()
        .ok_or_else(|| err("`edges` must be an array of [u, v] pairs"))?;
    items
        .iter()
        .map(|item| {
            let pair = item
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| err("each edge must be a [u, v] pair"))?;
            let u = pair[0]
                .as_u64()
                .ok_or_else(|| err("edge endpoints must be non-negative integers"))?;
            let v = pair[1]
                .as_u64()
                .ok_or_else(|| err("edge endpoints must be non-negative integers"))?;
            Ok((u, v))
        })
        .collect()
}

/// Renders a solve outcome as the deterministic response body.
///
/// Pure function of `(job, outcome)`: no timestamps, ids, or timing —
/// identical seeded requests render byte-identical bodies.
pub fn solve_response(job: &SolveJob, outcome: &SolveOutcome) -> Json {
    let partition: Vec<Json> = outcome
        .best_cut
        .sides()
        .iter()
        .map(|&s| Json::UInt(u64::from(s == 1)))
        .collect();
    Json::Obj(vec![
        ("circuit".into(), Json::str(job.spec.family.name())),
        ("graph".into(), Json::str(job.graph_label.clone())),
        ("n".into(), Json::UInt(job.graph.n() as u64)),
        ("m".into(), Json::UInt(job.graph.m() as u64)),
        ("budget".into(), Json::UInt(job.spec.budget)),
        ("replicas".into(), Json::UInt(outcome.replicas as u64)),
        ("samples".into(), Json::UInt(outcome.samples)),
        ("seed".into(), Json::UInt(job.spec.seed)),
        ("best_cut".into(), Json::UInt(outcome.best_value)),
        ("partition".into(), Json::Arr(partition)),
        (
            "sdp_bound".into(),
            outcome.sdp_bound.map_or(Json::Null, Json::Num),
        ),
        (
            "trace".into(),
            Json::Obj(vec![
                (
                    "checkpoints".into(),
                    Json::Arr(
                        outcome
                            .trace
                            .checkpoints
                            .iter()
                            .map(|&c| Json::UInt(c))
                            .collect(),
                    ),
                ),
                (
                    "best".into(),
                    Json::Arr(outcome.trace.best.iter().map(|&b| Json::UInt(b)).collect()),
                ),
            ]),
        ),
    ])
}

/// Renders an error body (`{"error": …}`).
pub fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::str(message))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> RequestDefaults {
        RequestDefaults {
            replicas: 2,
            sdp_rank: 4,
            lif: LifParams::default(),
            max_budget: 1 << 20,
            max_vertices: 10_000,
            max_replicas: 64,
        }
    }

    #[test]
    fn parses_a_dataset_request() {
        let body = br#"{"graph": "road-chesapeake", "circuit": "lif-gw", "budget": 64, "seed": 9}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!(job.graph.n(), 39);
        assert_eq!(job.spec.family, CircuitFamily::LifGw);
        assert_eq!(job.spec.budget, 64);
        assert_eq!(job.spec.seed, 9);
        assert_eq!(job.spec.replicas, 2, "server default fills in");
        assert_eq!(job.graph_label, "dataset:road-chesapeake");
    }

    #[test]
    fn parses_inline_edges_and_edgelist_and_gnp() {
        let body = br#"{"graph": {"edges": [[0,1],[1,2],[2,0]]}, "budget": 8}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!((job.graph.n(), job.graph.m()), (3, 3));
        assert_eq!(job.spec.family, CircuitFamily::LifGw, "default circuit");

        let body = br#"{"graph": {"edges": [[0,1]], "n": 4}, "budget": 8}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!((job.graph.n(), job.graph.m()), (4, 1));

        let body = br#"{"graph": {"edgelist": "0 1\n1 2\n"}, "budget": 8, "circuit": "lif-trevisan"}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!((job.graph.n(), job.graph.m()), (3, 2));
        assert_eq!(job.spec.family, CircuitFamily::LifTrevisan);

        let body = br#"{"graph": {"gnp": {"n": 20, "p": 0.5, "seed": 3}}, "budget": 8}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!(job.graph.n(), 20);
        assert_eq!(job.graph_label, "gnp(n=20,p=0.5,seed=3)");
    }

    #[test]
    fn rejects_bad_requests_with_messages() {
        let cases: &[(&[u8], &str)] = &[
            (b"not json", "invalid JSON"),
            (br#"[1,2]"#, "must be a JSON object"),
            (br#"{"budget": 8}"#, "missing `graph`"),
            (br#"{"graph": "road-chesapeake"}"#, "missing `budget`"),
            (br#"{"graph": "no-such-graph", "budget": 8}"#, "unknown dataset"),
            (br#"{"graph": "road-chesapeake", "budget": 0}"#, "`budget` must be ≥ 1"),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "replicas": 0}"#,
                "`replicas` must be ≥ 1",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "circuit": "gw"}"#,
                "unknown circuit",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 8, "bogus": 1}"#,
                "unknown key `bogus`",
            ),
            (
                br#"{"graph": {"edges": []}, "budget": 8}"#,
                "no edges",
            ),
            (
                br#"{"graph": {"edges": [[0,1]], "edgelist": "0 1"}, "budget": 8}"#,
                "exactly one of",
            ),
            (
                br#"{"graph": {"edges": [[0]]}, "budget": 8}"#,
                "[u, v] pair",
            ),
            (
                br#"{"graph": {"gnp": {"n": 99999999, "p": 0.5}}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 99999999999}"#,
                "exceeds the server limit",
            ),
            // Allocation-amplifier guards: all of these must be rejected
            // *before* any graph/circuit state is materialized.
            (
                br#"{"graph": {"edges": [[0, 4294967294]]}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"graph": {"edges": [[0, 1]], "n": 4000000000}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"graph": {"edgelist": "0 4294967294\n"}, "budget": 8}"#,
                "exceeding the server limit",
            ),
            (
                br#"{"graph": "road-chesapeake", "budget": 1048576, "replicas": 1048576}"#,
                "`replicas` 1048576 exceeds",
            ),
            // Strict keys inside the graph object too: a mis-cased "N"
            // must not be silently dropped.
            (
                br#"{"graph": {"edges": [[0,1]], "N": 4}, "budget": 8}"#,
                "unknown key `N` in `graph`",
            ),
            (
                br#"{"graph": {"gnp": {"n": 10, "p": 0.5}, "n": 10}, "budget": 8}"#,
                "`n` is only valid alongside `edges`",
            ),
            (
                br#"{"graph": {"gnp": {"n": 10, "p": 0.5, "Seed": 3}}, "budget": 8}"#,
                "unknown key `Seed` in `gnp`",
            ),
        ];
        for (body, needle) in cases {
            let e = parse_solve_request(body, &defaults()).unwrap_err();
            assert!(
                e.0.contains(needle),
                "expected {needle:?} in error for {:?}, got {:?}",
                String::from_utf8_lossy(body),
                e.0
            );
        }
    }

    #[test]
    fn duplicate_keys_resolve_to_the_first_occurrence() {
        // The JSON layer keeps duplicate members and `get` returns the
        // first; the wire layer therefore solves with the first value.
        // Locked here because the response cache keys on the *parsed*
        // request: two bodies differing only in a shadowed duplicate
        // parse to the same job, share a cache entry, and get the same
        // (correct) body.
        let body =
            br#"{"graph": "road-chesapeake", "budget": 8, "budget": 16, "seed": 1, "seed": 2}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        assert_eq!(job.spec.budget, 8, "first `budget` wins");
        assert_eq!(job.spec.seed, 1, "first `seed` wins");
    }

    #[test]
    fn response_rendering_is_deterministic_and_consistent() {
        let body = br#"{"graph": {"gnp": {"n": 12, "p": 0.5, "seed": 1}}, "budget": 16, "seed": 5}"#;
        let job = parse_solve_request(body, &defaults()).unwrap();
        let outcome = snc_maxcut::solve(&job.graph, &job.spec).unwrap();
        let a = solve_response(&job, &outcome).render();
        let b = solve_response(&job, &snc_maxcut::solve(&job.graph, &job.spec).unwrap()).render();
        assert_eq!(a, b, "identical request ⇒ identical body");
        let parsed = snc_experiments::json::parse(&a).unwrap();
        assert_eq!(parsed.get("best_cut").unwrap().as_u64(), Some(outcome.best_value));
        let partition = parsed.get("partition").unwrap().as_array().unwrap();
        assert_eq!(partition.len(), 12);
        assert!(partition.iter().all(|s| matches!(s.as_u64(), Some(0 | 1))));
        // The partition in the body achieves the reported cut value.
        let sides: Vec<i8> = partition
            .iter()
            .map(|s| if s.as_u64() == Some(1) { 1 } else { -1 })
            .collect();
        let cut = snc_graph::CutAssignment::from_sides(sides);
        assert_eq!(cut.cut_value(&job.graph), outcome.best_value);
    }

    #[test]
    fn error_bodies_are_json() {
        assert_eq!(
            error_body("bad \"stuff\""),
            "{\"error\":\"bad \\\"stuff\\\"\"}"
        );
    }
}
